//! Cycle-period sweep helpers.

use crate::{
    run_engine, CoreError, EngineConfig, MultiplierDesign, PatternProfile, ProfileCache, RunMetrics,
};

/// The outcome of sweeping one profile across cycle periods.
#[derive(Clone, Debug)]
pub struct PeriodSweep {
    points: Vec<(f64, RunMetrics)>,
}

impl PeriodSweep {
    /// Replays `profile` under `config` at each period in `periods_ns`
    /// (every other config field is held fixed).
    ///
    /// This is the inner loop of the paper's Figs. 13–24 and of any
    /// deployment-tuning flow: one expensive profile, many cheap replays.
    ///
    /// # Panics
    ///
    /// Panics if `periods_ns` is empty or contains a non-positive period.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use agemul::{EngineConfig, MultiplierDesign, PatternSet, PeriodSweep};
    /// use agemul_circuits::MultiplierKind;
    ///
    /// let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
    /// let profile = design.profile(PatternSet::uniform(16, 2_000, 1).pairs(), None)?;
    /// let periods: Vec<f64> = (12..=26).map(|i| 0.05 * i as f64).collect();
    /// let sweep = PeriodSweep::run(&profile, &EngineConfig::adaptive(1.0, 7), &periods);
    /// let (best_period, best) = sweep.best_latency();
    /// println!("best {:.3} ns at {best_period:.2} ns", best.avg_latency_ns());
    /// # Ok::<(), agemul::CoreError>(())
    /// ```
    /// With the `parallel` feature, the periods are fanned out across
    /// threads (each replay is an independent pure function of the profile)
    /// and stitched back in period order, so the resulting metrics are
    /// bit-identical to the serial sweep.
    pub fn run(profile: &PatternProfile, config: &EngineConfig, periods_ns: &[f64]) -> Self {
        assert!(!periods_ns.is_empty(), "sweep needs at least one period");
        for &p in periods_ns {
            assert!(
                p.is_finite() && p > 0.0,
                "period must be finite and positive, got {p}"
            );
        }
        let replay = |&p: &f64| {
            let cfg = EngineConfig {
                cycle_ns: p,
                ..*config
            };
            (p, run_engine(profile, &cfg))
        };
        #[cfg(feature = "parallel")]
        let points = agemul_par::par_map(periods_ns, replay);
        #[cfg(not(feature = "parallel"))]
        let points = periods_ns.iter().map(replay).collect();
        PeriodSweep { points }
    }

    /// Profiles `pairs` through `cache` (a hit skips the timed simulation
    /// entirely) and sweeps the resulting profile across `periods_ns`.
    ///
    /// This is the memoized front door for tuning flows that restart the
    /// same sweep under different engine configs or aging epochs: the
    /// profile is keyed by design, delay fingerprint, and workload (see
    /// [`ProfileCache`]), so only the first call per epoch pays for gate-
    /// level simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`MultiplierDesign::profile`] errors from a cache miss.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-positive period grid, as [`run`](Self::run).
    pub fn run_cached(
        design: &MultiplierDesign,
        cache: &ProfileCache,
        pairs: &[(u64, u64)],
        factors: Option<&[f64]>,
        config: &EngineConfig,
        periods_ns: &[f64],
    ) -> Result<Self, CoreError> {
        let profile = cache.profile(design, pairs, factors)?;
        Ok(Self::run(&profile, config, periods_ns))
    }

    /// Reassembles a sweep from externally held points — the
    /// reconstruction path for sweeps resumed from a checkpoint, where
    /// each `(period, metrics)` pair was produced by an earlier
    /// [`run`](Self::run) and must round-trip bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or contains a non-positive period, as
    /// [`run`](Self::run).
    pub fn from_points(points: Vec<(f64, RunMetrics)>) -> Self {
        assert!(!points.is_empty(), "sweep needs at least one period");
        for &(p, _) in &points {
            assert!(
                p.is_finite() && p > 0.0,
                "period must be finite and positive, got {p}"
            );
        }
        PeriodSweep { points }
    }

    /// All sweep points in period order.
    pub fn points(&self) -> &[(f64, RunMetrics)] {
        &self.points
    }

    /// The period with the lowest average latency.
    pub fn best_latency(&self) -> (f64, RunMetrics) {
        self.points
            .iter()
            .min_by(|a, b| a.1.avg_latency_ns().total_cmp(&b.1.avg_latency_ns()))
            .copied()
            .expect("sweep is non-empty by construction")
    }

    /// The shortest period whose error rate (per operation) does not
    /// exceed `max_error_rate`, if any — deployment tuning under a
    /// reliability budget.
    pub fn shortest_period_within_errors(&self, max_error_rate: f64) -> Option<(f64, RunMetrics)> {
        self.points
            .iter()
            .filter(|(_, m)| {
                m.operations > 0 && (m.errors as f64 / m.operations as f64) <= max_error_rate
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use agemul_circuits::MultiplierKind;

    use crate::{MultiplierDesign, PatternSet};

    use super::*;

    fn sweep() -> PeriodSweep {
        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let profile = design
            .profile(PatternSet::uniform(8, 300, 2).pairs(), None)
            .unwrap();
        let periods: Vec<f64> = (4..=14).map(|i| 0.1 * f64::from(i)).collect();
        PeriodSweep::run(&profile, &EngineConfig::adaptive(1.0, 4), &periods)
    }

    #[test]
    fn covers_all_periods_in_order() {
        let s = sweep();
        assert_eq!(s.points().len(), 11);
        assert!(s.points().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn best_latency_is_minimal() {
        let s = sweep();
        let (_, best) = s.best_latency();
        assert!(s
            .points()
            .iter()
            .all(|(_, m)| best.avg_latency_ns() <= m.avg_latency_ns() + 1e-12));
    }

    #[test]
    fn reliability_budget_selection() {
        let s = sweep();
        // Zero-error budget: must pick a period at least as long as any
        // period that still errors.
        if let Some((p0, m0)) = s.shortest_period_within_errors(0.0) {
            assert_eq!(m0.errors, 0);
            for (p, m) in s.points() {
                if m.errors > 0 {
                    assert!(*p < p0, "errorful period {p} ≥ selected {p0}");
                }
            }
        }
        // An infinite budget picks the shortest period outright.
        let (p_any, _) = s.shortest_period_within_errors(1.0).unwrap();
        assert!((p_any - 0.4).abs() < 1e-12);
    }

    /// The sweep must equal a hand-rolled serial replay loop exactly —
    /// with the `parallel` feature enabled this is the bit-identity
    /// guarantee for the threaded fan-out.
    #[test]
    fn sweep_is_bit_identical_to_serial_replay() {
        let design = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
        let profile = design
            .profile(PatternSet::uniform(8, 250, 9).pairs(), None)
            .unwrap();
        let config = EngineConfig::adaptive(0.8, 4);
        let periods: Vec<f64> = (5..=12).map(|i| 0.1 * f64::from(i)).collect();

        let sweep = PeriodSweep::run(&profile, &config, &periods);
        for (&p, point) in periods.iter().zip(sweep.points()) {
            let cfg = EngineConfig {
                cycle_ns: p,
                ..config
            };
            assert_eq!(point, &(p, run_engine(&profile, &cfg)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn rejects_empty_grid() {
        let design = MultiplierDesign::new(MultiplierKind::Array, 4).unwrap();
        let profile = design
            .profile(PatternSet::uniform(4, 10, 1).pairs(), None)
            .unwrap();
        let _ = PeriodSweep::run(&profile, &EngineConfig::adaptive(1.0, 2), &[]);
    }
}
