//! Architecture-level energy accounting (paper Figs. 26/27).

use agemul_netlist::WorkloadStats;
use agemul_power::{EnergyBreakdown, PowerModel};

use crate::{AreaReport, MultiplierDesign};

/// Inputs to the per-operation energy computation.
///
/// Mirrors the paper's accounting: "the power of AM, FLCB, and FLRB
/// includes the power of flip-flops at the input and output, and the power
/// of A-VLCB and A-VLRB includes the power of flip-flops at the input and
/// the power of Razor flip-flops at the output" — the [`AreaReport`]
/// carries exactly that flip-flop population.
#[derive(Clone, Copy, Debug)]
pub struct EnergyInputs<'a> {
    /// Technology power coefficients.
    pub power: &'a PowerModel,
    /// Workload switching statistics (drives dynamic energy).
    pub stats: &'a WorkloadStats,
    /// Architecture area/flip-flop population.
    pub area: &'a AreaReport,
    /// Mean clock cycles per operation (1 for fixed latency).
    pub avg_cycles_per_op: f64,
    /// Mean latency per operation, nanoseconds (sets the leakage window).
    pub avg_latency_ns: f64,
    /// BTI threshold drift at the evaluation epoch, volts (0 at year 0);
    /// shrinks leakage as the circuit ages.
    pub delta_vth_v: f64,
}

/// Computes the per-operation energy breakdown of a deployed multiplier.
///
/// * dynamic: recorded gate toggles × per-gate switched capacitance;
/// * sequential: input + output flip-flops clocked `avg_cycles_per_op`
///   times per operation (clock gating means a two-cycle operation clocks
///   the input flops once, but the output flops every cycle — we charge
///   the architected cycle count to both, a ½-LSB simplification);
/// * leakage: the whole transistor population leaking for the operation's
///   latency, derated by the BTI threshold drift.
///
/// # Panics
///
/// Panics if `avg_cycles_per_op` or `avg_latency_ns` is not finite and
/// positive.
///
/// # Example
///
/// ```no_run
/// use agemul::{area_report, energy_report, Architecture, EnergyInputs, MultiplierDesign, PatternSet};
/// use agemul_circuits::MultiplierKind;
/// use agemul_power::PowerModel;
///
/// let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
/// let patterns = PatternSet::uniform(16, 1000, 11);
/// let stats = d.workload_stats(patterns.pairs())?;
/// let area = area_report(&d, Architecture::AdaptiveVariableLatency, 7)?;
/// let power = PowerModel::ptm_32nm_hk();
///
/// let e = energy_report(
///     &d,
///     EnergyInputs {
///         power: &power,
///         stats: &stats,
///         area: &area,
///         avg_cycles_per_op: 1.3,
///         avg_latency_ns: 1.17,
///         delta_vth_v: 0.0,
///     },
/// );
/// assert!(e.total_fj() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn energy_report(design: &MultiplierDesign, inputs: EnergyInputs<'_>) -> EnergyBreakdown {
    assert!(
        inputs.avg_cycles_per_op.is_finite() && inputs.avg_cycles_per_op > 0.0,
        "cycles per op must be finite and positive, got {}",
        inputs.avg_cycles_per_op
    );
    let dynamic_fj = inputs
        .power
        .dynamic_energy_per_op_fj(design.circuit().netlist(), inputs.stats);

    let per_edge = inputs
        .power
        .flop_energy_fj(agemul_logic::FlopKind::Dff, inputs.area.input_flop_count)
        + inputs
            .power
            .flop_energy_fj(inputs.area.output_flop_kind, inputs.area.output_flop_count);
    let sequential_fj = per_edge * inputs.avg_cycles_per_op;

    let leakage_fj = inputs.power.leakage_energy_fj(
        inputs.area.total_transistors(),
        inputs.delta_vth_v,
        inputs.avg_latency_ns,
    );

    EnergyBreakdown {
        dynamic_fj,
        sequential_fj,
        leakage_fj,
    }
}

#[cfg(test)]
mod tests {
    use agemul_circuits::MultiplierKind;

    use crate::{area_report, Architecture, PatternSet};

    use super::*;

    fn fixture() -> (MultiplierDesign, WorkloadStats) {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 60, 5);
        let stats = d.workload_stats(patterns.pairs()).unwrap();
        (d, stats)
    }

    #[test]
    fn breakdown_components_positive() {
        let (d, stats) = fixture();
        let area = area_report(&d, Architecture::AdaptiveVariableLatency, 4).unwrap();
        let power = PowerModel::ptm_32nm_hk();
        let e = energy_report(
            &d,
            EnergyInputs {
                power: &power,
                stats: &stats,
                area: &area,
                avg_cycles_per_op: 1.2,
                avg_latency_ns: 1.0,
                delta_vth_v: 0.0,
            },
        );
        assert!(e.dynamic_fj > 0.0);
        assert!(e.sequential_fj > 0.0);
        assert!(e.leakage_fj > 0.0);
    }

    #[test]
    fn aging_reduces_energy() {
        let (d, stats) = fixture();
        let area = area_report(&d, Architecture::AdaptiveVariableLatency, 4).unwrap();
        let power = PowerModel::ptm_32nm_hk();
        let base = EnergyInputs {
            power: &power,
            stats: &stats,
            area: &area,
            avg_cycles_per_op: 1.2,
            avg_latency_ns: 1.0,
            delta_vth_v: 0.0,
        };
        let fresh = energy_report(&d, base);
        let aged = energy_report(
            &d,
            EnergyInputs {
                delta_vth_v: 0.05,
                ..base
            },
        );
        assert!(aged.total_fj() < fresh.total_fj());
        assert_eq!(aged.dynamic_fj, fresh.dynamic_fj); // only leakage shrinks
    }

    #[test]
    fn razor_outputs_cost_more_than_plain() {
        let (d, stats) = fixture();
        let power = PowerModel::ptm_32nm_hk();
        let fl_area = area_report(&d, Architecture::FixedLatency, 4).unwrap();
        let avl_area = area_report(&d, Architecture::AdaptiveVariableLatency, 4).unwrap();
        let mk = |area| {
            energy_report(
                &d,
                EnergyInputs {
                    power: &power,
                    stats: &stats,
                    area,
                    avg_cycles_per_op: 1.0,
                    avg_latency_ns: 1.0,
                    delta_vth_v: 0.0,
                },
            )
        };
        assert!(mk(&avl_area).sequential_fj > mk(&fl_area).sequential_fj);
    }
}
