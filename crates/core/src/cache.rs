//! Delay-profile memoization.
//!
//! Profiling is the expensive half of every experiment: one timed
//! simulation per operand pair. Several flows re-profile the *same*
//! workload under the *same* delay assignment — period sweeps restarted
//! with different engine configs, calibration probes, and fault campaigns
//! whose delay faults share a baseline — so [`ProfileCache`] memoizes
//! finished [`PatternProfile`]s behind a key that is exact by construction:
//!
//! * the multiplier **kind** and **width** (circuit generation is
//!   deterministic, so these pin the netlist),
//! * the [`DelayAssignment::fingerprint`] — the *delay epoch*: any aging
//!   step, calibration rescale, or per-gate inflation changes it,
//! * a fingerprint of the ordered operand pairs (profiles are two-vector
//!   measurements, so order matters and is part of the key).
//!
//! Equal keys therefore mean equal profiles (up to 64-bit fingerprint
//! collision), and a hit returns the cached [`Arc`] without touching a
//! simulator. The cache is `Mutex`-guarded and shared by reference, so
//! campaign preparation can consult it from worker threads under the
//! `parallel` feature.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use agemul_circuits::MultiplierKind;
use agemul_netlist::DelayAssignment;

use crate::{MultiplierDesign, PatternProfile};

/// Reciprocal of the aging-factor quantization step: factors are snapped to
/// a `1/4096` grid (≈ 2.4e-4 relative delay resolution — far below any
/// observable timing difference at femtosecond rounding) before a delay
/// assignment is built from them.
///
/// Both the cache key and the incremental sweep's year-over-year diff
/// ([`AgingSweep`](crate::AgingSweep)) operate on *quantized* factors, so
/// the two agree by construction: a ΔVth step too small to move any factor
/// across a grid line is a cache hit *and* a zero-gate diff.
pub const AGING_FACTOR_GRID: f64 = 4096.0;

/// Snaps one aging factor onto the shared quantization grid.
#[inline]
pub fn quantize_factor(f: f64) -> f64 {
    (f * AGING_FACTOR_GRID).round() / AGING_FACTOR_GRID
}

/// Snaps a per-gate aging-factor vector onto the shared quantization grid.
pub fn quantize_factors(factors: &[f64]) -> Vec<f64> {
    factors.iter().map(|&f| quantize_factor(f)).collect()
}

/// FNV-1a over the ordered operand pairs; the workload half of a cache key.
fn workload_fingerprint(pairs: &[(u64, u64)]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |word: u64| {
        for b in word.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    };
    mix(pairs.len() as u64);
    for &(a, b) in pairs {
        mix(a);
        mix(b);
    }
    h
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    kind: MultiplierKind,
    width: usize,
    delay_fingerprint: u64,
    workload_fingerprint: u64,
}

/// A memoization cache for timing profiles, keyed by (kind, width,
/// delay-assignment fingerprint, workload fingerprint).
///
/// # Example
///
/// ```no_run
/// use agemul::{MultiplierDesign, PatternSet, ProfileCache};
/// use agemul_circuits::MultiplierKind;
///
/// let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
/// let patterns = PatternSet::uniform(16, 4_096, 7);
/// let cache = ProfileCache::new();
///
/// let first = cache.profile(&design, patterns.pairs(), None)?; // simulates
/// let again = cache.profile(&design, patterns.pairs(), None)?; // cache hit
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// assert_eq!(cache.hits(), 1);
/// # Ok::<(), agemul::CoreError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProfileCache {
    map: Mutex<HashMap<CacheKey, Arc<PatternProfile>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProfileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lookups answered from the cache.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to build a profile.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached profiles.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache mutex poisoned").len()
    }

    /// Whether the cache holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached profile (counters are kept).
    pub fn clear(&self) {
        self.map.lock().expect("cache mutex poisoned").clear();
    }

    /// The memoized equivalent of [`MultiplierDesign::profile`]: a hit
    /// returns the cached profile, a miss profiles `pairs` (levelized
    /// kernel, functional verification included) and caches the result.
    ///
    /// Aging factors are snapped onto the [`AGING_FACTOR_GRID`] before the
    /// delay assignment is built, so two factor vectors that differ by less
    /// than the grid step produce the *same* assignment (and fingerprint):
    /// a sub-threshold ΔVth aging step is an honest cache hit, not a
    /// near-duplicate entry. This is the same grid the incremental
    /// [`AgingSweep`](crate::AgingSweep) diff uses.
    ///
    /// # Errors
    ///
    /// Propagates [`MultiplierDesign::profile`] errors on a miss; errors
    /// are not cached.
    pub fn profile(
        &self,
        design: &MultiplierDesign,
        pairs: &[(u64, u64)],
        factors: Option<&[f64]>,
    ) -> Result<Arc<PatternProfile>, crate::CoreError> {
        let quantized = factors.map(quantize_factors);
        let factors = quantized.as_deref();
        let delays = design.delay_assignment(factors)?;
        self.get_or_insert_with(design, &delays, pairs, || design.profile(pairs, factors))
    }

    /// Looks up the profile for (`design`, `delays`, `pairs`), building it
    /// with `build` and caching it on a miss.
    ///
    /// The caller promises that `build` produces the profile of exactly
    /// this workload under exactly `delays` — campaign preparation uses
    /// this with its verification-free delay-fault profiler. The build runs
    /// outside the cache lock, so concurrent callers (parallel campaign
    /// tasks) never serialize their simulations; if two race on the same
    /// key, the first inserted profile wins and both get the same `Arc`.
    ///
    /// # Errors
    ///
    /// Propagates `build` errors; errors are not cached.
    pub fn get_or_insert_with<E>(
        &self,
        design: &MultiplierDesign,
        delays: &DelayAssignment,
        pairs: &[(u64, u64)],
        build: impl FnOnce() -> Result<PatternProfile, E>,
    ) -> Result<Arc<PatternProfile>, E> {
        let key = CacheKey {
            kind: design.kind(),
            width: design.width(),
            delay_fingerprint: delays.fingerprint(),
            workload_fingerprint: workload_fingerprint(pairs),
        };
        if let Some(hit) = self
            .map
            .lock()
            .expect("cache mutex poisoned")
            .get(&key)
            .cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build()?);
        Ok(self
            .map
            .lock()
            .expect("cache mutex poisoned")
            .entry(key)
            .or_insert(built)
            .clone())
    }
}

#[cfg(test)]
mod tests {
    use agemul_circuits::MultiplierKind;

    use super::*;
    use crate::PatternSet;

    #[test]
    fn repeat_profiles_hit_the_cache() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 40, 3);
        let cache = ProfileCache::new();

        let first = cache.profile(&d, patterns.pairs(), None).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let again = cache.profile(&d, patterns.pairs(), None).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);

        // The cached profile is the uncached one, record for record.
        let direct = d.profile(patterns.pairs(), None).unwrap();
        assert_eq!(first.records(), direct.records());
    }

    #[test]
    fn delay_epoch_separates_entries() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 30, 5);
        let factors = vec![1.2; d.circuit().netlist().gate_count()];
        let cache = ProfileCache::new();

        let fresh = cache.profile(&d, patterns.pairs(), None).unwrap();
        let aged = cache.profile(&d, patterns.pairs(), Some(&factors)).unwrap();
        assert_eq!(cache.misses(), 2, "different fingerprints, both build");
        assert!(aged.avg_delay_ns() > fresh.avg_delay_ns());

        // Same factors again: same fingerprint, hit.
        let aged2 = cache.profile(&d, patterns.pairs(), Some(&factors)).unwrap();
        assert!(Arc::ptr_eq(&aged, &aged2));
        assert_eq!(cache.hits(), 1);
    }

    /// A ΔVth step smaller than the quantization grid must be a cache hit,
    /// and the hit must be coherent: the cached profile is byte-identical
    /// to what a fresh (miss) build of the perturbed factors would produce,
    /// because both snap to the same grid point before simulating.
    #[test]
    fn sub_threshold_aging_step_hits_coherently() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 30, 11);
        let gates = d.circuit().netlist().gate_count();
        let cache = ProfileCache::new();

        let year_y = vec![1.08; gates];
        // Perturb by a tenth of the grid step: same grid point.
        let eps = 0.1 / super::AGING_FACTOR_GRID;
        let year_y1: Vec<f64> = year_y.iter().map(|f| f + eps).collect();
        assert_eq!(quantize_factors(&year_y), quantize_factors(&year_y1));

        let base = cache.profile(&d, patterns.pairs(), Some(&year_y)).unwrap();
        let stepped = cache.profile(&d, patterns.pairs(), Some(&year_y1)).unwrap();
        assert!(Arc::ptr_eq(&base, &stepped), "sub-threshold step must hit");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Coherence: a from-scratch build of the perturbed vector (through
        // the same quantization) reproduces the cached records exactly.
        let direct = d
            .profile(patterns.pairs(), Some(&quantize_factors(&year_y1)))
            .unwrap();
        assert_eq!(base.records(), direct.records());

        // A step that does cross a grid line still misses.
        let coarse: Vec<f64> = year_y
            .iter()
            .map(|f| f + 2.0 / super::AGING_FACTOR_GRID)
            .collect();
        cache.profile(&d, patterns.pairs(), Some(&coarse)).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn workload_order_is_part_of_the_key() {
        // Two-vector timing depends on pattern order, so a reordered
        // workload must not hit the original's entry.
        let d = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
        let fwd = [(3u64, 5u64), (0xFF, 0xFF), (0, 1)];
        let rev = [(0u64, 1u64), (0xFF, 0xFF), (3, 5)];
        let cache = ProfileCache::new();
        cache.profile(&d, &fwd, None).unwrap();
        cache.profile(&d, &rev, None).unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_the_map() {
        let d = MultiplierDesign::new(MultiplierKind::Array, 4).unwrap();
        let cache = ProfileCache::new();
        cache.profile(&d, &[(1, 2), (3, 3)], None).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        cache.profile(&d, &[(1, 2), (3, 3)], None).unwrap();
        assert_eq!(cache.misses(), 2);
    }
}
