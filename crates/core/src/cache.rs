//! Delay-profile memoization.
//!
//! Profiling is the expensive half of every experiment: one timed
//! simulation per operand pair. Several flows re-profile the *same*
//! workload under the *same* delay assignment — period sweeps restarted
//! with different engine configs, calibration probes, and fault campaigns
//! whose delay faults share a baseline — so [`ProfileCache`] memoizes
//! finished [`PatternProfile`]s behind a key that is exact by construction:
//!
//! * the multiplier **kind** and **width** (circuit generation is
//!   deterministic, so these pin the netlist),
//! * the [`DelayAssignment::fingerprint`] — the *delay epoch*: any aging
//!   step, calibration rescale, or per-gate inflation changes it,
//! * a fingerprint of the ordered operand pairs (profiles are two-vector
//!   measurements, so order matters and is part of the key).
//!
//! Equal keys therefore mean equal profiles (up to 64-bit fingerprint
//! collision), and a hit returns the cached [`Arc`] without touching a
//! simulator.
//!
//! # Sharding, bounding, and poison recovery
//!
//! The cache is built for a *resident* process (`agemul-serve`), not just
//! one-shot experiment runs, which imposes three requirements a single
//! unbounded `Mutex<HashMap>` cannot meet:
//!
//! * **sharding** — entries live in [`SHARD_COUNT`] independently locked
//!   shards selected by hashing (kind, width), so concurrent requests for
//!   different designs never contend on one global lock (and a campaign's
//!   per-fault inserts only serialize against their own design's shard);
//! * **bounding** — [`ProfileCache::with_capacity`] arms a per-shard LRU
//!   bound: once a shard is full, inserting a fresh key evicts the
//!   least-recently-*used* entry (hits refresh recency), so a long-lived
//!   server's memory is `SHARD_COUNT × capacity` profiles at worst;
//! * **poison recovery** — every lock acquisition recovers from a poisoned
//!   mutex via [`std::sync::PoisonError::into_inner`]. A worker thread
//!   that panics while holding a shard lock leaves the shard's map fully
//!   consistent (all map mutations are single calls that either happen or
//!   don't), so propagating the poison would turn one quarantined request
//!   into a permanent denial of service for every later request that
//!   hashes to the shard.
//!
//! [`ProfileCache::new`] keeps the historical unbounded behaviour, so the
//! experiment flows (and the `cache_keys` / hit≡miss coherence suites that
//! pin them) are unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use agemul_circuits::MultiplierKind;
use agemul_netlist::DelayAssignment;

use crate::{MultiplierDesign, PatternProfile};

/// Reciprocal of the aging-factor quantization step: factors are snapped to
/// a `1/4096` grid (≈ 2.4e-4 relative delay resolution — far below any
/// observable timing difference at femtosecond rounding) before a delay
/// assignment is built from them.
///
/// Both the cache key and the incremental sweep's year-over-year diff
/// ([`AgingSweep`](crate::AgingSweep)) operate on *quantized* factors, so
/// the two agree by construction: a ΔVth step too small to move any factor
/// across a grid line is a cache hit *and* a zero-gate diff.
pub const AGING_FACTOR_GRID: f64 = 4096.0;

/// Number of independently locked shards in a [`ProfileCache`].
///
/// Shard selection hashes (kind, width), so every profile of one design
/// lands in one shard and designs spread across the others. 16 shards
/// cover the workspace's design population (5 kinds × a handful of
/// widths) with low collision while keeping an empty cache small.
pub const SHARD_COUNT: usize = 16;

/// Snaps one aging factor onto the shared quantization grid.
#[inline]
pub fn quantize_factor(f: f64) -> f64 {
    (f * AGING_FACTOR_GRID).round() / AGING_FACTOR_GRID
}

/// Snaps a per-gate aging-factor vector onto the shared quantization grid.
pub fn quantize_factors(factors: &[f64]) -> Vec<f64> {
    factors.iter().map(|&f| quantize_factor(f)).collect()
}

/// FNV-1a over a `u64` stream — both the workload fingerprint and the
/// shard-selection hash use it (tiny, deterministic, dependency-free).
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for word in words {
        for b in word.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// FNV-1a over the ordered operand pairs; the workload half of a cache key.
fn workload_fingerprint(pairs: &[(u64, u64)]) -> u64 {
    fnv1a(std::iter::once(pairs.len() as u64).chain(pairs.iter().flat_map(|&(a, b)| [a, b])))
}

/// Stable per-kind tag for shard selection (independent of discriminant
/// layout, so the shard map never silently moves across refactors).
fn kind_tag(kind: MultiplierKind) -> u64 {
    match kind {
        MultiplierKind::Array => 1,
        MultiplierKind::ColumnBypass => 2,
        MultiplierKind::RowBypass => 3,
        MultiplierKind::Wallace => 4,
        MultiplierKind::Booth => 5,
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    kind: MultiplierKind,
    width: usize,
    delay_fingerprint: u64,
    workload_fingerprint: u64,
}

/// Lock-free tallies for one shard (the shard mutex is *not* held while
/// a miss simulates, so the counters must be independently atomic).
#[derive(Default)]
struct ShardCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time statistics snapshot of one cache shard — the unit of
/// the `agemul-serve` `stats` op's per-shard breakdown. Shard residency is
/// keyed by (kind, width), so a hot shard identifies a hot *design*, and
/// an eviction-heavy shard identifies a design population outgrowing its
/// per-shard bound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index in `0..`[`SHARD_COUNT`].
    pub index: usize,
    /// Profiles currently resident in the shard.
    pub entries: usize,
    /// Lookups answered from this shard.
    pub hits: u64,
    /// Lookups that had to build a profile keyed into this shard.
    pub misses: u64,
    /// Entries evicted from this shard by the LRU bound.
    pub evictions: u64,
}

/// One cached profile plus its LRU stamp (larger = more recently used).
struct Entry {
    profile: Arc<PatternProfile>,
    stamp: u64,
}

/// One shard: a map plus the shard-local LRU clock.
#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

impl Shard {
    /// Advances the clock and returns the new stamp.
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// One exported cache entry — the unit of the on-disk warm-start snapshot
/// (see [`ProfileCache::entries`] / [`ProfileCache::seed_entry`]).
#[derive(Clone)]
pub struct CacheEntry {
    /// Multiplier architecture of the cached profile.
    pub kind: MultiplierKind,
    /// Operand width in bits.
    pub width: usize,
    /// [`DelayAssignment::fingerprint`] the profile was simulated under.
    pub delay_fingerprint: u64,
    /// Fingerprint of the ordered operand pairs.
    pub workload_fingerprint: u64,
    /// The cached profile.
    pub profile: Arc<PatternProfile>,
}

/// A memoization cache for timing profiles, keyed by (kind, width,
/// delay-assignment fingerprint, workload fingerprint) and sharded by
/// (kind, width). See the module docs for the sharding, bounding, and
/// poison-recovery model.
///
/// # Example
///
/// ```no_run
/// use agemul::{MultiplierDesign, PatternSet, ProfileCache};
/// use agemul_circuits::MultiplierKind;
///
/// let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
/// let patterns = PatternSet::uniform(16, 4_096, 7);
/// let cache = ProfileCache::new();
///
/// let first = cache.profile(&design, patterns.pairs(), None)?; // simulates
/// let again = cache.profile(&design, patterns.pairs(), None)?; // cache hit
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// assert_eq!(cache.hits(), 1);
/// # Ok::<(), agemul::CoreError>(())
/// ```
#[derive(Default)]
pub struct ProfileCache {
    shards: [Mutex<Shard>; SHARD_COUNT],
    /// Per-shard entry bound; 0 = unbounded.
    capacity: usize,
    counters: [ShardCounters; SHARD_COUNT],
}

impl std::fmt::Debug for ProfileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileCache")
            .field("len", &self.len())
            .field("shard_capacity", &self.shard_capacity())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl ProfileCache {
    /// An empty, *unbounded* cache — the historical behaviour, right for
    /// bounded-lifetime experiment runs.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `per_shard` profiles in each of its
    /// [`SHARD_COUNT`] shards; a full shard evicts its least-recently-used
    /// entry on insert. The configuration for resident processes.
    ///
    /// # Panics
    ///
    /// Panics if `per_shard` is zero (a cache that can hold nothing cannot
    /// honour the hit≡miss coherence contract).
    pub fn with_capacity(per_shard: usize) -> Self {
        assert!(per_shard > 0, "per-shard capacity must be at least 1");
        ProfileCache {
            capacity: per_shard,
            ..Self::default()
        }
    }

    /// The per-shard entry bound, if this cache is bounded.
    #[inline]
    pub fn shard_capacity(&self) -> Option<usize> {
        (self.capacity > 0).then_some(self.capacity)
    }

    /// Number of lookups answered from the cache (all shards).
    #[inline]
    pub fn hits(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of lookups that had to build a profile (all shards).
    #[inline]
    pub fn misses(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.misses.load(Ordering::Relaxed))
            .sum()
    }

    /// Number of entries evicted by the per-shard LRU bound (all shards).
    #[inline]
    pub fn evictions(&self) -> u64 {
        self.counters
            .iter()
            .map(|c| c.evictions.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard statistics snapshot, indexed `0..`[`SHARD_COUNT`].
    ///
    /// Counters and entry counts are read per shard without a global
    /// freeze, so concurrent traffic can make the rows mutually slightly
    /// stale — fine for the monitoring they exist for.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        (0..SHARD_COUNT)
            .map(|index| ShardStats {
                index,
                entries: self.lock_shard(index).map.len(),
                hits: self.counters[index].hits.load(Ordering::Relaxed),
                misses: self.counters[index].misses.load(Ordering::Relaxed),
                evictions: self.counters[index].evictions.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Locks one shard, recovering from poison: a panic while the lock was
    /// held cannot corrupt the map (every mutation is a single `HashMap`
    /// call), so the data is trusted and the shard stays serviceable.
    fn lock_shard(&self, index: usize) -> MutexGuard<'_, Shard> {
        self.shards[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The shard every profile of (`kind`, `width`) lives in.
    fn shard_index(kind: MultiplierKind, width: usize) -> usize {
        (fnv1a([kind_tag(kind), width as u64]) % SHARD_COUNT as u64) as usize
    }

    /// Number of cached profiles across all shards.
    pub fn len(&self) -> usize {
        (0..SHARD_COUNT).map(|i| self.lock_shard(i).map.len()).sum()
    }

    /// Whether the cache holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached profile (counters are kept).
    pub fn clear(&self) {
        for i in 0..SHARD_COUNT {
            self.lock_shard(i).map.clear();
        }
    }

    /// Exports every cached entry (key parts + profile `Arc`), shard by
    /// shard — the producer side of a warm-start snapshot. Recency order
    /// is not preserved; a reloaded cache starts with a fresh LRU clock.
    pub fn entries(&self) -> Vec<CacheEntry> {
        let mut out = Vec::new();
        for i in 0..SHARD_COUNT {
            let shard = self.lock_shard(i);
            out.extend(shard.map.iter().map(|(k, e)| CacheEntry {
                kind: k.kind,
                width: k.width,
                delay_fingerprint: k.delay_fingerprint,
                workload_fingerprint: k.workload_fingerprint,
                profile: Arc::clone(&e.profile),
            }));
        }
        out
    }

    /// Inserts a profile under externally recorded key parts — the
    /// consumer side of a warm-start snapshot.
    ///
    /// The caller promises the entry was produced by this workspace's
    /// profiling path for exactly that key (snapshot loaders get this for
    /// free: the fingerprints were recorded next to the profile). Neither
    /// the hit/miss counters nor eviction stats count the insert; a full
    /// shard evicts as usual.
    pub fn seed_entry(&self, entry: &CacheEntry) {
        let key = CacheKey {
            kind: entry.kind,
            width: entry.width,
            delay_fingerprint: entry.delay_fingerprint,
            workload_fingerprint: entry.workload_fingerprint,
        };
        let index = Self::shard_index(entry.kind, entry.width);
        let mut shard = self.lock_shard(index);
        let stamp = shard.tick();
        self.evict_if_full(index, &mut shard, &key);
        shard.map.insert(
            key,
            Entry {
                profile: Arc::clone(&entry.profile),
                stamp,
            },
        );
    }

    /// Evicts the least-recently-used entry if inserting `incoming` would
    /// overflow a bounded shard. (No-op when `incoming` is already
    /// present — a replace does not grow the map.) `index` is the shard's
    /// position, used only to tally the eviction.
    fn evict_if_full(&self, index: usize, shard: &mut Shard, incoming: &CacheKey) {
        if self.capacity == 0 || shard.map.len() < self.capacity || shard.map.contains_key(incoming)
        {
            return;
        }
        if let Some(victim) = shard
            .map
            .iter()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(k, _)| *k)
        {
            shard.map.remove(&victim);
            self.counters[index]
                .evictions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The memoized equivalent of [`MultiplierDesign::profile`]: a hit
    /// returns the cached profile, a miss profiles `pairs` (levelized
    /// kernel, functional verification included) and caches the result.
    ///
    /// Aging factors are snapped onto the [`AGING_FACTOR_GRID`] before the
    /// delay assignment is built, so two factor vectors that differ by less
    /// than the grid step produce the *same* assignment (and fingerprint):
    /// a sub-threshold ΔVth aging step is an honest cache hit, not a
    /// near-duplicate entry. This is the same grid the incremental
    /// [`AgingSweep`](crate::AgingSweep) diff uses.
    ///
    /// # Errors
    ///
    /// Propagates [`MultiplierDesign::profile`] errors on a miss; errors
    /// are not cached.
    pub fn profile(
        &self,
        design: &MultiplierDesign,
        pairs: &[(u64, u64)],
        factors: Option<&[f64]>,
    ) -> Result<Arc<PatternProfile>, crate::CoreError> {
        let quantized = factors.map(quantize_factors);
        let factors = quantized.as_deref();
        let delays = design.delay_assignment(factors)?;
        self.get_or_insert_with(design, &delays, pairs, || design.profile(pairs, factors))
    }

    /// Looks up the profile for (`design`, `delays`, `pairs`), building it
    /// with `build` and caching it on a miss.
    ///
    /// The caller promises that `build` produces the profile of exactly
    /// this workload under exactly `delays` — campaign preparation uses
    /// this with its verification-free delay-fault profiler. The build runs
    /// outside the cache lock, so concurrent callers (parallel campaign
    /// tasks, server workers) never serialize their simulations; if two
    /// race on the same key, the first inserted profile wins and both get
    /// the same `Arc`. For flows where N identical cold requests must cost
    /// *one* simulation rather than N racing ones, put a single-flight
    /// coalescer in front (the `agemul-serve` crate does).
    ///
    /// # Errors
    ///
    /// Propagates `build` errors; errors are not cached.
    pub fn get_or_insert_with<E>(
        &self,
        design: &MultiplierDesign,
        delays: &DelayAssignment,
        pairs: &[(u64, u64)],
        build: impl FnOnce() -> Result<PatternProfile, E>,
    ) -> Result<Arc<PatternProfile>, E> {
        let key = CacheKey {
            kind: design.kind(),
            width: design.width(),
            delay_fingerprint: delays.fingerprint(),
            workload_fingerprint: workload_fingerprint(pairs),
        };
        let index = Self::shard_index(key.kind, key.width);
        {
            let mut shard = self.lock_shard(index);
            let stamp = shard.tick();
            if let Some(entry) = shard.map.get_mut(&key) {
                entry.stamp = stamp;
                self.counters[index].hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.profile));
            }
        }
        self.counters[index].misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build()?);
        let mut shard = self.lock_shard(index);
        let stamp = shard.tick();
        if let Some(entry) = shard.map.get_mut(&key) {
            // A racing build won while ours simulated; keep the incumbent
            // so both callers share one Arc.
            entry.stamp = stamp;
            return Ok(Arc::clone(&entry.profile));
        }
        self.evict_if_full(index, &mut shard, &key);
        shard.map.insert(
            key,
            Entry {
                profile: Arc::clone(&built),
                stamp,
            },
        );
        Ok(built)
    }

    /// Test hook: poisons the shard that (`kind`, `width`) hashes to, by
    /// panicking on a helper thread while it holds the shard lock.
    ///
    /// Exists so the poison-recovery regression suite can drive the exact
    /// failure a panicking worker produces in a resident server; nothing
    /// outside tests should call it.
    #[doc(hidden)]
    pub fn poison_shard_for_test(&self, kind: MultiplierKind, width: usize) {
        let index = Self::shard_index(kind, width);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = self.shards[index]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                panic!("poisoning ProfileCache shard {index} for test");
            });
            // The panic is the point; swallow the propagated Err.
            let _ = handle.join();
        });
    }
}

#[cfg(test)]
mod tests {
    use agemul_circuits::MultiplierKind;

    use super::*;
    use crate::PatternSet;

    #[test]
    fn repeat_profiles_hit_the_cache() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 40, 3);
        let cache = ProfileCache::new();

        let first = cache.profile(&d, patterns.pairs(), None).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let again = cache.profile(&d, patterns.pairs(), None).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);

        // The cached profile is the uncached one, record for record.
        let direct = d.profile(patterns.pairs(), None).unwrap();
        assert_eq!(first.records(), direct.records());
    }

    #[test]
    fn delay_epoch_separates_entries() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 30, 5);
        let factors = vec![1.2; d.circuit().netlist().gate_count()];
        let cache = ProfileCache::new();

        let fresh = cache.profile(&d, patterns.pairs(), None).unwrap();
        let aged = cache.profile(&d, patterns.pairs(), Some(&factors)).unwrap();
        assert_eq!(cache.misses(), 2, "different fingerprints, both build");
        assert!(aged.avg_delay_ns() > fresh.avg_delay_ns());

        // Same factors again: same fingerprint, hit.
        let aged2 = cache.profile(&d, patterns.pairs(), Some(&factors)).unwrap();
        assert!(Arc::ptr_eq(&aged, &aged2));
        assert_eq!(cache.hits(), 1);
    }

    /// A ΔVth step smaller than the quantization grid must be a cache hit,
    /// and the hit must be coherent: the cached profile is byte-identical
    /// to what a fresh (miss) build of the perturbed factors would produce,
    /// because both snap to the same grid point before simulating.
    #[test]
    fn sub_threshold_aging_step_hits_coherently() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 30, 11);
        let gates = d.circuit().netlist().gate_count();
        let cache = ProfileCache::new();

        let year_y = vec![1.08; gates];
        // Perturb by a tenth of the grid step: same grid point.
        let eps = 0.1 / super::AGING_FACTOR_GRID;
        let year_y1: Vec<f64> = year_y.iter().map(|f| f + eps).collect();
        assert_eq!(quantize_factors(&year_y), quantize_factors(&year_y1));

        let base = cache.profile(&d, patterns.pairs(), Some(&year_y)).unwrap();
        let stepped = cache.profile(&d, patterns.pairs(), Some(&year_y1)).unwrap();
        assert!(Arc::ptr_eq(&base, &stepped), "sub-threshold step must hit");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // Coherence: a from-scratch build of the perturbed vector (through
        // the same quantization) reproduces the cached records exactly.
        let direct = d
            .profile(patterns.pairs(), Some(&quantize_factors(&year_y1)))
            .unwrap();
        assert_eq!(base.records(), direct.records());

        // A step that does cross a grid line still misses.
        let coarse: Vec<f64> = year_y
            .iter()
            .map(|f| f + 2.0 / super::AGING_FACTOR_GRID)
            .collect();
        cache.profile(&d, patterns.pairs(), Some(&coarse)).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn workload_order_is_part_of_the_key() {
        // Two-vector timing depends on pattern order, so a reordered
        // workload must not hit the original's entry.
        let d = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
        let fwd = [(3u64, 5u64), (0xFF, 0xFF), (0, 1)];
        let rev = [(0u64, 1u64), (0xFF, 0xFF), (3, 5)];
        let cache = ProfileCache::new();
        cache.profile(&d, &fwd, None).unwrap();
        cache.profile(&d, &rev, None).unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_the_map() {
        let d = MultiplierDesign::new(MultiplierKind::Array, 4).unwrap();
        let cache = ProfileCache::new();
        cache.profile(&d, &[(1, 2), (3, 3)], None).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        cache.profile(&d, &[(1, 2), (3, 3)], None).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn entries_round_trip_through_seed_entry() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 12, 9);
        let warm = ProfileCache::new();
        let original = warm.profile(&d, patterns.pairs(), None).unwrap();

        // Export from the warm cache, import into a cold one: the replayed
        // lookup must hit and serve the seeded profile.
        let cold = ProfileCache::new();
        for entry in warm.entries() {
            cold.seed_entry(&entry);
        }
        assert_eq!(cold.len(), 1);
        assert_eq!((cold.hits(), cold.misses()), (0, 0), "seeding is untallied");
        let served = cold.profile(&d, patterns.pairs(), None).unwrap();
        assert_eq!((cold.hits(), cold.misses()), (1, 0));
        assert_eq!(served.records(), original.records());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let d = MultiplierDesign::new(MultiplierKind::Array, 4).unwrap();
        let cache = ProfileCache::new();
        for i in 0..40u64 {
            cache.profile(&d, &[(i % 16, (i / 16) % 16)], None).unwrap();
        }
        assert_eq!(cache.evictions(), 0);
        assert!(cache.shard_capacity().is_none());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = ProfileCache::with_capacity(0);
    }

    /// Per-shard rows must attribute traffic to the shard its design hashes
    /// to, and the global counters are exactly the per-shard sums.
    #[test]
    fn shard_stats_attribute_and_sum() {
        let d = MultiplierDesign::new(MultiplierKind::Array, 4).unwrap();
        let cache = ProfileCache::with_capacity(2);
        // 3 distinct workloads into one (kind, width) shard: 3 misses, one
        // LRU eviction; then a repeat of the newest for a hit.
        for pairs in [[(1u64, 2u64)], [(3, 4)], [(5, 6)], [(5, 6)]] {
            cache.profile(&d, &pairs, None).unwrap();
        }
        let stats = cache.shard_stats();
        assert_eq!(stats.len(), SHARD_COUNT);
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), cache.hits());
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), cache.misses());
        assert_eq!(
            stats.iter().map(|s| s.evictions).sum::<u64>(),
            cache.evictions()
        );
        assert_eq!(stats.iter().map(|s| s.entries).sum::<usize>(), cache.len());

        let home = stats
            .iter()
            .find(|s| s.misses > 0)
            .expect("the design's shard saw traffic");
        assert_eq!(
            (home.hits, home.misses, home.evictions, home.entries),
            (1, 3, 1, 2),
            "all traffic lands in the design's home shard"
        );
        for other in stats.iter().filter(|s| s.index != home.index) {
            assert_eq!(
                (other.hits, other.misses, other.evictions, other.entries),
                (0, 0, 0, 0),
                "shard {} saw no traffic",
                other.index
            );
        }
    }
}
