//! Workspace-wide delay calibration against the paper's reference point.

use std::sync::OnceLock;

use agemul_circuits::{MultiplierCircuit, MultiplierKind};
use agemul_logic::{DelayModel, Logic};
use agemul_netlist::{static_critical_path_ns, DelayAssignment, LevelSim, Netlist, Topology};

/// The paper's reported critical-path delay of the 16×16 array multiplier
/// (Fig. 5): 1.32 ns. The workspace delay model is scaled so our simulated
/// AM hits exactly this number (as a static longest-path bound); every
/// other delay in every experiment then shares the same scale.
pub const PAPER_AM16_CRITICAL_NS: f64 = 1.32;

/// Measures a circuit's worst *observed* sensitized path delay.
///
/// Event-driven timing only sees sensitized paths, so the measurement
/// drives a deterministic battery of adversarial transitions — all-zeros ↔
/// all-ones, checkerboards, single-operand saturations — plus `samples`
/// LCG-generated pseudo-random pairs, and returns the worst delay seen.
///
/// This is a *lower* bound on the true critical path (finding the worst
/// sensitizable vector pair of a multiplier is hard); fixed-latency
/// deployments and the workspace calibration therefore use the
/// conservative static bound
/// ([`agemul_netlist::static_critical_path_ns`]) instead, and the test
/// suite checks `measured ≤ static` as a simulator invariant.
///
/// # Example
///
/// ```
/// use agemul::measure_critical_delay;
/// use agemul_circuits::{MultiplierCircuit, MultiplierKind};
/// use agemul_logic::DelayModel;
/// use agemul_netlist::DelayAssignment;
///
/// let m = MultiplierCircuit::generate(MultiplierKind::Array, 8)?;
/// let topo = m.netlist().topology()?;
/// let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
/// let crit = measure_critical_delay(m.netlist(), &topo, &delays, 8, 256);
/// assert!(crit > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn measure_critical_delay(
    netlist: &Netlist,
    topology: &Topology,
    delays: &DelayAssignment,
    width: usize,
    samples: usize,
) -> f64 {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let checker_a = 0xAAAA_AAAA_AAAA_AAAAu64 & mask;
    let checker_5 = 0x5555_5555_5555_5555u64 & mask;

    let mut sequence: Vec<(u64, u64)> = vec![
        (0, 0),
        (mask, mask),
        (0, 0),
        (mask, 1),
        (1, mask),
        (mask, mask),
        (0, mask),
        (mask, mask),
        (mask, 0),
        (mask, mask),
        (checker_a, mask),
        (checker_5, mask),
        (mask, checker_a),
        (mask, checker_5),
        (mask, mask),
        (mask - 1, mask),
        (mask, mask - 1),
        (mask, mask),
    ];
    // Deterministic LCG tail: worst cases sometimes hide in odd corners.
    let mut state = 0x5DEE_CE66_D1CE_4E5Du64;
    for _ in 0..samples {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (state >> 8) & mask;
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = (state >> 8) & mask;
        sequence.push((a, b));
    }

    // The levelized kernel is femtosecond-identical to the event-driven
    // one, so swapping it in here changes nothing but the probe's cost.
    let mut sim = LevelSim::new(netlist, topology, delays.clone());
    let encode = |a: u64, b: u64| -> Vec<Logic> {
        let mut v = Vec::with_capacity(2 * width);
        for i in 0..width {
            v.push(Logic::from((a >> i) & 1 == 1));
        }
        for i in 0..width {
            v.push(Logic::from((b >> i) & 1 == 1));
        }
        v
    };
    sim.settle(&encode(0, 0)).expect("input width matches");
    let mut worst: f64 = 0.0;
    for (a, b) in sequence {
        let t = sim.step(&encode(a, b)).expect("input width matches");
        worst = worst.max(t.delay_ns);
    }
    worst
}

/// The workspace's calibrated delay table.
///
/// Computed once per process: the nominal [`DelayModel`] is rescaled so the
/// 16×16 array multiplier's *static* critical path equals
/// [`PAPER_AM16_CRITICAL_NS`]. Fully deterministic.
pub fn calibrated_delay_model() -> &'static DelayModel {
    static MODEL: OnceLock<DelayModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let nominal = DelayModel::nominal();
        let m = MultiplierCircuit::generate(MultiplierKind::Array, 16)
            .expect("16 is a supported width");
        let delays = DelayAssignment::uniform(m.netlist(), &nominal);
        let measured =
            static_critical_path_ns(m.netlist(), &delays).expect("assignment covers the netlist");
        nominal.calibrated(PAPER_AM16_CRITICAL_NS, measured)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_pins_am16_static_critical_path() {
        let model = calibrated_delay_model();
        let m = MultiplierCircuit::generate(MultiplierKind::Array, 16).unwrap();
        let delays = DelayAssignment::uniform(m.netlist(), model);
        let crit = static_critical_path_ns(m.netlist(), &delays).unwrap();
        // Integer-femtosecond rounding leaves a sub-10⁻⁴ ns residue.
        assert!(
            (crit - PAPER_AM16_CRITICAL_NS).abs() < 1e-3,
            "calibrated critical path {crit}"
        );
    }

    #[test]
    fn dynamic_measurement_never_exceeds_static_bound() {
        let model = calibrated_delay_model();
        for kind in MultiplierKind::ALL {
            let m = MultiplierCircuit::generate(kind, 8).unwrap();
            let topo = m.netlist().topology().unwrap();
            let delays = DelayAssignment::uniform(m.netlist(), model);
            let dynamic = measure_critical_delay(m.netlist(), &topo, &delays, 8, 512);
            let bound = static_critical_path_ns(m.netlist(), &delays).unwrap();
            assert!(dynamic <= bound + 1e-9, "{kind:?}: {dynamic} > {bound}");
        }
    }

    #[test]
    fn adversarial_battery_beats_light_random_sampling() {
        // The battery-driven measurement should never be below a purely
        // random probe with few samples.
        let m = MultiplierCircuit::generate(MultiplierKind::Array, 8).unwrap();
        let topo = m.netlist().topology().unwrap();
        let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
        let with_battery = measure_critical_delay(m.netlist(), &topo, &delays, 8, 0);
        assert!(with_battery > 0.0);
        let with_more = measure_critical_delay(m.netlist(), &topo, &delays, 8, 512);
        assert!(with_more >= with_battery);
    }

    #[test]
    fn calibrated_model_is_cached() {
        let a = calibrated_delay_model() as *const DelayModel;
        let b = calibrated_delay_model() as *const DelayModel;
        assert_eq!(a, b);
    }
}
