//! Architecture-level area accounting (paper Fig. 25).

use agemul_logic::{AreaModel, FlopKind};

use crate::{CoreError, MultiplierDesign};

/// The two deployment styles the paper prices against each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Fixed latency: input D flip-flops, the multiplier, output D
    /// flip-flops (the paper's AM / FLCB / FLRB rows).
    FixedLatency,
    /// The proposed adaptive variable-latency architecture: input D
    /// flip-flops, the multiplier, 2m Razor flip-flops, and the AHL
    /// (judging blocks + aging indicator + gating).
    AdaptiveVariableLatency,
}

/// Transistor-count breakdown of one deployed multiplier.
///
/// # Example
///
/// ```
/// use agemul::{area_report, Architecture, MultiplierDesign};
/// use agemul_circuits::MultiplierKind;
///
/// let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
/// let fl = area_report(&d, Architecture::FixedLatency, 7)?;
/// let avl = area_report(&d, Architecture::AdaptiveVariableLatency, 7)?;
/// assert!(avl.total_transistors() > fl.total_transistors());
/// # Ok::<(), agemul::CoreError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AreaReport {
    /// Transistors in the combinational multiplier array.
    pub combinational: u64,
    /// Number of input flip-flops (2m, latching both operands).
    pub input_flop_count: usize,
    /// Transistors in the input flip-flops.
    pub input_flops: u64,
    /// Number of output flip-flops (2m product bits).
    pub output_flop_count: usize,
    /// The output flip-flop kind (plain D or Razor).
    pub output_flop_kind: FlopKind,
    /// Transistors in the output flip-flops.
    pub output_flops: u64,
    /// Transistors in the AHL (0 for fixed latency).
    pub ahl: u64,
}

impl AreaReport {
    /// Total transistors.
    pub fn total_transistors(&self) -> u64 {
        self.combinational + self.input_flops + self.output_flops + self.ahl
    }
}

/// Prices a design under the given architecture.
///
/// The AHL is priced from a *real gate-level netlist* of its two judging
/// blocks (inverters + popcount tree + constant comparators, built with
/// [`agemul_circuits::zeros_at_least`]) plus its sequential state: the
/// aging-indicator window counter (⌈log₂ window⌉ bits), error counter,
/// mode flip-flop and gating flip-flop, each with ripple-increment and
/// compare logic priced per bit.
///
/// # Errors
///
/// Returns [`CoreError::Netlist`] if judging-block construction fails
/// (it cannot for supported widths).
pub fn area_report(
    design: &MultiplierDesign,
    architecture: Architecture,
    skip: u32,
) -> Result<AreaReport, CoreError> {
    let area = AreaModel::standard_cell();
    let m = design.circuit();
    let width = design.width();
    let combinational = m.netlist().transistor_count(&area);

    let input_flop_count = 2 * width;
    let input_flops = u64::from(area.flop_transistors(FlopKind::Dff)) * input_flop_count as u64;
    let output_flop_count = 2 * width;

    let (output_flop_kind, ahl) = match architecture {
        Architecture::FixedLatency => (FlopKind::Dff, 0),
        Architecture::AdaptiveVariableLatency => {
            (FlopKind::RazorFf, ahl_transistors(width, skip, &area)?)
        }
    };
    let output_flops =
        u64::from(area.flop_transistors(output_flop_kind)) * output_flop_count as u64;

    Ok(AreaReport {
        combinational,
        input_flop_count,
        input_flops,
        output_flop_count,
        output_flop_kind,
        output_flops,
        ahl,
    })
}

/// Prices the AHL: the real gate-level judging netlist
/// ([`crate::GateLevelAhl`]) plus its sequential parts.
fn ahl_transistors(width: usize, skip: u32, area: &AreaModel) -> Result<u64, CoreError> {
    let judging = crate::GateLevelAhl::generate(width, skip)?.transistor_count(area);

    // Aging indicator: window counter, error counter, mode + gating flops.
    let dff = u64::from(area.flop_transistors(FlopKind::Dff));
    let window_bits = 7u64; // counts to 100
    let error_bits = 5u64; // counts to the 10 % threshold with headroom
    let counter_bits = window_bits + error_bits;
    // Per counter bit: a half-adder increment (XOR+AND ≈ 14T) and its
    // share of the threshold comparator (≈ 6T).
    let counter_logic = counter_bits * (14 + 6);
    let state_flops = (counter_bits + 2) * dff; // +mode, +gating D-FF

    Ok(judging + counter_logic + state_flops)
}

#[cfg(test)]
mod tests {
    use agemul_circuits::MultiplierKind;

    use super::*;

    fn design(kind: MultiplierKind, width: usize) -> MultiplierDesign {
        MultiplierDesign::new(kind, width).unwrap()
    }

    #[test]
    fn variable_latency_costs_more() {
        let d = design(MultiplierKind::ColumnBypass, 16);
        let fl = area_report(&d, Architecture::FixedLatency, 7).unwrap();
        let avl = area_report(&d, Architecture::AdaptiveVariableLatency, 7).unwrap();
        assert!(avl.total_transistors() > fl.total_transistors());
        assert_eq!(fl.ahl, 0);
        assert!(avl.ahl > 0);
        assert_eq!(fl.output_flop_kind, FlopKind::Dff);
        assert_eq!(avl.output_flop_kind, FlopKind::RazorFf);
    }

    #[test]
    fn overhead_ratio_shrinks_with_width() {
        // The paper's Fig. 25 observation: AHL + Razor are a smaller
        // fraction of a larger multiplier.
        let ratio = |width: usize, skip: u32| {
            let d = design(MultiplierKind::ColumnBypass, width);
            let fl = area_report(&d, Architecture::FixedLatency, skip).unwrap();
            let avl = area_report(&d, Architecture::AdaptiveVariableLatency, skip).unwrap();
            avl.total_transistors() as f64 / fl.total_transistors() as f64
        };
        assert!(ratio(32, 15) < ratio(16, 7));
    }

    #[test]
    fn row_bypass_is_larger_than_column_bypass() {
        let cb = design(MultiplierKind::ColumnBypass, 16);
        let rb = design(MultiplierKind::RowBypass, 16);
        let cb_a = area_report(&cb, Architecture::FixedLatency, 7).unwrap();
        let rb_a = area_report(&rb, Architecture::FixedLatency, 7).unwrap();
        assert!(rb_a.combinational > cb_a.combinational);
    }

    #[test]
    fn array_is_smallest() {
        let am = design(MultiplierKind::Array, 16);
        let cb = design(MultiplierKind::ColumnBypass, 16);
        let am_a = area_report(&am, Architecture::FixedLatency, 7).unwrap();
        let cb_a = area_report(&cb, Architecture::FixedLatency, 7).unwrap();
        assert!(am_a.combinational < cb_a.combinational);
    }

    #[test]
    fn totals_sum_components() {
        let d = design(MultiplierKind::Array, 8);
        let r = area_report(&d, Architecture::AdaptiveVariableLatency, 4).unwrap();
        assert_eq!(
            r.total_transistors(),
            r.combinational + r.input_flops + r.output_flops + r.ahl
        );
        assert_eq!(r.input_flop_count, 16);
        assert_eq!(r.output_flop_count, 16);
    }
}
