//! Aging-aware variable-latency multiplier with Adaptive Hold Logic.
//!
//! This crate is the Rust realization of the architecture proposed in
//! *"Aging-Aware Reliable Multiplier Design With Adaptive Hold Logic"*
//! (Lin, Cho, Yang — IEEE TVLSI; first presented at SOCC 2012): a column-
//! or row-bypassing multiplier wrapped in Razor flip-flops and an **AHL**
//! circuit that predicts, from the number of zeros in the judged operand,
//! whether each multiplication can finish in one short clock cycle or needs
//! two — and that *re-tunes itself* as NBTI/PBTI aging slows the array.
//!
//! # Architecture map (paper Fig. 8)
//!
//! | Paper component | Here |
//! |---|---|
//! | column-/row-bypassing multiplier | [`MultiplierDesign`] (gate-level, from `agemul-circuits`) |
//! | 2m Razor flip-flops | [`RazorBank`] |
//! | AHL: two judging blocks | [`JudgingBlock`] (behavioural) / `agemul_circuits::zeros_at_least` (gate-level, for area) |
//! | AHL: aging indicator + mux + D-FF | [`Ahl`] |
//! | input flip-flops + clock gating | cycle accounting in [`run_engine`] |
//!
//! # Workflow
//!
//! 1. Build a [`MultiplierDesign`] (kind × width) — delays come from the
//!    workspace-calibrated [`calibrated_delay_model`], pinned so the 16×16
//!    array multiplier's critical path is the paper's 1.32 ns.
//! 2. Generate a workload with [`PatternSet`] and profile it with
//!    [`MultiplierDesign::profile`] — an event-driven timing simulation
//!    that records each operation's sensitized path delay and judged zero
//!    count (optionally under aged per-gate delays from `agemul-aging`).
//! 3. Replay the profile through [`run_engine`] under any
//!    [`EngineConfig`] (cycle period, skip number, adaptive vs traditional
//!    hold logic) to obtain [`RunMetrics`]: average latency, error counts,
//!    cycle breakdowns.
//! 4. Price the architecture with [`area_report`] and its energy with
//!    [`energy_report`].
//!
//! # Example
//!
//! ```no_run
//! use agemul::{
//!     run_engine, EngineConfig, MultiplierDesign, PatternSet,
//! };
//! use agemul_circuits::MultiplierKind;
//!
//! let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
//! let patterns = PatternSet::uniform(16, 10_000, 42);
//! let profile = design.profile(patterns.pairs(), None)?;
//!
//! let config = EngineConfig::adaptive(0.9, 7);
//! let metrics = run_engine(&profile, &config);
//! println!("avg latency {:.3} ns", metrics.avg_latency_ns());
//! # Ok::<(), agemul::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aging_sweep;
mod ahl;
mod ahl_netlist;
mod area;
mod cache;
mod calibrate;
mod design;
mod energy;
mod engine;
mod error;
mod judging;
mod metrics;
mod montecarlo;
mod patterns;
mod profile;
mod razor;
mod sweep;
mod validate;

pub use aging_sweep::{AgingSweep, SweepCounters};
pub use ahl::{Ahl, AhlConfig, AhlState, CycleDecision};
pub use ahl_netlist::GateLevelAhl;
pub use area::{area_report, Architecture, AreaReport};
pub use cache::{
    quantize_factor, quantize_factors, CacheEntry, ProfileCache, ShardStats, AGING_FACTOR_GRID,
    SHARD_COUNT as CACHE_SHARD_COUNT,
};
pub use calibrate::{calibrated_delay_model, measure_critical_delay, PAPER_AM16_CRITICAL_NS};
pub use design::{CornerProfiler, LaneWidth, MultiplierDesign, SimEngine};
pub use energy::{energy_report, EnergyInputs};
pub use engine::{run_engine, run_engine_traced, run_fixed_latency, EngineConfig, EngineTrace};
pub use error::CoreError;
pub use judging::{count_zeros, JudgingBlock};
pub use metrics::RunMetrics;
pub use montecarlo::{CornerOutcome, McConfig, McReport, MonteCarloCampaign, YearOutcome};
pub use patterns::PatternSet;
pub use profile::{PatternProfile, PatternRecord};
pub use razor::{DetectOutcome, RazorBank, RazorConfig};
pub use sweep::PeriodSweep;
pub use validate::cycle_accurate_run;

pub use agemul_netlist::CancelToken;
