//! Corner-batched Monte Carlo yield campaigns.
//!
//! The paper's aging analysis follows one *nominal* device through its
//! lifetime. Real silicon adds time-zero process variation on top: every
//! die starts from its own per-gate delay corner, and the question the
//! architecture must answer is a **yield** — what fraction of dies still
//! meets timing after `y` years, with and without the AHL's adaptive
//! cycle stretching.
//!
//! [`MonteCarloCampaign`] answers it by composing the two delay axes the
//! workspace already models:
//!
//! * **per-corner variation** — independent lognormal per-gate factors
//!   from [`VariationModel`], one deterministic seed stream per corner;
//! * **per-year BTI aging** — the workload-driven
//!   [`aging_factors`](agemul_aging::aging_factors) pipeline, computed
//!   once per lifetime point and shared by every corner.
//!
//! The composed per-gate factor is `variation[g] × bti_year[g]`, snapped
//! onto the shared [`AGING_FACTOR_GRID`](crate::AGING_FACTOR_GRID) —
//! the same quantization rule as [`ProfileCache`](crate::ProfileCache)
//! fingerprints and [`AgingSweep`](crate::AgingSweep), so campaign delay
//! assignments stay coherent with every other profiling path in the
//! workspace.
//!
//! # Why corners are cheap
//!
//! A naive campaign builds a fresh timing kernel per (corner, year) —
//! and kernel construction (levelized schedule, CSR fanout, truth-table
//! LUTs, arena allocation, functional init sweep) dwarfs the actual
//! workload replay for the small per-corner pattern sets a yield study
//! uses. The campaign instead holds one [`CornerProfiler`] per worker
//! thread and [`retime`](CornerProfiler::retime)s it for every corner:
//! an in-place delay swap plus an `O(nets)` state restore, which drops
//! the per-corner marginal cost an order of magnitude below a
//! from-scratch build (the `mc/*` benchmark rows pin the ratio, and the
//! `retime_equiv` property suite in `agemul-netlist` pins bit-identity).
//!
//! Corner costs are *uneven* — a slow corner sensitizes longer paths and
//! replays more events — so the fan-out uses
//! [`par_map_stealing_with`](agemul_par::par_map_stealing_with): workers
//! claim corner chunks dynamically instead of being handed a static
//! split, and results are stitched back in corner order so the report is
//! bit-identical to a serial run.

use agemul_aging::{aging_factors, BtiModel, VariationModel};

use crate::{
    quantize_factors, run_engine, CoreError, CornerProfiler, EngineConfig, MultiplierDesign,
    PatternProfile, SimEngine,
};

/// Configuration of a [`MonteCarloCampaign`].
#[derive(Clone, Debug, PartialEq)]
pub struct McConfig {
    /// Number of process corners (dies) to sample.
    pub corners: usize,
    /// Lognormal σ of the per-gate time-zero variation (0 = nominal).
    pub sigma: f64,
    /// Base seed of the campaign. Corner `c` draws its variation factors
    /// from a seed derived by a SplitMix64-style finalizer over
    /// `(seed, c)`, so corner streams are decorrelated and the whole
    /// campaign is reproducible from this one value.
    pub seed: u64,
    /// Lifetime points in years (ascending by convention; year 0 = fresh).
    pub years: Vec<f64>,
    /// Short cycle period in nanoseconds. Non-positive means "anchor to
    /// the design's fresh critical path" — the campaign resolves it at
    /// construction via
    /// [`critical_delay_ns`](MultiplierDesign::critical_delay_ns).
    pub cycle_ns: f64,
    /// AHL skip number (the zero-count threshold for one-cycle guesses).
    pub skip: u32,
    /// Adaptive pass criterion: a corner-year passes with AHL on iff it
    /// has no undetected errors **and** its detected-error rate stays at
    /// or below this many errors per 10 000 operations. Use
    /// `f64::INFINITY` (the [`new`](Self::new) default) to gate on
    /// undetected errors only — Razor corrects detected ones.
    pub error_limit_per_10k: f64,
    /// Work-stealing claim granularity: corners claimed per atomic grab.
    /// 1 (the default) balances best; raise it only if corner cost is so
    /// small the claim overhead shows.
    pub chunk: usize,
}

impl McConfig {
    /// A campaign over `corners` dies at lognormal `sigma`, seeded with
    /// `seed`: lifetime points 0–7 years, cycle anchored to the fresh
    /// critical path, skip 7, undetected-only pass criterion, claim
    /// granularity 1.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite (the
    /// [`VariationModel`] contract).
    pub fn new(corners: usize, sigma: f64, seed: u64) -> Self {
        // Validate eagerly so a bad σ fails at configuration time, not
        // deep inside a worker thread.
        let _ = VariationModel::new(sigma);
        McConfig {
            corners,
            sigma,
            seed,
            years: (0..=7).map(f64::from).collect(),
            cycle_ns: 0.0,
            skip: 7,
            error_limit_per_10k: f64::INFINITY,
            chunk: 1,
        }
    }
}

/// One (corner, lifetime) evaluation: the profile summary plus both pass
/// verdicts.
#[derive(Clone, Debug, PartialEq)]
pub struct YearOutcome {
    /// Lifetime point in years.
    pub years: f64,
    /// Longest sensitized path delay the workload exposed, in ns.
    pub max_delay_ns: f64,
    /// AHL-off verdict: every operation fits the single short cycle
    /// (`max_delay_ns <= cycle_ns`). A fixed-latency die that misses this
    /// is dead silicon.
    pub baseline_pass: bool,
    /// Detected (Razor-corrected) timing errors per 10 000 operations
    /// under the adaptive engine.
    pub errors_per_10k: f64,
    /// Operations whose delay escaped even the stretched two-cycle
    /// window — silent data corruption, fails the die unconditionally.
    pub undetected: u64,
    /// Whether the adaptive engine entered aged mode during the replay.
    pub aged_mode_entered: bool,
    /// AHL-on verdict: no undetected errors and the detected-error rate
    /// within [`McConfig::error_limit_per_10k`].
    pub adaptive_pass: bool,
}

/// One sampled die: its seed and the outcome at every lifetime point.
#[derive(Clone, Debug, PartialEq)]
pub struct CornerOutcome {
    /// Corner index in `0..config.corners`.
    pub corner: usize,
    /// The derived per-corner variation seed (diagnostic: lets a single
    /// corner be replayed in isolation).
    pub seed: u64,
    /// One entry per configured lifetime point, in `years` order.
    pub outcomes: Vec<YearOutcome>,
}

/// A completed campaign: every corner × lifetime outcome plus the
/// resolved cycle anchor.
#[derive(Clone, Debug, PartialEq)]
pub struct McReport {
    /// The lifetime axis the campaign evaluated.
    pub years: Vec<f64>,
    /// Resolved short cycle period in ns.
    pub cycle_ns: f64,
    /// Per-corner outcomes in corner order (bit-identical regardless of
    /// worker count or chunk size).
    pub corners: Vec<CornerOutcome>,
}

impl McReport {
    /// The yield-vs-lifetime curve: for each lifetime point, the fraction
    /// of corners whose die passes — with the AHL (`adaptive = true`) or
    /// as a fixed-latency baseline (`adaptive = false`). Empty if the
    /// campaign sampled no corners.
    pub fn yield_curve(&self, adaptive: bool) -> Vec<(f64, f64)> {
        if self.corners.is_empty() {
            return Vec::new();
        }
        self.years
            .iter()
            .enumerate()
            .map(|(yi, &y)| {
                let passing = self
                    .corners
                    .iter()
                    .filter(|c| {
                        let o = &c.outcomes[yi];
                        if adaptive {
                            o.adaptive_pass
                        } else {
                            o.baseline_pass
                        }
                    })
                    .count();
                (y, passing as f64 / self.corners.len() as f64)
            })
            .collect()
    }
}

/// SplitMix64 finalizer over the `(base, corner)` pair.
///
/// [`VariationModel`] walks a SplitMix64 stream whose state starts at the
/// seed and advances by the golden-ratio gamma, so two seeds that differ
/// by a multiple of the gamma would produce *overlapping* factor
/// sequences. Scrambling the corner index through the finalizer first
/// makes every corner an effectively independent stream while keeping the
/// whole campaign a pure function of [`McConfig::seed`].
fn corner_seed(base: u64, corner: usize) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((corner as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded Monte Carlo yield campaign over one design + workload.
///
/// Construction pays everything shared across corners exactly once: the
/// functional verification sweep, the workload's signal statistics, and
/// one BTI factor vector per lifetime point. After that, corner
/// evaluation is embarrassingly parallel and each corner-year costs one
/// [`CornerProfiler::retime`] plus the workload replay.
///
/// # Example
///
/// ```no_run
/// use agemul::{McConfig, MonteCarloCampaign, MultiplierDesign, PatternSet};
/// use agemul_aging::BtiModel;
/// use agemul_circuits::MultiplierKind;
/// use agemul_logic::Technology;
///
/// let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
/// let patterns = PatternSet::uniform(16, 256, 42);
/// let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
/// let config = McConfig::new(200, 0.05, 7);
/// let campaign = MonteCarloCampaign::new(&design, patterns.pairs(), &bti, config)?;
/// let report = campaign.run(None)?;
/// for (years, yield_frac) in report.yield_curve(true) {
///     println!("{years} y: {:.1} % yield with AHL", 100.0 * yield_frac);
/// }
/// # Ok::<(), agemul::CoreError>(())
/// ```
pub struct MonteCarloCampaign<'a> {
    design: &'a MultiplierDesign,
    pairs: Vec<(u64, u64)>,
    config: McConfig,
    variation: VariationModel,
    /// One BTI factor vector per entry of `config.years`, shared by every
    /// corner (aging depends on the workload, not the corner).
    bti_by_year: Vec<Vec<f64>>,
}

impl<'a> MonteCarloCampaign<'a> {
    /// Prepares a campaign: verifies the circuit functionally (products
    /// are delay-independent, so once covers every corner), computes the
    /// workload's signal statistics, derives one BTI factor vector per
    /// lifetime point, and resolves the cycle anchor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] if an operand overflows the width,
    /// [`CoreError::FunctionalMismatch`] if the circuit miscomputes a
    /// product, or [`CoreError::Netlist`] if the delay pipeline rejects a
    /// factor vector.
    pub fn new(
        design: &'a MultiplierDesign,
        pairs: &[(u64, u64)],
        bti: &BtiModel,
        mut config: McConfig,
    ) -> Result<Self, CoreError> {
        design.verify_functional(pairs)?;
        let stats = design.workload_stats(pairs)?;
        let bti_by_year = config
            .years
            .iter()
            .map(|&y| aging_factors(design.circuit().netlist(), &stats, bti, y))
            .collect();
        if config.cycle_ns <= 0.0 {
            config.cycle_ns = design.critical_delay_ns(None)?;
        }
        let variation = VariationModel::new(config.sigma);
        Ok(MonteCarloCampaign {
            design,
            pairs: pairs.to_vec(),
            config,
            variation,
            bti_by_year,
        })
    }

    /// The campaign's (cycle-resolved) configuration.
    #[inline]
    pub fn config(&self) -> &McConfig {
        &self.config
    }

    /// The workload the campaign profiles at every (corner, year) cell.
    #[inline]
    pub fn pairs(&self) -> &[(u64, u64)] {
        &self.pairs
    }

    /// The design under study.
    #[inline]
    pub fn design(&self) -> &'a MultiplierDesign {
        self.design
    }

    /// The derived variation seed of corner `corner` (what
    /// [`run_corner`](Self::run_corner) reports in
    /// [`CornerOutcome::seed`]).
    #[inline]
    pub fn seed_of(&self, corner: usize) -> u64 {
        corner_seed(self.config.seed, corner)
    }

    /// The composed, grid-quantized per-gate delay factors of one
    /// (corner, lifetime) cell: `variation[g] × bti[g]` snapped onto the
    /// shared [`AGING_FACTOR_GRID`](crate::AGING_FACTOR_GRID).
    ///
    /// # Panics
    ///
    /// Panics if `year_idx` is out of range of the configured lifetime
    /// axis.
    pub fn cell_factors(&self, corner: usize, year_idx: usize) -> Vec<f64> {
        let variation = self
            .variation
            .factors(self.design.circuit().netlist(), self.seed_of(corner));
        self.composed_factors(&variation, year_idx)
    }

    /// A fresh per-worker profiler, compiled once and retimed per corner.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Netlist`] if the nominal delay pipeline fails
    /// (it cannot on a validated design).
    pub fn profiler(&self) -> Result<CornerProfiler<'a>, CoreError> {
        let nominal = self.design.delay_assignment(None)?;
        Ok(self.design.corner_profiler(&nominal))
    }

    /// Evaluates one corner across every configured lifetime point,
    /// reusing `profiler` (retimed per year, never rebuilt). This is the
    /// resumable unit: the supervised campaign checkpoints on corner
    /// index and replays exactly this call.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Netlist`] on a malformed factor vector or —
    /// wrapping [`NetlistError::Cancelled`](agemul_netlist::NetlistError::Cancelled)
    /// — once `cancel` fires, and [`CoreError::Circuit`] if an operand
    /// overflows the width.
    pub fn run_corner(
        &self,
        profiler: &mut CornerProfiler<'_>,
        corner: usize,
        cancel: Option<&agemul_netlist::CancelToken>,
    ) -> Result<CornerOutcome, CoreError> {
        let variation = self
            .variation
            .factors(self.design.circuit().netlist(), self.seed_of(corner));
        let mut outcomes = Vec::with_capacity(self.config.years.len());
        for (yi, &years) in self.config.years.iter().enumerate() {
            let delays = self
                .design
                .delay_assignment(Some(&self.composed_factors(&variation, yi)))?;
            profiler.retime(&delays);
            let profile = profiler.profile(&self.pairs, cancel)?;
            outcomes.push(self.year_outcome(years, &profile));
        }
        Ok(CornerOutcome {
            corner,
            seed: self.seed_of(corner),
            outcomes,
        })
    }

    /// [`run_corner`](Self::run_corner) without plan reuse: one
    /// from-scratch kernel per lifetime point on the requested `engine`.
    /// This is the slow reference path — the retimed fast path is
    /// byte-identical to it (asserted in this module's tests), and the
    /// supervised campaign's degradation attempt uses it to re-evaluate a
    /// suspect corner on the event-driven reference engine, which has no
    /// retime.
    ///
    /// # Errors
    ///
    /// Same contract as [`run_corner`](Self::run_corner).
    pub fn run_corner_from_scratch(
        &self,
        corner: usize,
        engine: SimEngine,
        cancel: Option<&agemul_netlist::CancelToken>,
    ) -> Result<CornerOutcome, CoreError> {
        let variation = self
            .variation
            .factors(self.design.circuit().netlist(), self.seed_of(corner));
        let mut outcomes = Vec::with_capacity(self.config.years.len());
        for (yi, &years) in self.config.years.iter().enumerate() {
            let delays = self
                .design
                .delay_assignment(Some(&self.composed_factors(&variation, yi)))?;
            let profile =
                self.design
                    .profile_with_delays_supervised(&self.pairs, &delays, engine, cancel)?;
            outcomes.push(self.year_outcome(years, &profile));
        }
        Ok(CornerOutcome {
            corner,
            seed: self.seed_of(corner),
            outcomes,
        })
    }

    /// Composes one corner's variation factors with year `yi`'s BTI
    /// factors and snaps the product onto the shared grid.
    fn composed_factors(&self, variation: &[f64], yi: usize) -> Vec<f64> {
        let composed: Vec<f64> = variation
            .iter()
            .zip(&self.bti_by_year[yi])
            .map(|(v, a)| v * a)
            .collect();
        quantize_factors(&composed)
    }

    /// Judges one (corner, year) profile against both pass criteria.
    fn year_outcome(&self, years: f64, profile: &PatternProfile) -> YearOutcome {
        let max_delay_ns = profile.max_delay_ns();
        let adaptive = run_engine(
            profile,
            &EngineConfig::adaptive(self.config.cycle_ns, self.config.skip),
        );
        let errors_per_10k = adaptive.errors_per_10k_ops();
        YearOutcome {
            years,
            max_delay_ns,
            baseline_pass: max_delay_ns <= self.config.cycle_ns,
            errors_per_10k,
            undetected: adaptive.undetected,
            aged_mode_entered: adaptive.aged_mode_entered,
            adaptive_pass: adaptive.undetected == 0
                && errors_per_10k <= self.config.error_limit_per_10k,
        }
    }

    /// Runs the whole campaign.
    ///
    /// With the `parallel` feature, corners are fanned out through
    /// [`par_map_stealing_with`](agemul_par::par_map_stealing_with): one
    /// compiled profiler per worker, corners claimed in
    /// [`McConfig::chunk`]-sized grabs so a worker that drew fast corners
    /// immediately steals more instead of idling. Results are assembled
    /// in corner order either way, so the report is bit-identical across
    /// worker counts — and to the serial build.
    ///
    /// # Errors
    ///
    /// Propagates the first (in corner order) [`CoreError`] any corner
    /// produced; see [`run_corner`](Self::run_corner) for the cases.
    pub fn run(&self, cancel: Option<&agemul_netlist::CancelToken>) -> Result<McReport, CoreError> {
        let corners: Vec<usize> = (0..self.config.corners).collect();
        #[cfg(feature = "parallel")]
        let results: Vec<Result<CornerOutcome, CoreError>> = agemul_par::par_map_stealing_with(
            &corners,
            self.config.chunk,
            || self.profiler(),
            |profiler, &corner| match profiler {
                Ok(p) => self.run_corner(p, corner, cancel),
                Err(e) => Err(e.clone()),
            },
        );
        #[cfg(not(feature = "parallel"))]
        let results: Vec<Result<CornerOutcome, CoreError>> = {
            let mut profiler = self.profiler()?;
            corners
                .iter()
                .map(|&corner| self.run_corner(&mut profiler, corner, cancel))
                .collect()
        };
        let corners = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(McReport {
            years: self.config.years.clone(),
            cycle_ns: self.config.cycle_ns,
            corners,
        })
    }
}

#[cfg(test)]
mod tests {
    use agemul_circuits::MultiplierKind;
    use agemul_logic::Technology;

    use super::*;
    use crate::PatternSet;

    fn campaign<'a>(
        design: &'a MultiplierDesign,
        pairs: &[(u64, u64)],
        config: McConfig,
    ) -> MonteCarloCampaign<'a> {
        let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
        MonteCarloCampaign::new(design, pairs, &bti, config).unwrap()
    }

    /// The retimed fan-out must reproduce, corner for corner, what the
    /// slow path computes: a fresh from-scratch profile per (corner,
    /// year) cell through `profile_with_delays`.
    #[test]
    fn campaign_matches_from_scratch_per_cell() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 24, 11);
        let mut config = McConfig::new(6, 0.08, 99);
        config.years = vec![0.0, 4.0, 7.0];
        let mc = campaign(&d, patterns.pairs(), config.clone());
        let report = mc.run(None).unwrap();
        assert_eq!(report.corners.len(), 6);

        for c in &report.corners {
            for (yi, o) in c.outcomes.iter().enumerate() {
                let delays = d
                    .delay_assignment(Some(&mc.cell_factors(c.corner, yi)))
                    .unwrap();
                let scratch = d.profile_with_delays(patterns.pairs(), &delays).unwrap();
                assert_eq!(
                    o.max_delay_ns.to_bits(),
                    scratch.max_delay_ns().to_bits(),
                    "corner {} year {}",
                    c.corner,
                    o.years
                );
                let metrics = run_engine(
                    &scratch,
                    &EngineConfig::adaptive(report.cycle_ns, config.skip),
                );
                assert_eq!(o.undetected, metrics.undetected);
                assert_eq!(
                    o.errors_per_10k.to_bits(),
                    metrics.errors_per_10k_ops().to_bits()
                );
            }
        }
    }

    /// Same seed ⇒ byte-identical report; different seed ⇒ different
    /// corner factors (the campaign is a pure function of its config).
    #[test]
    fn campaign_is_deterministic_in_seed() {
        let d = MultiplierDesign::new(MultiplierKind::Array, 8).unwrap();
        let patterns = PatternSet::uniform(8, 16, 3);
        let mut config = McConfig::new(4, 0.1, 1234);
        config.years = vec![0.0, 7.0];
        let a = campaign(&d, patterns.pairs(), config.clone())
            .run(None)
            .unwrap();
        let b = campaign(&d, patterns.pairs(), config.clone())
            .run(None)
            .unwrap();
        assert_eq!(a, b);

        config.seed = 1235;
        let c = campaign(&d, patterns.pairs(), config.clone());
        assert_ne!(mc_factors(&a), c_factors(&c));

        fn mc_factors(r: &McReport) -> Vec<u64> {
            r.corners.iter().map(|c| c.seed).collect()
        }
        fn c_factors(c: &MonteCarloCampaign<'_>) -> Vec<u64> {
            (0..c.config().corners).map(|i| c.seed_of(i)).collect()
        }
    }

    /// Yield is monotone in the pass criteria's generosity: the adaptive
    /// curve dominates the fixed-latency baseline at every lifetime point
    /// (two-cycle stretching can only save corners, never kill them).
    #[test]
    fn adaptive_yield_dominates_baseline() {
        let d = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 32, 5);
        let mut config = McConfig::new(12, 0.12, 77);
        config.years = vec![0.0, 3.0, 7.0];
        let report = campaign(&d, patterns.pairs(), config).run(None).unwrap();
        let base = report.yield_curve(false);
        let ahl = report.yield_curve(true);
        assert_eq!(base.len(), 3);
        for ((y_b, f_b), (y_a, f_a)) in base.iter().zip(&ahl) {
            assert_eq!(y_b, y_a);
            assert!(
                f_a >= f_b,
                "AHL yield {f_a} below baseline {f_b} at {y_b} y"
            );
        }
        // Year 0 at σ > 0 should not be a guaranteed-pass: the anchor is
        // the *nominal* critical path, and slow corners exceed it.
        assert!(base[0].1 <= 1.0);
    }

    /// The degradation path — from-scratch kernels on the event-driven
    /// reference engine — reports exactly what the retimed fast path does.
    #[test]
    fn from_scratch_event_engine_matches_retimed_path() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 20, 21);
        let mut config = McConfig::new(3, 0.07, 5);
        config.years = vec![0.0, 7.0];
        let mc = campaign(&d, patterns.pairs(), config);
        let mut profiler = mc.profiler().unwrap();
        for corner in 0..3 {
            let fast = mc.run_corner(&mut profiler, corner, None).unwrap();
            for engine in [SimEngine::Level, SimEngine::Event] {
                let slow = mc.run_corner_from_scratch(corner, engine, None).unwrap();
                assert_eq!(fast, slow, "corner {corner} via {engine:?}");
            }
        }
    }

    /// The yield curve of an empty campaign is empty, not a division by
    /// zero.
    #[test]
    fn empty_campaign_yields_nothing() {
        let d = MultiplierDesign::new(MultiplierKind::Array, 4).unwrap();
        let patterns = PatternSet::uniform(4, 8, 1);
        let mut config = McConfig::new(0, 0.05, 9);
        config.years = vec![0.0];
        let report = campaign(&d, patterns.pairs(), config).run(None).unwrap();
        assert!(report.corners.is_empty());
        assert!(report.yield_curve(true).is_empty());
    }
}
