//! Zero counting and the AHL judging blocks.

use std::fmt;

/// Counts the zero bits in the low `width` bits of `value`.
///
/// This is the quantity both judging blocks inspect: the paper's key
/// observation (Fig. 6) is that a bypassing multiplier's path delay is
/// strongly tied to the number of zeros in its select operand.
///
/// # Panics
///
/// Panics if `width` is 0 or exceeds 64.
///
/// # Example
///
/// ```
/// use agemul::count_zeros;
///
/// assert_eq!(count_zeros(0b1010, 4), 2);
/// assert_eq!(count_zeros(0, 16), 16);
/// assert_eq!(count_zeros(u64::MAX, 64), 0);
/// ```
#[inline]
pub fn count_zeros(value: u64, width: usize) -> u32 {
    assert!(
        (1..=64).contains(&width),
        "width must be in 1..=64, got {width}"
    );
    let masked = if width == 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    };
    width as u32 - masked.count_ones()
}

/// One AHL judging block: asserts "one cycle" when the judged operand has
/// at least `skip` zero bits.
///
/// The paper's *Skip-n* scenarios map directly: `JudgingBlock::new(7)` is
/// Skip-7. The AHL holds two of these — `skip` and `skip + 1` — and the
/// aging indicator selects between them.
///
/// # Example
///
/// ```
/// use agemul::JudgingBlock;
///
/// let skip7 = JudgingBlock::new(7);
/// assert!(skip7.is_one_cycle(7));
/// assert!(skip7.is_one_cycle(12));
/// assert!(!skip7.is_one_cycle(6));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JudgingBlock {
    skip: u32,
}

impl JudgingBlock {
    /// Creates a judging block with the given skip threshold.
    pub fn new(skip: u32) -> Self {
        JudgingBlock { skip }
    }

    /// The skip threshold.
    #[inline]
    pub fn skip(&self) -> u32 {
        self.skip
    }

    /// Whether an operand with `zeros` zero bits is predicted one-cycle.
    #[inline]
    pub fn is_one_cycle(&self, zeros: u32) -> bool {
        zeros >= self.skip
    }

    /// The stricter companion block the AHL switches to after significant
    /// aging (`skip + 1` zeros required).
    pub fn stricter(&self) -> JudgingBlock {
        JudgingBlock::new(self.skip + 1)
    }
}

impl fmt::Display for JudgingBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Skip-{}", self.skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counting_edges() {
        assert_eq!(count_zeros(0, 1), 1);
        assert_eq!(count_zeros(1, 1), 0);
        assert_eq!(count_zeros(0xFFFF, 16), 0);
        assert_eq!(count_zeros(0xFF00, 16), 8);
        // Bits above the width are ignored.
        assert_eq!(count_zeros(0xFFFF_0000, 16), 16);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_counting_rejects_width_zero() {
        let _ = count_zeros(0, 0);
    }

    #[test]
    fn judging_threshold_is_inclusive() {
        let b = JudgingBlock::new(8);
        assert!(!b.is_one_cycle(7));
        assert!(b.is_one_cycle(8));
        assert!(b.is_one_cycle(16));
    }

    #[test]
    fn stricter_requires_one_more_zero() {
        let b = JudgingBlock::new(7);
        let s = b.stricter();
        assert_eq!(s.skip(), 8);
        assert!(b.is_one_cycle(7));
        assert!(!s.is_one_cycle(7));
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(JudgingBlock::new(15).to_string(), "Skip-15");
    }
}
