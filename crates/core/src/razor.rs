//! Behavioural model of the Razor flip-flop bank (paper Fig. 11).

/// Configuration of the Razor detection window.
///
/// A Razor flip-flop's shadow latch samples on a delayed clock; a timing
/// violation is caught iff the straggling transition lands inside the
/// shadow window. The paper relies on two cycles always being enough, i.e.
/// an effective window of one extra cycle — `window_factor = 1.0`, the
/// default. Smaller factors model cheaper shadow latches that can *miss*
/// late transitions (silent corruption), which the failure-injection tests
/// and ablation benches explore.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RazorConfig {
    /// Shadow window as a fraction of the cycle period.
    pub window_factor: f64,
}

impl RazorConfig {
    /// The paper's effective configuration: the shadow latch covers a full
    /// extra cycle.
    pub fn paper() -> Self {
        RazorConfig { window_factor: 1.0 }
    }
}

impl Default for RazorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Outcome of a Razor check on one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DetectOutcome {
    /// The result latched correctly within the cycle.
    Ok,
    /// The main flip-flop caught a wrong value; the shadow latch disagreed
    /// and the error signal fired — the operation re-executes.
    Error,
    /// The transition arrived after even the shadow window: the violation
    /// goes unnoticed (silent data corruption). Impossible under the
    /// paper's assumptions; reachable only with a shrunken window.
    Undetected,
}

/// The bank of `2m` one-bit Razor flip-flops guarding the multiplier
/// outputs.
///
/// Behaviourally, a bank is characterized by one question per operation:
/// did the slowest output transition beat the clock edge, land inside the
/// shadow window (→ error + re-execution), or miss both?
///
/// # Example
///
/// ```
/// use agemul::{DetectOutcome, RazorBank, RazorConfig};
///
/// let bank = RazorBank::new(32, RazorConfig::paper());
/// assert_eq!(bank.check(0.8, 1.0), DetectOutcome::Ok);
/// assert_eq!(bank.check(1.4, 1.0), DetectOutcome::Error);
/// assert_eq!(bank.check(2.5, 1.0), DetectOutcome::Undetected);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RazorBank {
    bits: usize,
    config: RazorConfig,
}

impl RazorBank {
    /// Creates a bank of `bits` Razor flip-flops.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or the window factor is negative/not
    /// finite.
    pub fn new(bits: usize, config: RazorConfig) -> Self {
        assert!(bits > 0, "a Razor bank needs at least one bit");
        assert!(
            config.window_factor.is_finite() && config.window_factor >= 0.0,
            "window factor must be finite and non-negative, got {}",
            config.window_factor
        );
        RazorBank { bits, config }
    }

    /// Number of flip-flops in the bank.
    #[inline]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The detection window configuration.
    #[inline]
    pub fn config(&self) -> RazorConfig {
        self.config
    }

    /// Classifies one operation whose slowest output transition arrived
    /// `delay_ns` after the launch edge, under a `cycle_ns` clock.
    ///
    /// # Boundary convention
    ///
    /// Edges are treated as **met** — both comparisons are inclusive:
    ///
    /// * `delay == cycle` → [`DetectOutcome::Ok`]: a transition arriving
    ///   exactly at the clock edge latches correctly (zero setup margin is
    ///   modeled as sufficient).
    /// * `delay == cycle * (1 + window_factor)` → [`DetectOutcome::Error`]:
    ///   a transition exactly at the shadow-window edge is still caught.
    ///
    /// Campaign classification (masked / detected / silent) depends on
    /// these edges being stable, so they are regression-tested exactly —
    /// including the degenerate `window_factor == 0` bank, whose `Error`
    /// band is the single point `delay == cycle` met by the `Ok` rule
    /// first, making every late transition `Undetected`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_ns` is not finite and positive or `delay_ns` is
    /// negative/not finite.
    pub fn check(&self, delay_ns: f64, cycle_ns: f64) -> DetectOutcome {
        assert!(
            cycle_ns.is_finite() && cycle_ns > 0.0,
            "cycle period must be finite and positive, got {cycle_ns}"
        );
        assert!(
            delay_ns.is_finite() && delay_ns >= 0.0,
            "delay must be finite and non-negative, got {delay_ns}"
        );
        if delay_ns <= cycle_ns {
            DetectOutcome::Ok
        } else if delay_ns <= cycle_ns * (1.0 + self.config.window_factor) {
            DetectOutcome::Error
        } else {
            DetectOutcome::Undetected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        let bank = RazorBank::new(8, RazorConfig::paper());
        assert_eq!(bank.check(1.0, 1.0), DetectOutcome::Ok); // exactly on edge
        assert_eq!(bank.check(1.0 + 1e-9, 1.0), DetectOutcome::Error);
        assert_eq!(bank.check(2.0, 1.0), DetectOutcome::Error); // window edge
        assert_eq!(bank.check(2.0 + 1e-9, 1.0), DetectOutcome::Undetected);
    }

    /// The documented edges-as-met convention, checked with *exact* f64
    /// values (no epsilon): `delay == period` is Ok and
    /// `delay == period * (1 + window_factor)` is Error, for several
    /// periods and window factors, so campaign classification can rely on
    /// the boundaries never drifting.
    #[test]
    fn boundary_edges_classify_as_met() {
        for cycle in [0.5, 1.0, 2.75] {
            for wf in [0.25, 0.5, 1.0] {
                let bank = RazorBank::new(8, RazorConfig { window_factor: wf });
                assert_eq!(
                    bank.check(cycle, cycle),
                    DetectOutcome::Ok,
                    "delay == period must be met (cycle {cycle}, wf {wf})"
                );
                let window_edge = cycle * (1.0 + wf);
                assert_eq!(
                    bank.check(window_edge, cycle),
                    DetectOutcome::Error,
                    "delay == window edge must be detected (cycle {cycle}, wf {wf})"
                );
                assert_eq!(
                    bank.check(window_edge + window_edge * f64::EPSILON, cycle),
                    DetectOutcome::Undetected,
                    "one ulp past the window edge is silent (cycle {cycle}, wf {wf})"
                );
            }
        }
    }

    /// A zero-width shadow window degenerates consistently: the window edge
    /// coincides with the clock edge and is claimed by `Ok`, so every late
    /// transition is `Undetected` — the Error band is empty, never negative.
    #[test]
    fn zero_window_factor_never_reports_error() {
        let bank = RazorBank::new(8, RazorConfig { window_factor: 0.0 });
        assert_eq!(bank.check(1.0, 1.0), DetectOutcome::Ok);
        for delay in [1.0 + 1e-12, 1.1, 5.0] {
            assert_eq!(bank.check(delay, 1.0), DetectOutcome::Undetected);
        }
    }

    #[test]
    fn zero_delay_patterns_always_pass() {
        let bank = RazorBank::new(8, RazorConfig::paper());
        assert_eq!(bank.check(0.0, 0.5), DetectOutcome::Ok);
    }

    #[test]
    fn narrow_window_misses_late_transitions() {
        let bank = RazorBank::new(8, RazorConfig { window_factor: 0.1 });
        assert_eq!(bank.check(1.05, 1.0), DetectOutcome::Error);
        assert_eq!(bank.check(1.2, 1.0), DetectOutcome::Undetected);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn rejects_empty_bank() {
        let _ = RazorBank::new(0, RazorConfig::paper());
    }

    #[test]
    #[should_panic(expected = "cycle period")]
    fn rejects_zero_cycle() {
        let bank = RazorBank::new(1, RazorConfig::paper());
        let _ = bank.check(1.0, 0.0);
    }
}
