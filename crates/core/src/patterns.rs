//! Workload generators for the experiments.

use agemul_circuits::Operand;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A reproducible sequence of `(a, b)` operand pairs.
///
/// Every generator takes an explicit seed — experiments are deterministic
/// end to end, which is what lets the repro harness print stable tables.
///
/// # Example
///
/// ```
/// use agemul::PatternSet;
///
/// let p1 = PatternSet::uniform(16, 100, 7);
/// let p2 = PatternSet::uniform(16, 100, 7);
/// assert_eq!(p1.pairs(), p2.pairs()); // same seed, same workload
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternSet {
    width: usize,
    pairs: Vec<(u64, u64)>,
}

impl PatternSet {
    /// Uniformly random operand pairs — the workload behind the paper's
    /// Figs. 5, 9, 10 and all the latency sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64`.
    pub fn uniform(width: usize, count: usize, seed: u64) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width must be in 1..=64, got {width}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = Self::mask(width);
        let pairs = (0..count)
            .map(|_| (rng.gen::<u64>() & mask, rng.gen::<u64>() & mask))
            .collect();
        PatternSet { width, pairs }
    }

    /// Pairs whose *judged* operand has exactly `zeros` zero bits, the
    /// other operand uniform — the workload of the paper's Fig. 6 (delay
    /// distribution under 6/8/10 zeros in the multiplicand).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64` or `zeros > width`.
    pub fn with_exact_zeros(
        width: usize,
        count: usize,
        zeros: u32,
        judged: Operand,
        seed: u64,
    ) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width must be in 1..=64, got {width}"
        );
        assert!(
            zeros as usize <= width,
            "cannot place {zeros} zeros in {width} bits"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = Self::mask(width);
        let mut positions: Vec<usize> = (0..width).collect();
        let pairs = (0..count)
            .map(|_| {
                positions.shuffle(&mut rng);
                let mut judged_value = mask;
                for &p in positions.iter().take(zeros as usize) {
                    judged_value &= !(1u64 << p);
                }
                let other = rng.gen::<u64>() & mask;
                match judged {
                    Operand::Multiplicand => (judged_value, other),
                    Operand::Multiplicator => (other, judged_value),
                }
            })
            .collect();
        PatternSet { width, pairs }
    }

    /// A correlated operand stream: each pattern differs from its
    /// predecessor by flipping each bit independently with probability
    /// `flip_probability`.
    ///
    /// Real datapaths rarely see uncorrelated operands (sensor samples,
    /// filter states, and loop counters change a few bits per step); since
    /// the event-driven profiler measures *transition* delays and
    /// switching energy, workload correlation matters. Low flip
    /// probabilities produce short sensitized paths and little switching.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64` or `flip_probability` is not
    /// within `[0, 1]`.
    pub fn correlated(width: usize, count: usize, flip_probability: f64, seed: u64) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width must be in 1..=64, got {width}"
        );
        assert!(
            (0.0..=1.0).contains(&flip_probability),
            "flip probability must be in [0, 1], got {flip_probability}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = Self::mask(width);
        let mut a = rng.gen::<u64>() & mask;
        let mut b = rng.gen::<u64>() & mask;
        let flip = |v: u64, rng: &mut StdRng| -> u64 {
            let mut out = v;
            for bit in 0..width {
                if rng.gen::<f64>() < flip_probability {
                    out ^= 1 << bit;
                }
            }
            out & mask
        };
        let pairs = (0..count)
            .map(|_| {
                a = flip(a, &mut rng);
                b = flip(b, &mut rng);
                (a, b)
            })
            .collect();
        PatternSet { width, pairs }
    }

    /// A fixed, explicit sequence (for tests and targeted experiments).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64` or any operand overflows it.
    pub fn explicit(width: usize, pairs: Vec<(u64, u64)>) -> Self {
        assert!(
            (1..=64).contains(&width),
            "width must be in 1..=64, got {width}"
        );
        let mask = Self::mask(width);
        for &(a, b) in &pairs {
            assert!(
                a & !mask == 0 && b & !mask == 0,
                "operand pair ({a}, {b}) overflows {width} bits"
            );
        }
        PatternSet { width, pairs }
    }

    /// Operand width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The operand pairs in application order.
    #[inline]
    pub fn pairs(&self) -> &[(u64, u64)] {
        &self.pairs
    }

    /// Number of patterns.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    fn mask(width: usize) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::count_zeros;

    use super::*;

    #[test]
    fn uniform_is_seeded_and_masked() {
        let p = PatternSet::uniform(8, 1000, 3);
        assert_eq!(p.len(), 1000);
        assert!(p.pairs().iter().all(|&(a, b)| a < 256 && b < 256));
        assert_ne!(
            PatternSet::uniform(8, 10, 1).pairs(),
            PatternSet::uniform(8, 10, 2).pairs()
        );
    }

    #[test]
    fn exact_zeros_in_multiplicand() {
        let p = PatternSet::with_exact_zeros(16, 500, 6, Operand::Multiplicand, 9);
        for &(a, _) in p.pairs() {
            assert_eq!(count_zeros(a, 16), 6);
        }
    }

    #[test]
    fn exact_zeros_in_multiplicator() {
        let p = PatternSet::with_exact_zeros(16, 500, 10, Operand::Multiplicator, 9);
        for &(_, b) in p.pairs() {
            assert_eq!(count_zeros(b, 16), 10);
        }
    }

    #[test]
    fn zero_positions_vary() {
        let p = PatternSet::with_exact_zeros(16, 100, 8, Operand::Multiplicand, 11);
        let distinct: std::collections::HashSet<u64> = p.pairs().iter().map(|&(a, _)| a).collect();
        assert!(
            distinct.len() > 10,
            "only {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn explicit_validates_range() {
        let p = PatternSet::explicit(4, vec![(15, 3)]);
        assert_eq!(p.pairs(), &[(15, 3)]);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn explicit_rejects_overflow() {
        let _ = PatternSet::explicit(4, vec![(16, 0)]);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn rejects_too_many_zeros() {
        let _ = PatternSet::with_exact_zeros(8, 1, 9, Operand::Multiplicand, 0);
    }

    #[test]
    fn full_width_uniform() {
        let p = PatternSet::uniform(64, 10, 5);
        assert_eq!(p.width(), 64);
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn correlated_stream_flips_few_bits() {
        let p = PatternSet::correlated(16, 500, 0.05, 9);
        let mut total_flips = 0u32;
        for w in p.pairs().windows(2) {
            total_flips += (w[0].0 ^ w[1].0).count_ones() + (w[0].1 ^ w[1].1).count_ones();
        }
        let per_step = f64::from(total_flips) / (2.0 * 499.0);
        // Expect ≈ 16 × 0.05 = 0.8 flips per operand per step.
        assert!((0.4..1.4).contains(&per_step), "{per_step} flips/step");
    }

    #[test]
    fn correlated_zero_probability_is_constant() {
        let p = PatternSet::correlated(8, 20, 0.0, 1);
        assert!(p.pairs().windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "flip probability")]
    fn correlated_rejects_bad_probability() {
        let _ = PatternSet::correlated(8, 1, 1.5, 0);
    }
}
