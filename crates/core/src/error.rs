//! Error type for the architecture layer.

use std::error::Error;
use std::fmt;

use agemul_circuits::CircuitError;
use agemul_netlist::NetlistError;

/// Errors surfaced by the `agemul` architecture layer.
///
/// # Example
///
/// ```
/// use agemul::{CoreError, MultiplierDesign};
/// use agemul_circuits::MultiplierKind;
///
/// let err = MultiplierDesign::new(MultiplierKind::Array, 1).unwrap_err();
/// assert!(matches!(err, CoreError::Circuit(_)));
/// ```
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Circuit generation failed.
    Circuit(CircuitError),
    /// A netlist operation failed.
    Netlist(NetlistError),
    /// A configuration value was rejected.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The gate-level circuit computed a wrong product for an operand pair
    /// (caught by [`MultiplierDesign::verify_functional`]).
    ///
    /// [`MultiplierDesign::verify_functional`]: crate::MultiplierDesign::verify_functional
    FunctionalMismatch {
        /// Multiplicand.
        a: u64,
        /// Multiplicator.
        b: u64,
        /// The decoded product bus, or `None` if a product bit never
        /// settled to a binary value.
        got: Option<u128>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Circuit(e) => write!(f, "circuit generation failed: {e}"),
            CoreError::Netlist(e) => write!(f, "netlist operation failed: {e}"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::FunctionalMismatch { a, b, got } => match got {
                Some(p) => write!(
                    f,
                    "circuit computed {a} x {b} = {p}, expected {}",
                    u128::from(*a) * u128::from(*b)
                ),
                None => write!(f, "product of {a} x {b} never settled to a binary value"),
            },
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Circuit(e) => Some(e),
            CoreError::Netlist(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
            CoreError::FunctionalMismatch { .. } => None,
        }
    }
}

impl From<CircuitError> for CoreError {
    fn from(e: CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

impl From<NetlistError> for CoreError {
    fn from(e: NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain() {
        let e = CoreError::from(CircuitError::WidthOutOfRange { width: 0 });
        assert!(Error::source(&e).is_some());
        let e = CoreError::InvalidConfig {
            reason: "cycle period must be positive".into(),
        };
        assert!(Error::source(&e).is_none());
        assert!(e.to_string().contains("cycle period"));
    }
}
