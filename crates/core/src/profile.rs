//! Timing profiles: the bridge between circuit simulation and the engine.

use agemul_circuits::MultiplierKind;

/// One profiled operation: its operands, judged zero count, and measured
/// sensitized path delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PatternRecord {
    /// Multiplicand.
    pub a: u64,
    /// Multiplicator.
    pub b: u64,
    /// Zero bits in the judged operand (multiplicand for column bypassing,
    /// multiplicator for row bypassing).
    pub zeros: u32,
    /// Sensitized path delay of this operation applied after its
    /// predecessor, in nanoseconds (event-driven two-vector measurement).
    pub delay_ns: f64,
}

/// A profiled workload: per-operation timing plus aggregate switching data.
///
/// Profiles are produced by [`MultiplierDesign::profile`] — one
/// (relatively expensive) event-driven simulation — and then replayed
/// *cheaply* through [`run_engine`] under any combination of cycle period,
/// skip number, and hold-logic flavour. This mirrors how the paper sweeps
/// Figs. 13–24 over one set of measured delays.
///
/// [`MultiplierDesign::profile`]: crate::MultiplierDesign::profile
/// [`run_engine`]: crate::run_engine
#[derive(Clone, Debug, PartialEq)]
pub struct PatternProfile {
    kind: MultiplierKind,
    width: usize,
    records: Vec<PatternRecord>,
    max_delay_ns: f64,
    avg_gate_toggles: f64,
}

impl PatternProfile {
    pub(crate) fn new(
        kind: MultiplierKind,
        width: usize,
        records: Vec<PatternRecord>,
        avg_gate_toggles: f64,
    ) -> Self {
        let max_delay_ns = records.iter().map(|r| r.delay_ns).fold(0.0, f64::max);
        PatternProfile {
            kind,
            width,
            records,
            max_delay_ns,
            avg_gate_toggles,
        }
    }

    /// Builds a profile from externally supplied records — synthetic
    /// workloads for testing, or delay data measured by another tool.
    ///
    /// Switching activity is unknown for external data, so
    /// [`avg_gate_toggles`](Self::avg_gate_toggles) reports zero.
    pub fn from_records(kind: MultiplierKind, width: usize, records: Vec<PatternRecord>) -> Self {
        Self::new(kind, width, records, 0.0)
    }

    /// [`from_records`](Self::from_records) with a known mean switching
    /// activity — the reconstruction path for profiles round-tripped
    /// through a checkpoint, where `avg_gate_toggles` was measured by the
    /// original simulation and must survive intact.
    pub fn from_records_with_toggles(
        kind: MultiplierKind,
        width: usize,
        records: Vec<PatternRecord>,
        avg_gate_toggles: f64,
    ) -> Self {
        Self::new(kind, width, records, avg_gate_toggles)
    }

    /// The profiled multiplier architecture.
    #[inline]
    pub fn kind(&self) -> MultiplierKind {
        self.kind
    }

    /// Operand width in bits.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The per-operation records in application order.
    #[inline]
    pub fn records(&self) -> &[PatternRecord] {
        &self.records
    }

    /// Number of profiled operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the profile is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The longest observed sensitized delay, nanoseconds.
    #[inline]
    pub fn max_delay_ns(&self) -> f64 {
        self.max_delay_ns
    }

    /// Mean gate-output toggles per operation (glitches included) — the
    /// dynamic-power driver.
    #[inline]
    pub fn avg_gate_toggles(&self) -> f64 {
        self.avg_gate_toggles
    }

    /// Mean sensitized delay across the workload, nanoseconds.
    pub fn avg_delay_ns(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.delay_ns).sum::<f64>() / self.records.len() as f64
    }

    /// Fraction of operations whose judged operand has at least `skip`
    /// zeros — the paper's "one-cycle pattern ratio" (Tables I & II).
    pub fn one_cycle_ratio(&self, skip: u32) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let n = self.records.iter().filter(|r| r.zeros >= skip).count();
        n as f64 / self.records.len() as f64
    }

    /// Delay histogram with `bins` equal-width bins over `[0, max]` —
    /// the paper's Figs. 5 and 6.
    ///
    /// Returns `(bin_upper_edge_ns, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn delay_histogram(&self, bins: usize) -> Vec<(f64, u64)> {
        assert!(bins > 0, "need at least one bin");
        let hi = self.max_delay_ns.max(f64::MIN_POSITIVE);
        let w = hi / bins as f64;
        let mut counts = vec![0u64; bins];
        for r in &self.records {
            let mut idx = (r.delay_ns / w) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (w * (i + 1) as f64, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> PatternProfile {
        let records = vec![
            PatternRecord {
                a: 1,
                b: 2,
                zeros: 15,
                delay_ns: 0.2,
            },
            PatternRecord {
                a: 0xFFFF,
                b: 0xFFFF,
                zeros: 0,
                delay_ns: 1.4,
            },
            PatternRecord {
                a: 0xFF,
                b: 3,
                zeros: 8,
                delay_ns: 0.8,
            },
        ];
        PatternProfile::new(MultiplierKind::ColumnBypass, 16, records, 500.0)
    }

    #[test]
    fn aggregates() {
        let p = profile();
        assert_eq!(p.len(), 3);
        assert!((p.max_delay_ns() - 1.4).abs() < 1e-12);
        assert!((p.avg_delay_ns() - (0.2 + 1.4 + 0.8) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_cycle_ratio_thresholds() {
        let p = profile();
        assert!((p.one_cycle_ratio(8) - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.one_cycle_ratio(16) - 0.0).abs() < 1e-12);
        assert!((p.one_cycle_ratio(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_covers_all_records() {
        let p = profile();
        let h = p.delay_histogram(7);
        assert_eq!(h.len(), 7);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<u64>(), 3);
        // The last bin's upper edge is the max delay.
        assert!((h.last().unwrap().0 - 1.4).abs() < 1e-9);
    }

    /// The record at exactly `max_delay_ns` computes a raw bin index of
    /// `bins` (since `max / (max / bins) == bins`) and must be clamped
    /// into the last bin, never dropped or out of range.
    #[test]
    fn histogram_max_delay_record_lands_in_last_bin() {
        for bins in [1, 2, 3, 7, 64] {
            let h = profile().delay_histogram(bins);
            assert_eq!(h.len(), bins);
            assert_eq!(h.iter().map(|&(_, c)| c).sum::<u64>(), 3, "bins={bins}");
            assert!(h.last().unwrap().1 >= 1, "max record lost with {bins} bins");
        }

        // Degenerate spread: every delay equals the max, so every raw
        // index is `bins` — all records clamp into the final bin.
        let flat = PatternProfile::new(
            MultiplierKind::RowBypass,
            8,
            (0..5)
                .map(|i| PatternRecord {
                    a: i,
                    b: i,
                    zeros: 0,
                    delay_ns: 0.9,
                })
                .collect(),
            0.0,
        );
        let h = flat.delay_histogram(4);
        assert_eq!(
            &h.iter().map(|&(_, c)| c).collect::<Vec<_>>(),
            &[0, 0, 0, 5]
        );
        assert!((h.last().unwrap().0 - 0.9).abs() < 1e-12);

        // And a zero-delay record stays in the first bin.
        let mixed = PatternProfile::new(
            MultiplierKind::Array,
            8,
            vec![
                PatternRecord {
                    a: 0,
                    b: 0,
                    zeros: 8,
                    delay_ns: 0.0,
                },
                PatternRecord {
                    a: 1,
                    b: 1,
                    zeros: 7,
                    delay_ns: 1.0,
                },
            ],
            0.0,
        );
        let h = mixed.delay_histogram(2);
        assert_eq!(&h.iter().map(|&(_, c)| c).collect::<Vec<_>>(), &[1, 1]);
    }

    /// `one_cycle_ratio` uses `zeros >= skip`: a record whose judged
    /// operand has *exactly* `skip` zeros is a one-cycle pattern, and the
    /// ratio is monotone non-increasing in `skip` up to (and past) the
    /// all-zeros boundary `skip == width`.
    #[test]
    fn one_cycle_ratio_boundary_skips() {
        let p = PatternProfile::new(
            MultiplierKind::ColumnBypass,
            4,
            vec![
                PatternRecord {
                    a: 0,
                    b: 9,
                    zeros: 4, // judged operand all zeros: width-many zeros
                    delay_ns: 0.1,
                },
                PatternRecord {
                    a: 5,
                    b: 9,
                    zeros: 2,
                    delay_ns: 0.5,
                },
                PatternRecord {
                    a: 15,
                    b: 9,
                    zeros: 0,
                    delay_ns: 0.9,
                },
            ],
            0.0,
        );
        // skip == 0 admits everything, including the zeros == 0 record.
        assert!((p.one_cycle_ratio(0) - 1.0).abs() < 1e-12);
        // Exact boundary: zeros == skip counts (>=, not >).
        assert!((p.one_cycle_ratio(2) - 2.0 / 3.0).abs() < 1e-12);
        // skip == width admits only the all-zeros operand.
        assert!((p.one_cycle_ratio(4) - 1.0 / 3.0).abs() < 1e-12);
        // Past the width no operand can qualify.
        assert_eq!(p.one_cycle_ratio(5), 0.0);
        assert_eq!(p.one_cycle_ratio(u32::MAX), 0.0);
        // Monotone non-increasing across the whole skip range.
        for s in 0..6 {
            assert!(p.one_cycle_ratio(s + 1) <= p.one_cycle_ratio(s) + 1e-15);
        }
    }

    #[test]
    fn empty_profile_is_well_behaved() {
        let p = PatternProfile::new(MultiplierKind::Array, 16, Vec::new(), 0.0);
        assert!(p.is_empty());
        assert_eq!(p.avg_delay_ns(), 0.0);
        assert_eq!(p.one_cycle_ratio(5), 0.0);
    }
}
