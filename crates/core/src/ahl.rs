//! The Adaptive Hold Logic circuit (paper Fig. 12), modeled behaviourally.

use std::fmt;

use crate::JudgingBlock;

/// The latency class the AHL assigns to an incoming pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CycleDecision {
    /// The pattern is predicted to finish within one (short) cycle.
    OneCycle,
    /// The pattern needs two cycles; the input flip-flops' clock is gated
    /// for one cycle.
    TwoCycles,
}

/// Configuration of the AHL's aging indicator.
///
/// The paper's setting is a 10 % error threshold over windows of 100
/// operations ("10 errors for each 100 operations").
///
/// `sticky` controls whether the indicator latches once tripped. The paper
/// describes a plain counter that resets every window; a literal reading
/// lets the indicator fall back to the first judging block as soon as the
/// stricter block suppresses the errors — which immediately re-trips it,
/// oscillating between blocks window after window. Production Razor-style
/// controllers latch, so `true` is the default; the ablation benches
/// explore `false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AhlConfig {
    /// Operations per aging-indicator window (paper: 100).
    pub window_ops: u32,
    /// Errors within one window that flag significant aging (paper: 10).
    pub error_threshold: u32,
    /// Whether the aged state latches once entered.
    pub sticky: bool,
}

impl AhlConfig {
    /// The paper's configuration: 10 errors per 100 operations, latching.
    pub fn paper() -> Self {
        AhlConfig {
            window_ops: 100,
            error_threshold: 10,
            sticky: true,
        }
    }
}

impl Default for AhlConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The Adaptive Hold Logic: two judging blocks, an aging indicator, and the
/// mux/D-flip-flop state that selects between them.
///
/// In the hardware (paper Fig. 12) the judging blocks run combinationally
/// alongside the multiplier; the aging indicator is an error counter that
/// trips when Razor errors become frequent, after which the stricter
/// `skip + 1` block classifies patterns, shrinking the one-cycle population
/// to those with enough slack to absorb the BTI-degraded delays.
///
/// The *traditional* variable-latency design (T-VLCB/T-VLRB in the paper's
/// comparison) is this struct with adaptation disabled — see
/// [`Ahl::traditional`].
///
/// # Example
///
/// ```
/// use agemul::{Ahl, AhlConfig, CycleDecision};
///
/// let mut ahl = Ahl::adaptive(7, AhlConfig::paper());
/// assert_eq!(ahl.decide(9), CycleDecision::OneCycle);
///
/// // Heavy error pressure trips the aging indicator…
/// for _ in 0..100 {
///     ahl.record(true);
/// }
/// assert!(ahl.is_aged_mode());
/// // …and borderline patterns now take two cycles.
/// assert_eq!(ahl.decide(7), CycleDecision::TwoCycles);
/// assert_eq!(ahl.decide(8), CycleDecision::OneCycle);
/// ```
#[derive(Clone, Debug)]
pub struct Ahl {
    first: JudgingBlock,
    second: JudgingBlock,
    config: AhlConfig,
    adaptive: bool,
    aged: bool,
    ops_in_window: u32,
    errors_in_window: u32,
    transitions: u64,
}

impl Ahl {
    /// An adaptive AHL (the proposed design) with base skip threshold
    /// `skip`.
    pub fn adaptive(skip: u32, config: AhlConfig) -> Self {
        let first = JudgingBlock::new(skip);
        Ahl {
            first,
            second: first.stricter(),
            config,
            adaptive: true,
            aged: false,
            ops_in_window: 0,
            errors_in_window: 0,
            transitions: 0,
        }
    }

    /// A traditional hold logic with a single judging block (the paper's
    /// T-VLCB/T-VLRB baseline): the aging indicator never engages.
    pub fn traditional(skip: u32) -> Self {
        let mut ahl = Self::adaptive(skip, AhlConfig::paper());
        ahl.adaptive = false;
        ahl
    }

    /// Classifies a pattern with `zeros` zero bits in the judged operand,
    /// using whichever judging block the aging indicator currently selects.
    pub fn decide(&self, zeros: u32) -> CycleDecision {
        let block = self.active_block();
        if block.is_one_cycle(zeros) {
            CycleDecision::OneCycle
        } else {
            CycleDecision::TwoCycles
        }
    }

    /// Records the completion of one operation and whether the Razor bank
    /// flagged it, advancing the aging-indicator window.
    ///
    /// # Window semantics
    ///
    /// The operation being recorded is counted into the *current* window
    /// before the boundary check, so the trip decision at operation
    /// `window_ops` uses exactly the errors of operations
    /// `1..=window_ops` — an error on the window's last operation still
    /// participates in that window's decision. The threshold comparison is
    /// inclusive (`errors >= error_threshold` trips), and the mode only
    /// ever changes at a window boundary: mid-window queries observe the
    /// mode decided at the end of the previous window no matter how many
    /// errors the current window has accumulated so far.
    pub fn record(&mut self, razor_error: bool) {
        self.ops_in_window += 1;
        if razor_error {
            self.errors_in_window += 1;
        }
        if self.ops_in_window >= self.config.window_ops {
            let tripped = self.errors_in_window >= self.config.error_threshold;
            if self.adaptive {
                let next = if self.config.sticky {
                    self.aged || tripped
                } else {
                    tripped
                };
                if next != self.aged {
                    self.transitions += 1;
                }
                self.aged = next;
            }
            self.ops_in_window = 0;
            self.errors_in_window = 0;
        }
    }

    /// The judging block currently selected by the aging indicator.
    pub fn active_block(&self) -> JudgingBlock {
        if self.aged {
            self.second
        } else {
            self.first
        }
    }

    /// Whether the aging indicator has engaged the stricter block.
    #[inline]
    pub fn is_aged_mode(&self) -> bool {
        self.aged
    }

    /// Number of aged-mode transitions observed (interesting for the
    /// non-sticky oscillation ablation).
    #[inline]
    pub fn mode_transitions(&self) -> u64 {
        self.transitions
    }

    /// The base (un-aged) skip threshold.
    #[inline]
    pub fn base_skip(&self) -> u32 {
        self.first.skip()
    }

    /// Whether this instance adapts (proposed) or not (traditional).
    #[inline]
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }
}

/// A serializable snapshot of an [`Ahl`]'s mutable state — the aging
/// indicator's latch, the in-progress window counters, and the transition
/// tally.
///
/// The judging blocks and configuration are *not* part of the snapshot:
/// they are construction parameters, so a checkpoint that records them
/// once (skip number, window config, adaptive flag) can rebuild the AHL
/// with [`Ahl::adaptive`]/[`Ahl::traditional`] and then
/// [`Ahl::restore`] the dynamic state. Restoring a snapshot into an AHL
/// built with the same parameters reproduces every future
/// [`decide`](Ahl::decide)/[`record`](Ahl::record) outcome exactly —
/// the contract the fleet simulator's checkpoint/resume byte-identity
/// rests on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AhlState {
    /// Whether the stricter judging block is engaged.
    pub aged: bool,
    /// Operations recorded into the current (incomplete) window.
    pub ops_in_window: u32,
    /// Razor errors recorded into the current window.
    pub errors_in_window: u32,
    /// Lifetime aged-mode transitions.
    pub transitions: u64,
}

impl Ahl {
    /// Captures the indicator's dynamic state (see [`AhlState`]).
    pub fn snapshot(&self) -> AhlState {
        AhlState {
            aged: self.aged,
            ops_in_window: self.ops_in_window,
            errors_in_window: self.errors_in_window,
            transitions: self.transitions,
        }
    }

    /// Restores a [`snapshot`](Self::snapshot) taken from an AHL built
    /// with the same constructor parameters.
    pub fn restore(&mut self, state: AhlState) {
        self.aged = state.aged && self.adaptive;
        self.ops_in_window = state.ops_in_window;
        self.errors_in_window = state.errors_in_window;
        self.transitions = state.transitions;
    }
}

impl fmt::Display for Ahl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AHL({}, {}, {})",
            self.first,
            if self.adaptive {
                "adaptive"
            } else {
                "traditional"
            },
            if self.aged { "aged" } else { "fresh" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A restored snapshot reproduces every future decide/record outcome:
    /// run an AHL halfway through an error-laden stream, snapshot, restore
    /// into a freshly built twin, and drive both through the remainder —
    /// mode, window counters, and decisions stay in lockstep.
    #[test]
    fn snapshot_restore_resumes_in_lockstep() {
        let mut original = Ahl::adaptive(7, AhlConfig::paper());
        // 137 ops leaves a window mid-flight (37 ops, some errors).
        for op in 0..137u32 {
            original.record(op % 9 == 0);
        }
        let state = original.snapshot();
        let mut resumed = Ahl::adaptive(7, AhlConfig::paper());
        resumed.restore(state);
        assert_eq!(resumed.snapshot(), state);
        for op in 0..263u32 {
            assert_eq!(resumed.decide(op % 17), original.decide(op % 17));
            let err = op % 7 == 3;
            original.record(err);
            resumed.record(err);
        }
        assert_eq!(resumed.snapshot(), original.snapshot());
        assert_eq!(resumed.mode_transitions(), original.mode_transitions());
    }

    #[test]
    fn fresh_ahl_uses_first_block() {
        let ahl = Ahl::adaptive(7, AhlConfig::paper());
        assert_eq!(ahl.decide(7), CycleDecision::OneCycle);
        assert_eq!(ahl.decide(6), CycleDecision::TwoCycles);
        assert!(!ahl.is_aged_mode());
    }

    #[test]
    fn trips_at_threshold_on_window_boundary() {
        let mut ahl = Ahl::adaptive(7, AhlConfig::paper());
        // 9 errors in 100 ops: below the 10 % threshold.
        for i in 0..100 {
            ahl.record(i < 9);
        }
        assert!(!ahl.is_aged_mode());
        // 10 errors in the next window: trips.
        for i in 0..100 {
            ahl.record(i < 10);
        }
        assert!(ahl.is_aged_mode());
        assert_eq!(ahl.mode_transitions(), 1);
    }

    #[test]
    fn sticky_mode_latches() {
        let mut ahl = Ahl::adaptive(7, AhlConfig::paper());
        for _ in 0..100 {
            ahl.record(true);
        }
        assert!(ahl.is_aged_mode());
        // A clean window does not un-trip a sticky indicator.
        for _ in 0..100 {
            ahl.record(false);
        }
        assert!(ahl.is_aged_mode());
    }

    #[test]
    fn non_sticky_mode_oscillates() {
        let cfg = AhlConfig {
            sticky: false,
            ..AhlConfig::paper()
        };
        let mut ahl = Ahl::adaptive(7, cfg);
        for _ in 0..100 {
            ahl.record(true);
        }
        assert!(ahl.is_aged_mode());
        for _ in 0..100 {
            ahl.record(false);
        }
        assert!(!ahl.is_aged_mode());
        assert_eq!(ahl.mode_transitions(), 2);
    }

    #[test]
    fn traditional_never_adapts() {
        let mut ahl = Ahl::traditional(7);
        for _ in 0..1000 {
            ahl.record(true);
        }
        assert!(!ahl.is_aged_mode());
        assert_eq!(ahl.decide(7), CycleDecision::OneCycle);
    }

    #[test]
    fn aged_mode_requires_one_more_zero() {
        let mut ahl = Ahl::adaptive(15, AhlConfig::paper());
        for _ in 0..100 {
            ahl.record(true);
        }
        assert_eq!(ahl.decide(15), CycleDecision::TwoCycles);
        assert_eq!(ahl.decide(16), CycleDecision::OneCycle);
        assert_eq!(ahl.active_block().skip(), 16);
    }

    /// Errors 91–100 of a 100-op window (threshold 10) trip the indicator
    /// at op 100 — the decision uses the window the errors occurred in,
    /// including an error on the very last op, and engages exactly at the
    /// boundary (not one op later).
    #[test]
    fn errors_at_window_tail_trip_in_their_own_window() {
        let mut ahl = Ahl::adaptive(7, AhlConfig::paper());
        for op in 1..=100u32 {
            assert!(!ahl.is_aged_mode(), "must not trip before the boundary");
            ahl.record((91..=100).contains(&op));
        }
        assert!(ahl.is_aged_mode(), "10 tail errors must trip at op 100");
        assert_eq!(ahl.mode_transitions(), 1);
    }

    /// `errors == error_threshold` trips; `errors == error_threshold - 1`
    /// does not — the comparison is inclusive and exact.
    #[test]
    fn exactly_at_threshold_trips() {
        for (errors, expect) in [(9u32, false), (10, true)] {
            let mut ahl = Ahl::adaptive(7, AhlConfig::paper());
            for op in 0..100 {
                ahl.record(op < errors);
            }
            assert_eq!(ahl.is_aged_mode(), expect, "{errors} errors");
        }
    }

    /// Mid-window, the mode reflects the previous window's decision even
    /// when the current window has already accumulated threshold errors:
    /// the indicator only changes at boundaries.
    #[test]
    fn mid_window_query_reflects_previous_boundary() {
        let mut ahl = Ahl::adaptive(7, AhlConfig::paper());
        for _ in 0..50 {
            ahl.record(true); // 50 errors, but the window is only half done
        }
        assert!(!ahl.is_aged_mode(), "mode must not change mid-window");
        assert_eq!(ahl.decide(7), CycleDecision::OneCycle);
        for _ in 0..50 {
            ahl.record(false);
        }
        assert!(ahl.is_aged_mode(), "boundary at op 100 applies the trip");
        assert_eq!(ahl.decide(7), CycleDecision::TwoCycles);
    }

    /// Non-sticky oscillation ablation: under alternating error pressure
    /// the transition counter grows monotonically, by exactly one per
    /// window boundary that flips the mode.
    #[test]
    fn non_sticky_transitions_grow_monotonically_under_alternation() {
        let cfg = AhlConfig {
            sticky: false,
            ..AhlConfig::paper()
        };
        let mut ahl = Ahl::adaptive(7, cfg);
        let mut last = ahl.mode_transitions();
        for window in 0..10 {
            let noisy = window % 2 == 0;
            for _ in 0..100 {
                ahl.record(noisy);
            }
            let now = ahl.mode_transitions();
            assert!(now >= last, "transition counter must be monotone");
            assert_eq!(now, last + 1, "alternating pressure flips every window");
            assert_eq!(ahl.is_aged_mode(), noisy);
            last = now;
        }
        assert_eq!(ahl.mode_transitions(), 10);
    }

    /// `Ahl::traditional` never transitions, whatever the pressure shape.
    #[test]
    fn traditional_records_zero_transitions() {
        let mut ahl = Ahl::traditional(7);
        for window in 0..10 {
            let noisy = window % 2 == 0;
            for _ in 0..100 {
                ahl.record(noisy);
            }
            assert!(!ahl.is_aged_mode());
            assert_eq!(ahl.mode_transitions(), 0);
        }
    }

    #[test]
    fn errors_do_not_leak_across_windows() {
        let mut ahl = Ahl::adaptive(7, AhlConfig::paper());
        // 5 errors at the end of one window + 5 at the start of the next:
        // neither window reaches 10.
        for i in 0..200 {
            ahl.record((95..105).contains(&i));
        }
        assert!(!ahl.is_aged_mode());
    }

    /// Regression for the 10%-per-100-ops window edge: a burst of exactly
    /// ten errors that straddles the boundary (nine closing one window,
    /// one opening the next) must never trip, because the counter resets
    /// at the edge — while the same burst shifted a single op earlier
    /// lands entirely in one window and engages exactly at its boundary,
    /// not one op later.
    #[test]
    fn window_edge_reset_regression() {
        // Ops 92..=100 of window 1 (9 errors) + op 1 of window 2 (1).
        let mut straddle = Ahl::adaptive(7, AhlConfig::paper());
        for i in 0..300 {
            straddle.record((91..101).contains(&i));
        }
        assert!(
            !straddle.is_aged_mode(),
            "a straddling burst must not survive the counter reset"
        );
        assert_eq!(straddle.mode_transitions(), 0);

        // The same ten errors one op earlier: ops 91..=100 of window 1.
        let mut inside = Ahl::adaptive(7, AhlConfig::paper());
        for i in 0..100 {
            assert!(
                !inside.is_aged_mode(),
                "engaged before the window boundary at op {i}"
            );
            inside.record((90..100).contains(&i));
        }
        assert!(inside.is_aged_mode(), "10 errors in one window must trip");
        assert_eq!(inside.mode_transitions(), 1);
    }

    /// Non-sticky switch-back at the exact threshold: a window with
    /// exactly ten errors engages the stricter judging block at its
    /// boundary, the following nine-error window falls back, and the
    /// cycle repeats — with `decide` and `active_block` flipping in
    /// lockstep with the mode.
    #[test]
    fn switch_back_oscillation_at_exact_threshold() {
        let cfg = AhlConfig {
            sticky: false,
            ..AhlConfig::paper()
        };
        let mut ahl = Ahl::adaptive(7, cfg);
        for round in 0..4 {
            // Exactly at threshold: trips at this window's boundary.
            for i in 0..100 {
                ahl.record(i < 10);
            }
            assert!(
                ahl.is_aged_mode(),
                "round {round}: threshold window must trip"
            );
            assert_eq!(ahl.active_block().skip(), 8);
            assert_eq!(ahl.decide(7), CycleDecision::TwoCycles);
            assert_eq!(ahl.decide(8), CycleDecision::OneCycle);

            // One error short of threshold: switches back at the next
            // boundary and the base block decides again.
            for i in 0..100 {
                ahl.record(i < 9);
            }
            assert!(
                !ahl.is_aged_mode(),
                "round {round}: sub-threshold window must fall back"
            );
            assert_eq!(ahl.active_block().skip(), 7);
            assert_eq!(ahl.decide(7), CycleDecision::OneCycle);
        }
        assert_eq!(ahl.mode_transitions(), 8);
    }
}
