//! Cycle-accurate co-simulation of the full architecture.
//!
//! The experiment engine ([`crate::run_engine`]) replays *pre-profiled*
//! per-operation delays — fast, but it assumes the profile/replay
//! decomposition is sound (in particular, that a re-executed operation
//! re-applies the same operands and therefore causes no new transitions).
//! This module removes the assumption: it drives the gate-level netlist,
//! the AHL, and the Razor bank together, operation by operation, measuring
//! each sensitized delay live off the event-driven simulator. The test
//! suite asserts both paths produce identical metrics.

use agemul_netlist::EventSim;

use crate::{
    Ahl, CycleDecision, DetectOutcome, EngineConfig, MultiplierDesign, PatternSet, RazorBank,
    RunMetrics,
};

/// Runs the architecture cycle-accurately over `patterns`, measuring every
/// operation's delay from the live circuit state instead of a profile.
///
/// `factors` optionally ages the circuit (as in
/// [`MultiplierDesign::profile`]).
///
/// # Errors
///
/// Propagates circuit/netlist errors ([`crate::CoreError`]).
///
/// # Example
///
/// ```no_run
/// use agemul::{cycle_accurate_run, EngineConfig, MultiplierDesign, PatternSet};
/// use agemul_circuits::MultiplierKind;
///
/// let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
/// let patterns = PatternSet::uniform(16, 500, 1);
/// let metrics = cycle_accurate_run(
///     &design,
///     &patterns,
///     None,
///     &EngineConfig::adaptive(0.95, 7),
/// )?;
/// assert_eq!(metrics.operations, 500);
/// # Ok::<(), agemul::CoreError>(())
/// ```
pub fn cycle_accurate_run(
    design: &MultiplierDesign,
    patterns: &PatternSet,
    factors: Option<&[f64]>,
    config: &EngineConfig,
) -> Result<RunMetrics, crate::CoreError> {
    assert!(
        config.cycle_ns.is_finite() && config.cycle_ns > 0.0,
        "cycle period must be finite and positive, got {}",
        config.cycle_ns
    );
    let delays = design.delay_assignment(factors)?;
    let mut sim = EventSim::new(design.circuit().netlist(), design.topology(), delays);
    sim.settle(&design.circuit().encode_inputs(0, 0)?)?;

    let mut ahl = if config.adaptive {
        Ahl::adaptive(config.skip, config.ahl)
    } else {
        Ahl::traditional(config.skip)
    };
    let razor = RazorBank::new(2 * design.width().max(1), config.razor);

    let mut metrics = RunMetrics {
        operations: 0,
        cycles: 0,
        errors: 0,
        one_cycle_ops: 0,
        two_cycle_ops: 0,
        undetected: 0,
        cycle_ns: config.cycle_ns,
        aged_mode_entered: false,
    };

    let width = design.width();
    for &(a, b) in patterns.pairs() {
        metrics.operations += 1;
        // The AHL and the array see the new operands in the same cycle.
        let zeros = crate::count_zeros(
            match design.kind().judged_operand() {
                agemul_circuits::Operand::Multiplicand => a,
                agemul_circuits::Operand::Multiplicator => b,
            },
            width,
        );
        let timing = sim.step(&design.circuit().encode_inputs(a, b)?)?;

        match ahl.decide(zeros) {
            CycleDecision::OneCycle => {
                metrics.one_cycle_ops += 1;
                match razor.check(timing.delay_ns, config.cycle_ns) {
                    DetectOutcome::Ok => {
                        metrics.cycles += 1;
                        ahl.record(false);
                    }
                    DetectOutcome::Error => {
                        metrics.errors += 1;
                        metrics.cycles += 1 + u64::from(config.error_penalty_cycles);
                        // Re-execution re-applies the same operands: the
                        // settled circuit produces no further transitions,
                        // which we verify rather than assume.
                        let redo = sim.step(&design.circuit().encode_inputs(a, b)?)?;
                        debug_assert_eq!(redo.events, 0, "re-execution must be quiescent");
                        ahl.record(true);
                    }
                    DetectOutcome::Undetected => {
                        metrics.undetected += 1;
                        metrics.cycles += 1;
                        ahl.record(false);
                    }
                }
            }
            CycleDecision::TwoCycles => {
                metrics.two_cycle_ops += 1;
                metrics.cycles += 2;
                if config.strict_two_cycle && timing.delay_ns > 2.0 * config.cycle_ns {
                    metrics.errors += 1;
                    metrics.cycles += u64::from(config.error_penalty_cycles);
                    ahl.record(true);
                } else {
                    ahl.record(false);
                }
            }
        }
        metrics.aged_mode_entered |= ahl.is_aged_mode();
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use agemul_circuits::MultiplierKind;

    use crate::run_engine;

    use super::*;

    #[test]
    fn matches_profile_replay_exactly() {
        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 400, 17);
        let config = EngineConfig::adaptive(0.55, 4);

        let profile = design.profile(patterns.pairs(), None).unwrap();
        let replayed = run_engine(&profile, &config);
        let live = cycle_accurate_run(&design, &patterns, None, &config).unwrap();
        assert_eq!(live, replayed);
        assert!(live.errors > 0, "pick a period that actually errors");
    }

    #[test]
    fn matches_replay_on_aged_circuit() {
        let design = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 300, 23);
        let factors = vec![1.12; design.circuit().netlist().gate_count()];
        for adaptive in [false, true] {
            let config = if adaptive {
                EngineConfig::adaptive(0.6, 4)
            } else {
                EngineConfig::traditional(0.6, 4)
            };
            let profile = design.profile(patterns.pairs(), Some(&factors)).unwrap();
            let replayed = run_engine(&profile, &config);
            let live = cycle_accurate_run(&design, &patterns, Some(&factors), &config).unwrap();
            assert_eq!(live, replayed, "adaptive={adaptive}");
        }
    }

    #[test]
    fn reexecution_is_quiescent() {
        // Covered by the debug_assert inside the run; exercise a config
        // with many errors so the assertion actually fires.
        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 200, 31);
        let config = EngineConfig::adaptive(0.4, 0); // everything one-cycle, tiny period
        let live = cycle_accurate_run(&design, &patterns, None, &config).unwrap();
        assert!(live.errors > 50);
    }
}
