//! Aggregate metrics of an architecture run.

/// The outcome of replaying a workload through the variable-latency engine
/// (or a fixed-latency baseline).
///
/// # Example
///
/// ```
/// use agemul::RunMetrics;
///
/// let m = RunMetrics {
///     operations: 100,
///     cycles: 130,
///     errors: 2,
///     one_cycle_ops: 70,
///     two_cycle_ops: 30,
///     undetected: 0,
///     cycle_ns: 0.9,
///     aged_mode_entered: false,
/// };
/// assert!((m.avg_cycles() - 1.3).abs() < 1e-12);
/// assert!((m.avg_latency_ns() - 1.17).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunMetrics {
    /// Operations executed.
    pub operations: u64,
    /// Total clock cycles consumed, including re-execution penalties.
    pub cycles: u64,
    /// Razor-detected timing violations.
    pub errors: u64,
    /// Operations the hold logic classified as one-cycle.
    pub one_cycle_ops: u64,
    /// Operations the hold logic classified as two-cycle.
    pub two_cycle_ops: u64,
    /// Timing violations that escaped the Razor window (0 under the
    /// paper's assumptions; reachable in the shrunken-window ablation).
    pub undetected: u64,
    /// The clock period used, nanoseconds.
    pub cycle_ns: f64,
    /// Whether the AHL's aging indicator engaged at any point.
    pub aged_mode_entered: bool,
}

impl RunMetrics {
    /// Mean cycles per operation.
    pub fn avg_cycles(&self) -> f64 {
        if self.operations == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.operations as f64
    }

    /// Mean latency per operation, nanoseconds — the paper's headline
    /// comparison quantity.
    pub fn avg_latency_ns(&self) -> f64 {
        self.avg_cycles() * self.cycle_ns
    }

    /// Errors normalized per 10 000 cycles (the paper's Figs. 16/18–22).
    pub fn errors_per_10k_cycles(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.errors as f64 * 10_000.0 / self.cycles as f64
    }

    /// Errors normalized per 10 000 operations.
    pub fn errors_per_10k_ops(&self) -> f64 {
        if self.operations == 0 {
            return 0.0;
        }
        self.errors as f64 * 10_000.0 / self.operations as f64
    }

    /// Fraction of operations classified one-cycle.
    pub fn one_cycle_ratio(&self) -> f64 {
        if self.operations == 0 {
            return 0.0;
        }
        self.one_cycle_ops as f64 / self.operations as f64
    }

    /// Fraction of one-cycle classifications that mispredicted (errored).
    pub fn misprediction_ratio(&self) -> f64 {
        if self.one_cycle_ops == 0 {
            return 0.0;
        }
        self.errors as f64 / self.one_cycle_ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            operations: 1000,
            cycles: 1500,
            errors: 30,
            one_cycle_ops: 600,
            two_cycle_ops: 400,
            undetected: 0,
            cycle_ns: 0.8,
            aged_mode_entered: true,
        }
    }

    #[test]
    fn averages() {
        let m = metrics();
        assert!((m.avg_cycles() - 1.5).abs() < 1e-12);
        assert!((m.avg_latency_ns() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn normalizations() {
        let m = metrics();
        assert!((m.errors_per_10k_cycles() - 200.0).abs() < 1e-9);
        assert!((m.errors_per_10k_ops() - 300.0).abs() < 1e-9);
        assert!((m.one_cycle_ratio() - 0.6).abs() < 1e-12);
        assert!((m.misprediction_ratio() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_all_zeros() {
        let m = RunMetrics {
            operations: 0,
            cycles: 0,
            errors: 0,
            one_cycle_ops: 0,
            two_cycle_ops: 0,
            undetected: 0,
            cycle_ns: 1.0,
            aged_mode_entered: false,
        };
        assert_eq!(m.avg_cycles(), 0.0);
        assert_eq!(m.avg_latency_ns(), 0.0);
        assert_eq!(m.errors_per_10k_cycles(), 0.0);
        assert_eq!(m.misprediction_ratio(), 0.0);
    }
}
