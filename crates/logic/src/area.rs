//! Transistor-count area model (paper Fig. 25 reports area in transistors).

use std::fmt;

use crate::GateKind;

/// Sequential cell kinds that appear in the proposed architecture but are not
/// part of the combinational netlist itself.
///
/// The paper's area comparison (Fig. 25) counts input flip-flops, output
/// flip-flops (plain D flip-flops for the fixed-latency designs, Razor
/// flip-flops for the variable-latency ones), and the AHL's D flip-flop, so
/// the area model must price them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlopKind {
    /// A plain master–slave D flip-flop.
    Dff,
    /// A Razor flip-flop: main flip-flop + shadow latch + XOR comparator +
    /// restore mux (Ernst et al., MICRO'03).
    RazorFf,
    /// A level-sensitive latch (used inside Razor accounting and clock
    /// gating cells).
    Latch,
}

impl FlopKind {
    /// Every sequential kind.
    pub const ALL: [FlopKind; 3] = [FlopKind::Dff, FlopKind::RazorFf, FlopKind::Latch];
}

impl fmt::Display for FlopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlopKind::Dff => "DFF",
            FlopKind::RazorFf => "RAZOR",
            FlopKind::Latch => "LATCH",
        };
        f.write_str(s)
    }
}

/// Transistor counts per gate and flip-flop kind, in a static-CMOS flavour.
///
/// The defaults follow standard-cell conventions: a 2-input NAND/NOR is 4
/// transistors, AND/OR add an output inverter, a transmission-gate XOR is 8,
/// a transmission-gate 2:1 mux is 6, a tri-state buffer 8 (inverter +
/// clocked output stage), a D flip-flop 24, and a Razor flip-flop prices the
/// main flop plus shadow latch (10), XOR comparator (8) and restore mux (6).
///
/// Variadic gates are priced per-input: an n-input AND is modeled as
/// `2n + 2` transistors (series/parallel stacks plus the inverter).
///
/// # Example
///
/// ```
/// use agemul_logic::{AreaModel, GateKind, FlopKind};
///
/// let area = AreaModel::standard_cell();
/// assert_eq!(area.gate_transistors(GateKind::Nand, 2), 4);
/// assert!(area.flop_transistors(FlopKind::RazorFf)
///     > area.flop_transistors(FlopKind::Dff));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AreaModel {
    dff: u32,
    razor: u32,
    latch: u32,
}

impl AreaModel {
    /// The default static-CMOS standard-cell model described on the type.
    pub fn standard_cell() -> Self {
        AreaModel {
            dff: 24,
            razor: 24 + 10 + 8 + 6,
            latch: 10,
        }
    }

    /// Transistor count of a combinational gate with `arity` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is illegal for the gate kind.
    pub fn gate_transistors(&self, kind: GateKind, arity: usize) -> u32 {
        assert!(
            kind.accepts_arity(arity),
            "gate {kind} cannot have {arity} inputs"
        );
        let n = arity as u32;
        match kind {
            GateKind::Buf => 4,
            GateKind::Not => 2,
            GateKind::Nand | GateKind::Nor => 2 * n,
            GateKind::And | GateKind::Or => 2 * n + 2,
            // Transmission-gate XOR is 8T for 2 inputs; each extra input
            // cascades another XOR stage.
            GateKind::Xor => 8 * (n - 1),
            GateKind::Xnor => 8 * (n - 1) + 2,
            GateKind::Mux2 => 6,
            GateKind::Tbuf => 8,
        }
    }

    /// Transistor count of a sequential cell.
    pub fn flop_transistors(&self, kind: FlopKind) -> u32 {
        match kind {
            FlopKind::Dff => self.dff,
            FlopKind::RazorFf => self.razor,
            FlopKind::Latch => self.latch,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::standard_cell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_counts() {
        let a = AreaModel::standard_cell();
        assert_eq!(a.gate_transistors(GateKind::Not, 1), 2);
        assert_eq!(a.gate_transistors(GateKind::Nand, 2), 4);
        assert_eq!(a.gate_transistors(GateKind::Nor, 2), 4);
        assert_eq!(a.gate_transistors(GateKind::And, 2), 6);
        assert_eq!(a.gate_transistors(GateKind::Or, 2), 6);
        assert_eq!(a.gate_transistors(GateKind::Xor, 2), 8);
        assert_eq!(a.gate_transistors(GateKind::Mux2, 3), 6);
        assert_eq!(a.gate_transistors(GateKind::Tbuf, 2), 8);
    }

    #[test]
    fn variadic_gates_grow_linearly() {
        let a = AreaModel::standard_cell();
        assert_eq!(a.gate_transistors(GateKind::And, 3), 8);
        assert_eq!(a.gate_transistors(GateKind::Nand, 4), 8);
        assert_eq!(a.gate_transistors(GateKind::Xor, 3), 16);
    }

    #[test]
    fn razor_is_heavier_than_dff() {
        let a = AreaModel::standard_cell();
        assert!(a.flop_transistors(FlopKind::RazorFf) > a.flop_transistors(FlopKind::Dff));
        assert!(a.flop_transistors(FlopKind::Dff) > a.flop_transistors(FlopKind::Latch));
    }

    #[test]
    #[should_panic(expected = "cannot have")]
    fn rejects_bad_arity() {
        let a = AreaModel::standard_cell();
        let _ = a.gate_transistors(GateKind::Mux2, 2);
    }

    #[test]
    fn all_counts_positive() {
        let a = AreaModel::standard_cell();
        for kind in GateKind::ALL {
            let arity = kind.fixed_arity().unwrap_or(2);
            assert!(a.gate_transistors(kind, arity) > 0, "{kind}");
        }
        for kind in FlopKind::ALL {
            assert!(a.flop_transistors(kind) > 0, "{kind}");
        }
    }
}
