//! Per-gate-kind nominal propagation delays.

use std::fmt;

use crate::GateKind;

/// A table of nominal propagation delays (nanoseconds) per [`GateKind`].
///
/// This model stands in for the paper's SPICE/Nanosim timing backend: each
/// gate kind gets a single pin-to-output delay, and the event-driven timing
/// simulator in `agemul-netlist` adds them up along sensitized paths. The
/// aging engine in `agemul-aging` later multiplies each *gate instance*'s
/// delay by a BTI degradation factor.
///
/// The nominal values are loosely based on 32 nm high-k/metal-gate FO4-style
/// ratios (an inverter is fastest; XOR/XNOR cost roughly three inverter
/// delays; a transmission-gate mux sits in between). Because the paper's
/// claims are all *comparative*, what matters is the ratio structure and the
/// final calibration: [`DelayModel::calibrated`] rescales the entire table so
/// that a chosen circuit (in practice the 16×16 array multiplier) hits the
/// paper's reported critical-path delay of 1.32 ns.
///
/// # Example
///
/// ```
/// use agemul_logic::{DelayModel, GateKind};
///
/// let nominal = DelayModel::nominal();
/// let doubled = nominal.scaled(2.0);
/// assert_eq!(
///     doubled.delay_ns(GateKind::Xor),
///     2.0 * nominal.delay_ns(GateKind::Xor),
/// );
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DelayModel {
    /// Indexed by the discriminant order of [`GateKind::ALL`].
    table_ns: [f64; 10],
}

impl DelayModel {
    /// Nominal 32 nm-flavoured delay table (see type-level docs).
    pub fn nominal() -> Self {
        let mut table_ns = [0.0; 10];
        for (i, kind) in GateKind::ALL.iter().enumerate() {
            table_ns[i] = match kind {
                GateKind::Not => 0.008,
                GateKind::Buf => 0.010,
                GateKind::Nand => 0.010,
                GateKind::Nor => 0.012,
                GateKind::And => 0.014,
                GateKind::Or => 0.016,
                GateKind::Xor => 0.024,
                GateKind::Xnor => 0.024,
                GateKind::Mux2 => 0.016,
                GateKind::Tbuf => 0.010,
            };
        }
        DelayModel { table_ns }
    }

    /// Builds a model from an explicit `(kind, delay_ns)` table; kinds not
    /// mentioned keep their [`DelayModel::nominal`] value.
    ///
    /// # Panics
    ///
    /// Panics if any provided delay is not finite and positive.
    pub fn with_overrides(overrides: &[(GateKind, f64)]) -> Self {
        let mut model = Self::nominal();
        for &(kind, d) in overrides {
            model.set_delay_ns(kind, d);
        }
        model
    }

    /// The propagation delay of `kind` in nanoseconds.
    #[inline]
    pub fn delay_ns(&self, kind: GateKind) -> f64 {
        self.table_ns[Self::index(kind)]
    }

    /// Overrides the delay of a single gate kind.
    ///
    /// # Panics
    ///
    /// Panics if `delay_ns` is not finite and positive.
    pub fn set_delay_ns(&mut self, kind: GateKind, delay_ns: f64) {
        assert!(
            delay_ns.is_finite() && delay_ns > 0.0,
            "gate delay must be finite and positive, got {delay_ns}"
        );
        self.table_ns[Self::index(kind)] = delay_ns;
    }

    /// Returns a copy of the model with every delay multiplied by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be finite and positive, got {factor}"
        );
        let mut table_ns = self.table_ns;
        for d in &mut table_ns {
            *d *= factor;
        }
        DelayModel { table_ns }
    }

    /// Rescales the model so that a circuit measured at `measured_ns` with
    /// this model would instead exhibit `target_ns`.
    ///
    /// The repository uses this once, to pin the 16×16 array multiplier's
    /// critical path to the paper's 1.32 ns; every other delay in every
    /// figure then falls out of the shared table.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not finite and positive.
    pub fn calibrated(&self, target_ns: f64, measured_ns: f64) -> Self {
        assert!(
            measured_ns.is_finite() && measured_ns > 0.0,
            "measured delay must be finite and positive, got {measured_ns}"
        );
        assert!(
            target_ns.is_finite() && target_ns > 0.0,
            "target delay must be finite and positive, got {target_ns}"
        );
        self.scaled(target_ns / measured_ns)
    }

    #[inline]
    fn index(kind: GateKind) -> usize {
        GateKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("GateKind::ALL is exhaustive")
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::nominal()
    }
}

impl fmt::Display for DelayModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DelayModel (ns):")?;
        for kind in GateKind::ALL {
            writeln!(f, "  {kind:>5}: {:.4}", self.delay_ns(kind))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_orderings() {
        let m = DelayModel::nominal();
        // The inverter is the fastest gate; XOR-family the slowest.
        for kind in GateKind::ALL {
            assert!(m.delay_ns(kind) >= m.delay_ns(GateKind::Not), "{kind}");
            assert!(m.delay_ns(kind) <= m.delay_ns(GateKind::Xor), "{kind}");
        }
    }

    #[test]
    fn all_delays_positive() {
        let m = DelayModel::nominal();
        for kind in GateKind::ALL {
            assert!(m.delay_ns(kind) > 0.0);
        }
    }

    #[test]
    fn overrides_apply() {
        let m = DelayModel::with_overrides(&[(GateKind::Xor, 0.1)]);
        assert_eq!(m.delay_ns(GateKind::Xor), 0.1);
        assert_eq!(
            m.delay_ns(GateKind::Not),
            DelayModel::nominal().delay_ns(GateKind::Not)
        );
    }

    #[test]
    fn scaling_is_uniform() {
        let m = DelayModel::nominal();
        let s = m.scaled(3.0);
        for kind in GateKind::ALL {
            let ratio = s.delay_ns(kind) / m.delay_ns(kind);
            assert!((ratio - 3.0).abs() < 1e-12, "{kind}: {ratio}");
        }
    }

    #[test]
    fn calibration_hits_target() {
        let m = DelayModel::nominal();
        // Pretend the AM measured 0.9 ns and we want the paper's 1.32 ns.
        let c = m.calibrated(1.32, 0.9);
        for kind in GateKind::ALL {
            let expect = m.delay_ns(kind) * 1.32 / 0.9;
            assert!((c.delay_ns(kind) - expect).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nonpositive_delay() {
        let mut m = DelayModel::nominal();
        m.set_delay_ns(GateKind::And, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nan_scale() {
        let _ = DelayModel::nominal().scaled(f64::NAN);
    }

    #[test]
    fn default_is_nominal() {
        assert_eq!(DelayModel::default(), DelayModel::nominal());
    }

    #[test]
    fn display_mentions_every_kind() {
        let s = DelayModel::nominal().to_string();
        for kind in GateKind::ALL {
            assert!(s.contains(&kind.to_string()), "missing {kind}");
        }
    }
}
