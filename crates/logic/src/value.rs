//! The four-valued signal type used throughout the workspace.

use std::fmt;
use std::ops::Not;

/// A four-valued digital logic level.
///
/// The two extra levels beyond `0`/`1` exist to model the tri-state bypassing
/// networks of the column- and row-bypassing multipliers:
///
/// * [`Logic::Z`] — high impedance: the value of a net whose tri-state driver
///   is disabled. A gate *reading* `Z` treats it as unknown.
/// * [`Logic::X`] — unknown/uninitialized: the value of every net before the
///   first settling pass, and the result of any gate whose inputs do not
///   determine its output.
///
/// Gate evaluation follows Kleene semantics with controlling values: e.g.
/// `AND(Zero, X) = Zero` because a single `0` input forces an AND gate low
/// regardless of the other inputs. This is exactly what makes the bypassing
/// multipliers functionally safe: an un-driven full-adder output is always
/// masked downstream by a mux whose select is known, or by an AND gate whose
/// other input is `0`.
///
/// # Example
///
/// ```
/// use agemul_logic::Logic;
///
/// assert_eq!(Logic::Zero.and(Logic::X), Logic::Zero); // controlling 0
/// assert_eq!(Logic::One.and(Logic::X), Logic::X);     // undetermined
/// assert_eq!(!Logic::Zero, Logic::One);
/// assert_eq!(!Logic::Z, Logic::X); // reading Z yields unknown
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Logic {
    /// Driven low.
    Zero,
    /// Driven high.
    One,
    /// High impedance (no driver). Reads as unknown.
    Z,
    /// Unknown / uninitialized.
    #[default]
    X,
}

impl Logic {
    /// All four logic levels, useful for exhaustive table-driven tests.
    pub const ALL: [Logic; 4] = [Logic::Zero, Logic::One, Logic::Z, Logic::X];

    /// Returns `true` if the value is a defined `0` or `1`.
    #[inline]
    pub fn is_known(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// Converts to `bool` if the value is defined.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::Z | Logic::X => None,
        }
    }

    /// Collapses `Z` (a floating input pin) to `X` for gate-input purposes.
    #[inline]
    pub fn read(self) -> Logic {
        match self {
            Logic::Z => Logic::X,
            v => v,
        }
    }

    /// Kleene AND with controlling-zero semantics.
    #[inline]
    pub fn and(self, other: Logic) -> Logic {
        match (self.read(), other.read()) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Kleene OR with controlling-one semantics.
    #[inline]
    pub fn or(self, other: Logic) -> Logic {
        match (self.read(), other.read()) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Kleene XOR; any unknown input yields `X`.
    #[inline]
    pub fn xor(self, other: Logic) -> Logic {
        match (self.read().to_bool(), other.read().to_bool()) {
            (Some(a), Some(b)) => Logic::from(a ^ b),
            _ => Logic::X,
        }
    }

    /// Resolves two drivers on the same net (wired-resolution).
    ///
    /// `Z` yields to any real driver; conflicting or unknown drivers resolve
    /// to `X`. This is used by the netlist validator to explain multi-driver
    /// errors, and by bus modeling in tests.
    #[inline]
    pub fn resolve(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Z, v) | (v, Logic::Z) => v,
            (a, b) if a == b => a,
            _ => Logic::X,
        }
    }

    /// The fraction of time a net at this settled value is considered high,
    /// used when accumulating signal probabilities for the aging model.
    /// Unknown values count as half.
    #[inline]
    pub fn high_weight(self) -> f64 {
        match self {
            Logic::Zero => 0.0,
            Logic::One => 1.0,
            Logic::Z | Logic::X => 0.5,
        }
    }
}

impl From<bool> for Logic {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

impl Not for Logic {
    type Output = Logic;

    #[inline]
    fn not(self) -> Logic {
        match self.read() {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::Z => 'z',
            Logic::X => 'x',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic::from(true), Logic::One);
        assert_eq!(Logic::from(false), Logic::Zero);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::Zero.to_bool(), Some(false));
        assert_eq!(Logic::X.to_bool(), None);
        assert_eq!(Logic::Z.to_bool(), None);
    }

    #[test]
    fn known_levels() {
        assert!(Logic::Zero.is_known());
        assert!(Logic::One.is_known());
        assert!(!Logic::Z.is_known());
        assert!(!Logic::X.is_known());
    }

    #[test]
    fn and_controlling_zero() {
        for v in Logic::ALL {
            assert_eq!(Logic::Zero.and(v), Logic::Zero);
            assert_eq!(v.and(Logic::Zero), Logic::Zero);
        }
        assert_eq!(Logic::One.and(Logic::One), Logic::One);
        assert_eq!(Logic::One.and(Logic::X), Logic::X);
        assert_eq!(Logic::One.and(Logic::Z), Logic::X);
    }

    #[test]
    fn or_controlling_one() {
        for v in Logic::ALL {
            assert_eq!(Logic::One.or(v), Logic::One);
            assert_eq!(v.or(Logic::One), Logic::One);
        }
        assert_eq!(Logic::Zero.or(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::Zero.or(Logic::X), Logic::X);
    }

    #[test]
    fn xor_propagates_unknown() {
        assert_eq!(Logic::One.xor(Logic::Zero), Logic::One);
        assert_eq!(Logic::One.xor(Logic::One), Logic::Zero);
        assert_eq!(Logic::One.xor(Logic::X), Logic::X);
        assert_eq!(Logic::Z.xor(Logic::Zero), Logic::X);
    }

    #[test]
    fn not_inverts_known_only() {
        assert_eq!(!Logic::Zero, Logic::One);
        assert_eq!(!Logic::One, Logic::Zero);
        assert_eq!(!Logic::X, Logic::X);
        assert_eq!(!Logic::Z, Logic::X);
    }

    #[test]
    fn resolution_prefers_real_drivers() {
        assert_eq!(Logic::Z.resolve(Logic::One), Logic::One);
        assert_eq!(Logic::Zero.resolve(Logic::Z), Logic::Zero);
        assert_eq!(Logic::Zero.resolve(Logic::One), Logic::X);
        assert_eq!(Logic::Z.resolve(Logic::Z), Logic::Z);
        assert_eq!(Logic::One.resolve(Logic::One), Logic::One);
    }

    #[test]
    fn and_or_are_commutative() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(a.and(b), b.and(a), "AND({a},{b})");
                assert_eq!(a.or(b), b.or(a), "OR({a},{b})");
                assert_eq!(a.xor(b), b.xor(a), "XOR({a},{b})");
            }
        }
    }

    #[test]
    fn high_weight_bounds() {
        for v in Logic::ALL {
            let w = v.high_weight();
            assert!((0.0..=1.0).contains(&w));
        }
        assert_eq!(Logic::One.high_weight(), 1.0);
        assert_eq!(Logic::Zero.high_weight(), 0.0);
    }

    #[test]
    fn display_is_compact() {
        let s: String = Logic::ALL.iter().map(|v| v.to_string()).collect();
        assert_eq!(s, "01zx");
    }

    #[test]
    fn default_is_unknown() {
        assert_eq!(Logic::default(), Logic::X);
    }
}
