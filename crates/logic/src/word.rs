//! 64-lane bit-parallel (bit-sliced) logic words.
//!
//! A [`LogicWord`] holds one [`Logic`] value for each of 64 independent
//! *lanes*; lane `i` of every word in a simulation belongs to pattern `i`.
//! Gate evaluation then becomes a handful of word-wide bitwise operations
//! that process all 64 patterns at once — the classic bit-sliced simulation
//! trick, and the core of `agemul-netlist`'s `BatchSim`.
//!
//! # Encoding
//!
//! Three planes encode the four-valued [`Logic`] per lane:
//!
//! | `known` | `z` | `value` | lane level |
//! |---------|-----|---------|------------|
//! | 1       | –   | 0       | [`Logic::Zero`] |
//! | 1       | –   | 1       | [`Logic::One`]  |
//! | 0       | 1   | –       | [`Logic::Z`]    |
//! | 0       | 0   | –       | [`Logic::X`]    |
//!
//! Two invariants are maintained by every constructor and every gate
//! formula: `value ⊆ known` (unknown lanes carry a zero value bit) and
//! `z ∩ known = ∅`. They are what make the Kleene gate formulas below
//! single-pass: e.g. n-ary AND is `value = AND vᵢ`,
//! `known = (AND kᵢ) | (OR kᵢ&!vᵢ)` with no per-lane case analysis.
//!
//! The `z` plane exists only so a disabled [`GateKind::Tbuf`] can float its
//! output exactly as the scalar simulator does; gates *reading* a word
//! collapse `Z` to `X` first ([`LogicWord::read`]), mirroring
//! [`Logic::read`].

use crate::{GateKind, Logic};

/// 64 four-valued logic levels, one per lane, stored as three bit planes.
///
/// # Example
///
/// ```
/// use agemul_logic::{GateKind, Logic, LogicWord};
///
/// let a = LogicWord::from_lanes(&[Logic::One, Logic::Zero, Logic::X]);
/// let b = LogicWord::splat(Logic::One);
/// let out = GateKind::And.eval_wide(&[a, b]);
/// assert_eq!(out.get(0), Logic::One);  // 1 & 1
/// assert_eq!(out.get(1), Logic::Zero); // 0 & 1
/// assert_eq!(out.get(2), Logic::X);    // X & 1
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LogicWord {
    value: u64,
    known: u64,
    z: u64,
}

impl LogicWord {
    /// All 64 lanes at [`Logic::X`].
    pub const ALL_X: LogicWord = LogicWord {
        value: 0,
        known: 0,
        z: 0,
    };

    /// All 64 lanes at [`Logic::Zero`].
    pub const ALL_ZERO: LogicWord = LogicWord {
        value: 0,
        known: !0,
        z: 0,
    };

    /// All 64 lanes at [`Logic::One`].
    pub const ALL_ONE: LogicWord = LogicWord {
        value: !0,
        known: !0,
        z: 0,
    };

    /// Builds a word from raw planes, re-normalizing the invariants
    /// (`value ⊆ known`, `z ∩ known = ∅`).
    #[inline]
    pub fn from_planes(value: u64, known: u64, z: u64) -> LogicWord {
        LogicWord {
            value: value & known,
            known,
            z: z & !known,
        }
    }

    /// Builds a fully-known two-valued word from a plain bit vector.
    #[inline]
    pub fn from_bits(bits: u64) -> LogicWord {
        LogicWord {
            value: bits,
            known: !0,
            z: 0,
        }
    }

    /// The same level in every lane.
    #[inline]
    pub fn splat(level: Logic) -> LogicWord {
        match level {
            Logic::Zero => LogicWord::ALL_ZERO,
            Logic::One => LogicWord::ALL_ONE,
            Logic::X => LogicWord::ALL_X,
            Logic::Z => LogicWord {
                value: 0,
                known: 0,
                z: !0,
            },
        }
    }

    /// Packs up to 64 levels into consecutive lanes; lanes beyond
    /// `levels.len()` are [`Logic::X`].
    ///
    /// # Panics
    ///
    /// Panics if more than 64 levels are given.
    pub fn from_lanes(levels: &[Logic]) -> LogicWord {
        assert!(levels.len() <= 64, "a LogicWord has 64 lanes");
        let mut w = LogicWord::ALL_X;
        for (i, &v) in levels.iter().enumerate() {
            w.set(i, v);
        }
        w
    }

    /// The level in lane `lane` (0–63).
    #[inline]
    pub fn get(self, lane: usize) -> Logic {
        debug_assert!(lane < 64);
        let bit = 1u64 << lane;
        if self.known & bit != 0 {
            if self.value & bit != 0 {
                Logic::One
            } else {
                Logic::Zero
            }
        } else if self.z & bit != 0 {
            Logic::Z
        } else {
            Logic::X
        }
    }

    /// Sets lane `lane` (0–63) to `level`.
    #[inline]
    pub fn set(&mut self, lane: usize, level: Logic) {
        debug_assert!(lane < 64);
        let bit = 1u64 << lane;
        self.value &= !bit;
        self.known &= !bit;
        self.z &= !bit;
        match level {
            Logic::Zero => self.known |= bit,
            Logic::One => {
                self.known |= bit;
                self.value |= bit;
            }
            Logic::Z => self.z |= bit,
            Logic::X => {}
        }
    }

    /// The value plane: lanes that are known `One`.
    #[inline]
    pub fn ones(self) -> u64 {
        self.value
    }

    /// Lanes that are known `Zero`.
    #[inline]
    pub fn zeros(self) -> u64 {
        self.known & !self.value
    }

    /// The known plane: lanes holding a defined `0`/`1`.
    #[inline]
    pub fn known(self) -> u64 {
        self.known
    }

    /// Lanes that are not a defined value (`X` or `Z`).
    #[inline]
    pub fn unknown(self) -> u64 {
        !self.known
    }

    /// Lanes at high impedance.
    #[inline]
    pub fn z_lanes(self) -> u64 {
        self.z
    }

    /// Collapses `Z` lanes to `X`, mirroring [`Logic::read`] — the view a
    /// gate input has of this word.
    #[inline]
    pub fn read(self) -> LogicWord {
        LogicWord {
            value: self.value,
            known: self.known,
            z: 0,
        }
    }

    /// Forces every lane in `mask` to [`Logic::Zero`] — the word-level form
    /// of a stuck-at-0 fault. Lanes outside `mask` are untouched.
    #[inline]
    pub fn force_zero(self, mask: u64) -> LogicWord {
        LogicWord {
            value: self.value & !mask,
            known: self.known | mask,
            z: self.z & !mask,
        }
    }

    /// Forces every lane in `mask` to [`Logic::One`] — the word-level form
    /// of a stuck-at-1 fault. Lanes outside `mask` are untouched.
    #[inline]
    pub fn force_one(self, mask: u64) -> LogicWord {
        LogicWord {
            value: self.value | mask,
            known: self.known | mask,
            z: self.z & !mask,
        }
    }

    /// Inverts every *defined* lane in `mask` — the word-level form of a
    /// transient bit-flip. Undefined lanes in `mask` (`X` or `Z`) collapse
    /// to `X`: flipping an unknown yields an unknown, and a floating lane
    /// is read (Z → X) before the flip, mirroring [`Logic::read`]. Lanes
    /// outside `mask` are untouched.
    #[inline]
    pub fn flip(self, mask: u64) -> LogicWord {
        LogicWord {
            value: self.value ^ (mask & self.known),
            known: self.known,
            z: self.z & !mask,
        }
    }

    /// Sum of per-lane [`Logic::high_weight`] over the `lanes` lowest lanes
    /// (known `One` counts 1, undefined counts ½) — the batched form of
    /// signal-probability accumulation.
    #[inline]
    pub fn high_weight_sum(self, lanes: usize) -> f64 {
        let mask = lane_mask(lanes);
        let ones = (self.value & mask).count_ones() as f64;
        let unknown = (!self.known & mask).count_ones() as f64;
        // Exact: both terms are integers, the weights are 1 and 0.5.
        ones + 0.5 * unknown
    }

    /// Unpacks the `lanes` lowest lanes into `out[..lanes]`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `lanes` or `lanes > 64`.
    pub fn write_lanes(self, lanes: usize, out: &mut [Logic]) {
        assert!(lanes <= 64, "a LogicWord has 64 lanes");
        for (lane, slot) in out[..lanes].iter_mut().enumerate() {
            *slot = self.get(lane);
        }
    }
}

impl Default for LogicWord {
    fn default() -> Self {
        LogicWord::ALL_X
    }
}

/// `W` chained 64-lane words: `64 × W` four-valued lanes in
/// struct-of-arrays form.
///
/// A `LogicBlock<W>` is the wide-lane generalization of [`LogicWord`]: the
/// three bit planes become `[u64; W]` arrays, so one gate evaluation
/// processes `64 × W` patterns with `W`-length inner loops the compiler can
/// auto-vectorize (`W = 4` is a 256-bit sweep, `W = 8` a 512-bit sweep).
/// `LogicBlock<1>` is layout- and semantics-identical to a single
/// [`LogicWord`].
///
/// # Chunk semantics
///
/// Lane `i` lives in chunk `i / 64`, bit `i % 64`; [`LogicBlock::chunk`]
/// and [`LogicBlock::set_chunk`] convert between a block and its
/// [`LogicWord`] chunks. Every operation on a block is exactly the
/// per-chunk [`LogicWord`] operation — a wide batch is bit-identical to
/// `W` consecutive 64-lane batches. The fault coercions take a single
/// `u64` mask applied to *every* chunk, matching how a lane-masked fault
/// overlay replicates across the chunks of a wide sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LogicBlock<const W: usize> {
    value: [u64; W],
    known: [u64; W],
    z: [u64; W],
}

impl<const W: usize> LogicBlock<W> {
    /// Number of lanes in the block.
    pub const LANES: usize = 64 * W;

    /// All lanes at [`Logic::X`].
    pub const ALL_X: LogicBlock<W> = LogicBlock {
        value: [0; W],
        known: [0; W],
        z: [0; W],
    };

    /// The same level in every lane.
    #[inline]
    pub fn splat(level: Logic) -> LogicBlock<W> {
        let w = LogicWord::splat(level);
        LogicBlock {
            value: [w.value; W],
            known: [w.known; W],
            z: [w.z; W],
        }
    }

    /// The 64-lane chunk `c` (lanes `64c .. 64c + 64`) as a [`LogicWord`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= W`.
    #[inline]
    pub fn chunk(self, c: usize) -> LogicWord {
        LogicWord {
            value: self.value[c],
            known: self.known[c],
            z: self.z[c],
        }
    }

    /// Replaces chunk `c` (lanes `64c .. 64c + 64`) with `w`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= W`.
    #[inline]
    pub fn set_chunk(&mut self, c: usize, w: LogicWord) {
        self.value[c] = w.value;
        self.known[c] = w.known;
        self.z[c] = w.z;
    }

    /// The level in lane `lane` (`0 .. 64 × W`).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[inline]
    pub fn get(self, lane: usize) -> Logic {
        self.chunk(lane / 64).get(lane % 64)
    }

    /// Sets lane `lane` (`0 .. 64 × W`) to `level`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[inline]
    pub fn set(&mut self, lane: usize, level: Logic) {
        let mut w = self.chunk(lane / 64);
        w.set(lane % 64, level);
        self.set_chunk(lane / 64, w);
    }

    /// Forces the masked lanes of *every chunk* to [`Logic::Zero`] — the
    /// block form of a stuck-at-0 fault, replicated per 64-lane chunk.
    #[inline]
    pub fn force_zero(mut self, mask: u64) -> LogicBlock<W> {
        for c in 0..W {
            self.value[c] &= !mask;
            self.known[c] |= mask;
            self.z[c] &= !mask;
        }
        self
    }

    /// Forces the masked lanes of *every chunk* to [`Logic::One`] — the
    /// block form of a stuck-at-1 fault, replicated per 64-lane chunk.
    #[inline]
    pub fn force_one(mut self, mask: u64) -> LogicBlock<W> {
        for c in 0..W {
            self.value[c] |= mask;
            self.known[c] |= mask;
            self.z[c] &= !mask;
        }
        self
    }

    /// Inverts the *defined* masked lanes of every chunk (undefined lanes
    /// collapse to `X`), mirroring [`LogicWord::flip`] per chunk.
    #[inline]
    pub fn flip(mut self, mask: u64) -> LogicBlock<W> {
        for c in 0..W {
            self.value[c] ^= mask & self.known[c];
            self.z[c] &= !mask;
        }
        self
    }

    /// Sum of per-lane [`Logic::high_weight`] over the `lanes` lowest lanes
    /// (known `One` counts 1, undefined counts ½). Exact, and identical to
    /// accumulating the chunks' [`LogicWord::high_weight_sum`] in order.
    #[inline]
    pub fn high_weight_sum(self, lanes: usize) -> f64 {
        debug_assert!(lanes <= Self::LANES);
        let mut ones = 0u32;
        let mut unknown = 0u32;
        let mut left = lanes;
        for c in 0..W {
            let mask = lane_mask(left.min(64));
            ones += (self.value[c] & mask).count_ones();
            unknown += (!self.known[c] & mask).count_ones();
            left = left.saturating_sub(64);
        }
        // Exact: both terms are integers, the weights are 1 and 0.5.
        f64::from(ones) + 0.5 * f64::from(unknown)
    }
}

impl<const W: usize> Default for LogicBlock<W> {
    fn default() -> Self {
        LogicBlock::ALL_X
    }
}

impl From<Logic> for LogicWord {
    fn from(level: Logic) -> Self {
        LogicWord::splat(level)
    }
}

/// Mask selecting the `lanes` lowest lanes (`lanes` ≤ 64).
#[inline]
pub fn lane_mask(lanes: usize) -> u64 {
    debug_assert!(lanes <= 64);
    if lanes >= 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

impl GateKind {
    /// Evaluates the gate on fully-known two-valued lane words: bit `i` of
    /// every input is pattern `i`'s value, bit `i` of the result is pattern
    /// `i`'s output.
    ///
    /// This is the fast path for workloads with no floating nets. The two
    /// kinds whose four-valued semantics cannot be expressed in a single
    /// bit — [`GateKind::Tbuf`]'s `Z` and unknown-select [`GateKind::Mux2`]
    /// — take their two-valued projection: a disabled `Tbuf` reads as `0`
    /// (pull-down convention) and the mux select is always a defined bit.
    /// Use [`GateKind::eval_wide`] when `X`/`Z` must be preserved; that is
    /// what `BatchSim` does.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for the gate kind.
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        assert!(
            self.accepts_arity(inputs.len()),
            "gate {self} evaluated with illegal arity {}",
            inputs.len()
        );
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(!0u64, |acc, &v| acc & v),
            GateKind::Or => inputs.iter().fold(0u64, |acc, &v| acc | v),
            GateKind::Nand => !inputs.iter().fold(!0u64, |acc, &v| acc & v),
            GateKind::Nor => !inputs.iter().fold(0u64, |acc, &v| acc | v),
            GateKind::Xor => inputs.iter().fold(0u64, |acc, &v| acc ^ v),
            GateKind::Xnor => !inputs.iter().fold(0u64, |acc, &v| acc ^ v),
            GateKind::Mux2 => {
                let (in0, in1, sel) = (inputs[0], inputs[1], inputs[2]);
                (sel & in1) | (!sel & in0)
            }
            GateKind::Tbuf => inputs[0] & inputs[1],
        }
    }

    /// Evaluates the gate on four-valued lane words, lane-for-lane
    /// equivalent to [`GateKind::eval`]:
    /// `eval_wide(ws).get(i) == eval(&[ws[0].get(i), ...])` for every lane.
    ///
    /// The formulas are the word-level Kleene semantics with controlling
    /// values — e.g. an AND output is known wherever *all* inputs are known
    /// or *any* input is a known zero — and only a disabled
    /// [`GateKind::Tbuf`] ever produces a `Z` lane.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for the gate kind.
    pub fn eval_wide(self, inputs: &[LogicWord]) -> LogicWord {
        assert!(
            self.accepts_arity(inputs.len()),
            "gate {self} evaluated with illegal arity {}",
            inputs.len()
        );
        match self {
            GateKind::Buf => inputs[0].read(),
            GateKind::Not => {
                let a = inputs[0].read();
                LogicWord {
                    value: a.known & !a.value,
                    known: a.known,
                    z: 0,
                }
            }
            GateKind::And => wide_and(inputs),
            GateKind::Or => wide_or(inputs),
            GateKind::Nand => wide_not(wide_and(inputs)),
            GateKind::Nor => wide_not(wide_or(inputs)),
            GateKind::Xor => wide_xor(inputs),
            GateKind::Xnor => wide_not(wide_xor(inputs)),
            GateKind::Mux2 => {
                let (in0, in1, sel) = (inputs[0].read(), inputs[1].read(), inputs[2].read());
                // Lanes where both branches agree on a known value: the
                // output is defined there even under an unknown select.
                let agree = in0.known & in1.known & !(in0.value ^ in1.value);
                let picked_known = (sel.value & in1.known) | (!sel.value & in0.known);
                let picked_value = (sel.value & in1.value) | (!sel.value & in0.value);
                let known = (sel.known & picked_known) | (!sel.known & agree);
                let value = (sel.known & picked_value) | (!sel.known & agree & in0.value);
                LogicWord {
                    value: value & known,
                    known,
                    z: 0,
                }
            }
            GateKind::Tbuf => {
                let (data, en) = (inputs[0].read(), inputs[1].read());
                // Driving lanes: enable known-one. Floating (Z) lanes:
                // enable known-zero. Unknown-enable lanes: X.
                let driving = en.known & en.value;
                LogicWord {
                    value: driving & data.value,
                    known: driving & data.known,
                    z: en.known & !en.value,
                }
            }
        }
    }

    /// Evaluates the gate on `64 × W`-lane blocks — [`GateKind::eval_wide`]
    /// generalized to [`LogicBlock`], chunk-for-chunk identical to it:
    /// `eval_block(bs).chunk(c) == eval_wide(&[bs[0].chunk(c), ...])` for
    /// every chunk. The per-chunk inner loops are plain `[u64; W]` bitwise
    /// sweeps, which the compiler auto-vectorizes at `W = 4` / `W = 8`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for the gate kind.
    pub fn eval_block<const W: usize>(self, inputs: &[LogicBlock<W>]) -> LogicBlock<W> {
        assert!(
            self.accepts_arity(inputs.len()),
            "gate {self} evaluated with illegal arity {}",
            inputs.len()
        );
        match self {
            GateKind::Buf => {
                let a = inputs[0];
                LogicBlock {
                    value: a.value,
                    known: a.known,
                    z: [0; W],
                }
            }
            GateKind::Not => block_not(inputs[0]),
            GateKind::And => block_and(inputs),
            GateKind::Or => block_or(inputs),
            GateKind::Nand => block_not(block_and(inputs)),
            GateKind::Nor => block_not(block_or(inputs)),
            GateKind::Xor => block_xor(inputs),
            GateKind::Xnor => block_not(block_xor(inputs)),
            GateKind::Mux2 => {
                let (in0, in1, sel) = (inputs[0], inputs[1], inputs[2]);
                let mut out = LogicBlock::ALL_X;
                for c in 0..W {
                    // Identical to the word-level Mux2 formula, per chunk.
                    let agree = in0.known[c] & in1.known[c] & !(in0.value[c] ^ in1.value[c]);
                    let picked_known =
                        (sel.value[c] & in1.known[c]) | (!sel.value[c] & in0.known[c]);
                    let picked_value =
                        (sel.value[c] & in1.value[c]) | (!sel.value[c] & in0.value[c]);
                    let known = (sel.known[c] & picked_known) | (!sel.known[c] & agree);
                    let value =
                        (sel.known[c] & picked_value) | (!sel.known[c] & agree & in0.value[c]);
                    out.value[c] = value & known;
                    out.known[c] = known;
                }
                out
            }
            GateKind::Tbuf => {
                let (data, en) = (inputs[0], inputs[1]);
                let mut out = LogicBlock::ALL_X;
                for c in 0..W {
                    let driving = en.known[c] & en.value[c];
                    out.value[c] = driving & data.value[c];
                    out.known[c] = driving & data.known[c];
                    out.z[c] = en.known[c] & !en.value[c];
                }
                out
            }
        }
    }
}

#[inline]
fn wide_not(a: LogicWord) -> LogicWord {
    LogicWord {
        value: a.known & !a.value,
        known: a.known,
        z: 0,
    }
}

#[inline]
fn wide_and(inputs: &[LogicWord]) -> LogicWord {
    let mut value = !0u64;
    let mut all_known = !0u64;
    let mut any_zero = 0u64;
    for w in inputs {
        let r = w.read();
        value &= r.value;
        all_known &= r.known;
        any_zero |= r.known & !r.value;
    }
    let known = all_known | any_zero;
    LogicWord {
        value: value & known,
        known,
        z: 0,
    }
}

#[inline]
fn wide_or(inputs: &[LogicWord]) -> LogicWord {
    let mut value = 0u64;
    let mut all_known = !0u64;
    for w in inputs {
        let r = w.read();
        value |= r.value;
        all_known &= r.known;
    }
    // Known where every input is known, or where any known one dominates.
    let known = all_known | value;
    LogicWord {
        value: value & known,
        known,
        z: 0,
    }
}

#[inline]
fn wide_xor(inputs: &[LogicWord]) -> LogicWord {
    let mut value = 0u64;
    let mut all_known = !0u64;
    for w in inputs {
        let r = w.read();
        value ^= r.value;
        all_known &= r.known;
    }
    LogicWord {
        value: value & all_known,
        known: all_known,
        z: 0,
    }
}

// Block-level Kleene helpers: the wide_* formulas with `[u64; W]`
// accumulators. Reading an input collapses Z to X, which only clears the
// `z` plane — `value`/`known` are used as-is (the invariants guarantee
// `value ⊆ known`), so no per-input normalization is needed.

#[inline]
fn block_not<const W: usize>(a: LogicBlock<W>) -> LogicBlock<W> {
    let mut out = LogicBlock::ALL_X;
    for c in 0..W {
        out.value[c] = a.known[c] & !a.value[c];
        out.known[c] = a.known[c];
    }
    out
}

#[inline]
fn block_and<const W: usize>(inputs: &[LogicBlock<W>]) -> LogicBlock<W> {
    let mut value = [!0u64; W];
    let mut all_known = [!0u64; W];
    let mut any_zero = [0u64; W];
    for b in inputs {
        for c in 0..W {
            value[c] &= b.value[c];
            all_known[c] &= b.known[c];
            any_zero[c] |= b.known[c] & !b.value[c];
        }
    }
    let mut out = LogicBlock::ALL_X;
    for c in 0..W {
        let known = all_known[c] | any_zero[c];
        out.value[c] = value[c] & known;
        out.known[c] = known;
    }
    out
}

#[inline]
fn block_or<const W: usize>(inputs: &[LogicBlock<W>]) -> LogicBlock<W> {
    let mut value = [0u64; W];
    let mut all_known = [!0u64; W];
    for b in inputs {
        for c in 0..W {
            value[c] |= b.value[c];
            all_known[c] &= b.known[c];
        }
    }
    let mut out = LogicBlock::ALL_X;
    for c in 0..W {
        // Known where every input is known, or a known one dominates.
        out.known[c] = all_known[c] | value[c];
        out.value[c] = value[c];
    }
    out
}

#[inline]
fn block_xor<const W: usize>(inputs: &[LogicBlock<W>]) -> LogicBlock<W> {
    let mut value = [0u64; W];
    let mut all_known = [!0u64; W];
    for b in inputs {
        for c in 0..W {
            value[c] ^= b.value[c];
            all_known[c] &= b.known[c];
        }
    }
    let mut out = LogicBlock::ALL_X;
    for c in 0..W {
        out.value[c] = value[c] & all_known[c];
        out.known[c] = all_known[c];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_round_trip() {
        for level in Logic::ALL {
            let mut w = LogicWord::default();
            w.set(17, level);
            assert_eq!(w.get(17), level);
            assert_eq!(w.get(16), Logic::X);
            assert_eq!(LogicWord::splat(level).get(63), level);
        }
    }

    #[test]
    fn from_lanes_matches_set() {
        let levels = [Logic::One, Logic::Z, Logic::X, Logic::Zero, Logic::One];
        let w = LogicWord::from_lanes(&levels);
        for (i, &l) in levels.iter().enumerate() {
            assert_eq!(w.get(i), l);
        }
        assert_eq!(w.get(levels.len()), Logic::X);
    }

    #[test]
    fn invariants_hold_after_normalization() {
        let w = LogicWord::from_planes(0xFFFF, 0x00FF, 0xF0F0);
        assert_eq!(w.ones() & !w.known(), 0, "value must be within known");
        assert_eq!(w.z_lanes() & w.known(), 0, "z must be outside known");
    }

    /// Exhaustive lane-for-lane equivalence of `eval_wide` against the
    /// scalar `eval`, for every gate kind over all 4^arity input
    /// combinations (packed so that one word covers the whole cross
    /// product).
    #[test]
    fn eval_wide_matches_scalar_exhaustively() {
        for kind in GateKind::ALL {
            for arity in [
                kind.fixed_arity().unwrap_or(2),
                kind.fixed_arity().unwrap_or(3),
            ] {
                let combos = 4usize.pow(arity as u32);
                assert!(combos <= 64, "arity {arity} does not fit one word");
                // Lane c encodes combination c: input j takes level
                // (c / 4^j) % 4.
                let words: Vec<LogicWord> = (0..arity)
                    .map(|j| {
                        let levels: Vec<Logic> = (0..combos)
                            .map(|c| Logic::ALL[(c / 4usize.pow(j as u32)) % 4])
                            .collect();
                        LogicWord::from_lanes(&levels)
                    })
                    .collect();
                let wide = kind.eval_wide(&words);
                for c in 0..combos {
                    let scalar_inputs: Vec<Logic> = (0..arity).map(|j| words[j].get(c)).collect();
                    let expected = kind.eval(&scalar_inputs);
                    assert_eq!(
                        wide.get(c),
                        expected,
                        "{kind} lane {c} inputs {scalar_inputs:?}"
                    );
                }
            }
        }
    }

    /// `eval_word` agrees with the scalar evaluator on fully-known lanes
    /// whose scalar output is also known (the documented two-valued
    /// projection).
    #[test]
    fn eval_word_matches_scalar_on_known_lanes() {
        for kind in GateKind::ALL {
            let arity = kind.fixed_arity().unwrap_or(3);
            let combos = 1usize << arity;
            let words: Vec<u64> = (0..arity)
                .map(|j| {
                    let mut w = 0u64;
                    for c in 0..combos {
                        if (c >> j) & 1 == 1 {
                            w |= 1 << c;
                        }
                    }
                    w
                })
                .collect();
            let out = kind.eval_word(&words);
            for c in 0..combos {
                let ins: Vec<Logic> = (0..arity).map(|j| Logic::from((c >> j) & 1 == 1)).collect();
                let scalar = kind.eval(&ins);
                if let Some(expected) = scalar.to_bool() {
                    assert_eq!(
                        (out >> c) & 1 == 1,
                        expected,
                        "{kind} lane {c} inputs {ins:?}"
                    );
                } else {
                    // Only a disabled Tbuf is non-two-valued on known
                    // inputs; the documented projection reads it as 0.
                    assert_eq!(kind, GateKind::Tbuf);
                    assert_eq!((out >> c) & 1, 0, "disabled Tbuf projects to 0");
                }
            }
        }
    }

    #[test]
    fn eval_wide_on_known_words_reduces_to_eval_word() {
        for kind in GateKind::ALL {
            let arity = kind.fixed_arity().unwrap_or(4);
            let bits: Vec<u64> = (0..arity)
                .map(|j| 0xA5A5_5A5A_DEAD_BEEFu64.rotate_left(7 * j as u32))
                .collect();
            let words: Vec<LogicWord> = bits.iter().map(|&b| LogicWord::from_bits(b)).collect();
            let wide = kind.eval_wide(&words);
            let word = kind.eval_word(&bits);
            // Wherever the four-valued result is known it must agree with
            // the two-valued projection.
            assert_eq!(wide.ones(), word & wide.known(), "{kind}");
        }
    }

    #[test]
    fn high_weight_sum_matches_scalar_sum() {
        let levels = [
            Logic::One,
            Logic::Zero,
            Logic::X,
            Logic::Z,
            Logic::One,
            Logic::X,
        ];
        let w = LogicWord::from_lanes(&levels);
        let scalar: f64 = levels.iter().map(|l| l.high_weight()).sum();
        assert_eq!(w.high_weight_sum(levels.len()), scalar);
        // Lanes beyond the count must not contribute.
        assert_eq!(w.high_weight_sum(0), 0.0);
    }

    #[test]
    fn lane_mask_edges() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63), (1u64 << 63) - 1);
        assert_eq!(lane_mask(64), !0);
    }

    /// `force_zero`/`force_one`/`flip` agree lane-for-lane with the scalar
    /// coercion semantics and preserve the plane invariants.
    #[test]
    fn fault_coercions_match_scalar_semantics() {
        let levels = [Logic::Zero, Logic::One, Logic::X, Logic::Z];
        let w = LogicWord::from_lanes(&levels);
        // Mask covers lanes 0 and 2 (a defined and an undefined lane) plus
        // lane 3 (Z); lane 1 must be untouched by every coercion.
        let mask = 0b1101u64;

        let fz = w.force_zero(mask);
        assert_eq!(
            [fz.get(0), fz.get(1), fz.get(2), fz.get(3)],
            [Logic::Zero, Logic::One, Logic::Zero, Logic::Zero]
        );

        let fo = w.force_one(mask);
        assert_eq!(
            [fo.get(0), fo.get(1), fo.get(2), fo.get(3)],
            [Logic::One, Logic::One, Logic::One, Logic::One]
        );

        let fl = w.flip(mask);
        assert_eq!(
            [fl.get(0), fl.get(1), fl.get(2), fl.get(3)],
            [Logic::One, Logic::One, Logic::X, Logic::X]
        );

        for coerced in [fz, fo, fl] {
            assert_eq!(coerced.ones() & !coerced.known(), 0, "value ⊆ known");
            assert_eq!(coerced.z_lanes() & coerced.known(), 0, "z ∩ known = ∅");
        }
    }

    #[test]
    fn fault_coercions_with_empty_mask_are_identity() {
        let w = LogicWord::from_lanes(&[Logic::One, Logic::Z, Logic::X, Logic::Zero]);
        assert_eq!(w.force_zero(0), w);
        assert_eq!(w.force_one(0), w);
        assert_eq!(w.flip(0), w);
    }

    #[test]
    fn write_lanes_unpacks() {
        let w = LogicWord::from_lanes(&[Logic::Zero, Logic::One, Logic::Z]);
        let mut out = [Logic::X; 3];
        w.write_lanes(3, &mut out);
        assert_eq!(out, [Logic::Zero, Logic::One, Logic::Z]);
    }

    /// Pseudo-random four-valued words for the block equivalence checks.
    fn scrambled_word(seed: u64) -> LogicWord {
        let mix = |s: u64, k: u64| {
            s.wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ k)
                .rotate_left(29)
                .wrapping_add(k)
        };
        LogicWord::from_planes(mix(seed, 1), mix(seed, 2), mix(seed, 3))
    }

    /// `eval_block` equals per-chunk `eval_wide` for every gate kind at
    /// W = 1, 4, and 8 — the bit-identity contract of the wide path.
    #[test]
    fn eval_block_matches_eval_wide_per_chunk() {
        fn check<const W: usize>() {
            for kind in GateKind::ALL {
                let arity = kind.fixed_arity().unwrap_or(3);
                let blocks: Vec<LogicBlock<W>> = (0..arity)
                    .map(|j| {
                        let mut b = LogicBlock::ALL_X;
                        for c in 0..W {
                            b.set_chunk(c, scrambled_word((j * 31 + c + 7) as u64));
                        }
                        b
                    })
                    .collect();
                let out = kind.eval_block(&blocks);
                for c in 0..W {
                    let words: Vec<LogicWord> = blocks.iter().map(|b| b.chunk(c)).collect();
                    assert_eq!(out.chunk(c), kind.eval_wide(&words), "{kind} chunk {c}");
                }
            }
        }
        check::<1>();
        check::<4>();
        check::<8>();
    }

    #[test]
    fn block_lane_round_trip_across_chunks() {
        let mut b = LogicBlock::<4>::ALL_X;
        for (i, level) in [Logic::One, Logic::Zero, Logic::Z, Logic::X]
            .iter()
            .enumerate()
        {
            b.set(63 + i * 64, *level);
            assert_eq!(b.get(63 + i * 64), *level);
        }
        assert_eq!(b.get(0), Logic::X);
        assert_eq!(LogicBlock::<4>::splat(Logic::One).get(255), Logic::One);
        assert_eq!(LogicBlock::<4>::LANES, 256);
    }

    /// Block fault coercions equal the per-chunk word coercions with the
    /// same 64-bit mask — the replication contract the fault overlay uses.
    #[test]
    fn block_coercions_replicate_word_coercions_per_chunk() {
        let mut b = LogicBlock::<4>::ALL_X;
        for c in 0..4 {
            b.set_chunk(c, scrambled_word(c as u64 + 11));
        }
        let mask = 0xF0F0_A5A5_0F0F_5A5Au64;
        for c in 0..4 {
            assert_eq!(b.force_zero(mask).chunk(c), b.chunk(c).force_zero(mask));
            assert_eq!(b.force_one(mask).chunk(c), b.chunk(c).force_one(mask));
            assert_eq!(b.flip(mask).chunk(c), b.chunk(c).flip(mask));
        }
    }

    /// Block high-weight accumulation equals summing the chunks' word
    /// sums, including a partial final chunk.
    #[test]
    fn block_high_weight_sum_matches_chunked_words() {
        let mut b = LogicBlock::<4>::ALL_X;
        for c in 0..4 {
            b.set_chunk(c, scrambled_word(c as u64 + 3));
        }
        for lanes in [0usize, 1, 64, 65, 130, 192, 255, 256] {
            let mut expected = 0.0;
            let mut left = lanes;
            for c in 0..4 {
                expected += b.chunk(c).high_weight_sum(left.min(64));
                left = left.saturating_sub(64);
            }
            assert_eq!(b.high_weight_sum(lanes), expected, "lanes {lanes}");
        }
    }
}
