//! The structural gate library and its combinational semantics.

use std::fmt;

use crate::Logic;

/// The kind of a combinational gate in a netlist.
///
/// The library is deliberately small — it is exactly the set of primitives
/// needed to build the paper's circuits at gate granularity:
///
/// * array / bypassing multipliers: [`And`], [`Xor`], [`Or`], inverters,
///   [`Mux2`] (the bypass multiplexers), [`Tbuf`] (the tri-state gates that
///   freeze a skipped full adder's inputs);
/// * the AHL judging blocks and hold logic: the same plus [`Nand`]/[`Nor`].
///
/// `And`, `Or`, `Nand`, `Nor`, `Xor` and `Xnor` are n-ary (arity ≥ 2 decided
/// by the netlist); the remaining kinds have fixed arity.
///
/// # Pin conventions
///
/// * [`Mux2`]: inputs `[in0, in1, sel]`, output `sel ? in1 : in0`.
/// * [`Tbuf`]: inputs `[data, enable]`, output `data` when `enable` is high,
///   [`Logic::Z`] when low. The event-driven simulator additionally gives
///   `Tbuf` *hold* semantics (a disabled tri-state does not propagate input
///   transitions), which is what makes bypassing save power.
///
/// [`And`]: GateKind::And
/// [`Xor`]: GateKind::Xor
/// [`Or`]: GateKind::Or
/// [`Mux2`]: GateKind::Mux2
/// [`Tbuf`]: GateKind::Tbuf
/// [`Nand`]: GateKind::Nand
/// [`Nor`]: GateKind::Nor
/// [`Xnor`]: GateKind::Xnor
///
/// # Example
///
/// ```
/// use agemul_logic::{GateKind, Logic};
///
/// // A three-input AND gate with a controlling zero.
/// let out = GateKind::And.eval(&[Logic::One, Logic::Zero, Logic::X]);
/// assert_eq!(out, Logic::Zero);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Non-inverting buffer (1 input).
    Buf,
    /// Inverter (1 input).
    Not,
    /// n-ary AND (≥ 2 inputs).
    And,
    /// n-ary OR (≥ 2 inputs).
    Or,
    /// n-ary NAND (≥ 2 inputs).
    Nand,
    /// n-ary NOR (≥ 2 inputs).
    Nor,
    /// n-ary XOR, i.e. odd parity (≥ 2 inputs).
    Xor,
    /// n-ary XNOR, i.e. even parity (≥ 2 inputs).
    Xnor,
    /// 2:1 multiplexer; inputs `[in0, in1, sel]`.
    Mux2,
    /// Tri-state buffer; inputs `[data, enable]`, output `Z` when disabled.
    Tbuf,
}

impl GateKind {
    /// Every gate kind, for table-driven tests and model exhaustiveness
    /// checks.
    pub const ALL: [GateKind; 10] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux2,
        GateKind::Tbuf,
    ];

    /// The exact arity of the gate, or `None` for the variadic kinds.
    #[inline]
    pub fn fixed_arity(self) -> Option<usize> {
        match self {
            GateKind::Buf | GateKind::Not => Some(1),
            GateKind::Mux2 => Some(3),
            GateKind::Tbuf => Some(2),
            _ => None,
        }
    }

    /// The minimum legal number of inputs.
    #[inline]
    pub fn min_arity(self) -> usize {
        self.fixed_arity().unwrap_or(2)
    }

    /// Returns `true` if `n` inputs is a legal arity for this gate kind.
    #[inline]
    pub fn accepts_arity(self, n: usize) -> bool {
        match self.fixed_arity() {
            Some(k) => n == k,
            None => n >= 2,
        }
    }

    /// Evaluates the gate on the given input levels.
    ///
    /// This is the single source of combinational truth for both simulators.
    /// Inputs at [`Logic::Z`] are read as unknown; outputs are therefore
    /// never `Z` except for a disabled [`GateKind::Tbuf`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for the gate kind (the
    /// netlist builder validates arity at construction, so a panic here
    /// indicates a corrupted netlist).
    pub fn eval(self, inputs: &[Logic]) -> Logic {
        assert!(
            self.accepts_arity(inputs.len()),
            "gate {self} evaluated with illegal arity {}",
            inputs.len()
        );
        match self {
            GateKind::Buf => inputs[0].read(),
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().copied().fold(Logic::One, Logic::and),
            GateKind::Or => inputs.iter().copied().fold(Logic::Zero, Logic::or),
            GateKind::Nand => !inputs.iter().copied().fold(Logic::One, Logic::and),
            GateKind::Nor => !inputs.iter().copied().fold(Logic::Zero, Logic::or),
            GateKind::Xor => inputs.iter().copied().fold(Logic::Zero, Logic::xor),
            GateKind::Xnor => !inputs.iter().copied().fold(Logic::Zero, Logic::xor),
            GateKind::Mux2 => {
                let (in0, in1, sel) = (inputs[0].read(), inputs[1].read(), inputs[2].read());
                match sel.to_bool() {
                    Some(false) => in0,
                    Some(true) => in1,
                    // Unknown select: the output is still defined when both
                    // branches agree on a known value.
                    None if in0 == in1 && in0.is_known() => in0,
                    None => Logic::X,
                }
            }
            GateKind::Tbuf => match inputs[1].read().to_bool() {
                Some(true) => inputs[0].read(),
                Some(false) => Logic::Z,
                None => Logic::X,
            },
        }
    }

    /// Returns `true` for the kinds whose first-order switching load is
    /// dominated by internal nodes rather than output capacitance; used by
    /// the power model to weight toggles.
    #[inline]
    pub fn is_complex(self) -> bool {
        matches!(self, GateKind::Xor | GateKind::Xnor | GateKind::Mux2)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Mux2 => "MUX2",
            GateKind::Tbuf => "TBUF",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: bool) -> Logic {
        Logic::from(v)
    }

    #[test]
    fn two_input_truth_tables() {
        for a in [false, true] {
            for bb in [false, true] {
                let ins = [b(a), b(bb)];
                assert_eq!(GateKind::And.eval(&ins), b(a & bb));
                assert_eq!(GateKind::Or.eval(&ins), b(a | bb));
                assert_eq!(GateKind::Nand.eval(&ins), b(!(a & bb)));
                assert_eq!(GateKind::Nor.eval(&ins), b(!(a | bb)));
                assert_eq!(GateKind::Xor.eval(&ins), b(a ^ bb));
                assert_eq!(GateKind::Xnor.eval(&ins), b(!(a ^ bb)));
            }
        }
    }

    #[test]
    fn variadic_gates() {
        let ins = [b(true), b(true), b(true), b(false)];
        assert_eq!(GateKind::And.eval(&ins), Logic::Zero);
        assert_eq!(GateKind::Or.eval(&ins), Logic::One);
        // XOR over 4 inputs = parity.
        assert_eq!(GateKind::Xor.eval(&ins), b(true ^ true ^ true ^ false));
    }

    #[test]
    fn inverter_and_buffer() {
        assert_eq!(GateKind::Not.eval(&[Logic::Zero]), Logic::One);
        assert_eq!(GateKind::Buf.eval(&[Logic::One]), Logic::One);
        assert_eq!(GateKind::Buf.eval(&[Logic::Z]), Logic::X);
    }

    #[test]
    fn mux_selects() {
        for in0 in [false, true] {
            for in1 in [false, true] {
                assert_eq!(GateKind::Mux2.eval(&[b(in0), b(in1), Logic::Zero]), b(in0));
                assert_eq!(GateKind::Mux2.eval(&[b(in0), b(in1), Logic::One]), b(in1));
            }
        }
    }

    #[test]
    fn mux_unknown_select_agreeing_branches() {
        assert_eq!(
            GateKind::Mux2.eval(&[Logic::One, Logic::One, Logic::X]),
            Logic::One
        );
        assert_eq!(
            GateKind::Mux2.eval(&[Logic::Zero, Logic::One, Logic::X]),
            Logic::X
        );
    }

    #[test]
    fn mux_masks_unknown_branch() {
        // The select is known, so an X on the unselected branch is invisible.
        // This property is what makes tri-state bypassing functionally safe.
        assert_eq!(
            GateKind::Mux2.eval(&[Logic::One, Logic::X, Logic::Zero]),
            Logic::One
        );
        assert_eq!(
            GateKind::Mux2.eval(&[Logic::X, Logic::Zero, Logic::One]),
            Logic::Zero
        );
    }

    #[test]
    fn tbuf_drives_or_floats() {
        assert_eq!(GateKind::Tbuf.eval(&[Logic::One, Logic::One]), Logic::One);
        assert_eq!(GateKind::Tbuf.eval(&[Logic::One, Logic::Zero]), Logic::Z);
        assert_eq!(GateKind::Tbuf.eval(&[Logic::Zero, Logic::X]), Logic::X);
    }

    #[test]
    fn arity_rules() {
        assert_eq!(GateKind::Not.fixed_arity(), Some(1));
        assert_eq!(GateKind::Mux2.fixed_arity(), Some(3));
        assert_eq!(GateKind::Tbuf.fixed_arity(), Some(2));
        assert_eq!(GateKind::And.fixed_arity(), None);
        assert!(GateKind::And.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(9));
        assert!(!GateKind::And.accepts_arity(1));
        assert!(!GateKind::Mux2.accepts_arity(2));
    }

    #[test]
    #[should_panic(expected = "illegal arity")]
    fn eval_rejects_bad_arity() {
        let _ = GateKind::Mux2.eval(&[Logic::One]);
    }

    #[test]
    fn unknown_inputs_do_not_leak_z() {
        // No combinational gate other than a disabled TBUF may emit Z.
        for kind in GateKind::ALL {
            if kind == GateKind::Tbuf {
                continue;
            }
            let n = kind.fixed_arity().unwrap_or(2);
            let ins = vec![Logic::Z; n];
            let out = kind.eval(&ins);
            assert_ne!(out, Logic::Z, "{kind} produced Z");
        }
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<String> = GateKind::ALL.iter().map(|k| k.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), GateKind::ALL.len());
    }
}
