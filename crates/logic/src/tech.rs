//! Technology constants for the 32 nm high-k/metal-gate process assumed by
//! the paper's evaluation.

/// A bundle of process/operating-point constants consumed by the BTI aging
/// model (`agemul-aging`) and the power model (`agemul-power`).
///
/// The paper adopts the 32 nm high-k predictive technology model (PTM) and
/// simulates at 125 °C; [`Technology::ptm_32nm_hk`] mirrors that setup.
/// `E0` and `Ea` are the reaction–diffusion constants the paper quotes
/// (1.9–2.0 MV/cm and 0.12 eV). The time exponent `n` of the RD framework is
/// 1/6 for H₂ diffusion, the commonly used value in the cited model
/// (refs. 24–26 of the paper).
///
/// # Example
///
/// ```
/// use agemul_logic::Technology;
///
/// let tech = Technology::ptm_32nm_hk();
/// assert!(tech.vdd_v > tech.vth0_v);
/// assert!((tech.temperature_k - 398.15).abs() < 1e-9); // 125 °C
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Technology {
    /// Supply voltage in volts.
    pub vdd_v: f64,
    /// Zero-time threshold-voltage magnitude in volts (|Vth| for pMOS,
    /// Vth for nMOS — the model treats them symmetrically because on
    /// 32 nm HKMG the PBTI effect is comparable to NBTI).
    pub vth0_v: f64,
    /// Equivalent oxide thickness in centimetres.
    pub tox_cm: f64,
    /// Gate-oxide capacitance per area, F/cm².
    pub cox_f_per_cm2: f64,
    /// Junction temperature in kelvin.
    pub temperature_k: f64,
    /// RD-model field-acceleration constant E₀, V/cm (paper: 1.9–2.0 MV/cm).
    pub e0_v_per_cm: f64,
    /// RD-model activation energy, eV (paper: 0.12 eV).
    pub ea_ev: f64,
    /// RD-model time exponent `n` (1/6 for H₂ diffusion).
    pub time_exponent: f64,
    /// Alpha-power-law velocity-saturation exponent used to translate
    /// ΔVth into gate-delay degradation (≈ 1.3 at 32 nm).
    pub alpha_power: f64,
}

impl Technology {
    /// Boltzmann constant in eV/K.
    pub const BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;

    /// The 32 nm high-k/metal-gate operating point used throughout the
    /// paper's experiments (125 °C junction temperature).
    pub fn ptm_32nm_hk() -> Self {
        Technology {
            vdd_v: 0.9,
            vth0_v: 0.30,
            // ~1.65 nm EOT expressed in cm.
            tox_cm: 1.65e-7,
            // εox / tox with εox = 3.9 ε0; ε0 = 8.854e-14 F/cm.
            cox_f_per_cm2: 3.9 * 8.854e-14 / 1.65e-7,
            temperature_k: 125.0 + 273.15,
            e0_v_per_cm: 2.0e6,
            ea_ev: 0.12,
            time_exponent: 1.0 / 6.0,
            alpha_power: 1.3,
        }
    }

    /// The gate overdrive voltage `Vgs − Vth` at time zero, in volts.
    #[inline]
    pub fn overdrive_v(&self) -> f64 {
        self.vdd_v - self.vth0_v
    }

    /// The vertical oxide field `Eox = (Vgs − Vth) / Tox`, in V/cm.
    #[inline]
    pub fn eox_v_per_cm(&self) -> f64 {
        self.overdrive_v() / self.tox_cm
    }

    /// `kT` at the operating temperature, in eV.
    #[inline]
    pub fn kt_ev(&self) -> f64 {
        Self::BOLTZMANN_EV_PER_K * self.temperature_k
    }

    /// Returns a copy at a different junction temperature (kelvin).
    ///
    /// # Panics
    ///
    /// Panics if `temperature_k` is not finite and positive.
    pub fn at_temperature(&self, temperature_k: f64) -> Self {
        assert!(
            temperature_k.is_finite() && temperature_k > 0.0,
            "temperature must be finite and positive, got {temperature_k}"
        );
        Technology {
            temperature_k,
            ..self.clone()
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::ptm_32nm_hk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operating_point_sanity() {
        let t = Technology::ptm_32nm_hk();
        assert!(t.vdd_v > 0.0 && t.vdd_v < 1.5);
        assert!(t.vth0_v > 0.0 && t.vth0_v < t.vdd_v);
        assert!(t.overdrive_v() > 0.0);
        assert!(t.cox_f_per_cm2 > 0.0);
    }

    #[test]
    fn field_is_mega_volts_per_cm() {
        let t = Technology::ptm_32nm_hk();
        let eox = t.eox_v_per_cm();
        // Oxide fields in scaled CMOS sit in the MV/cm range.
        assert!(eox > 1.0e6 && eox < 2.0e7, "Eox = {eox}");
    }

    #[test]
    fn kt_at_125c() {
        let t = Technology::ptm_32nm_hk();
        // kT at 398 K ≈ 0.0343 eV.
        assert!((t.kt_ev() - 0.0343).abs() < 0.001);
    }

    #[test]
    fn temperature_override() {
        let t = Technology::ptm_32nm_hk().at_temperature(300.0);
        assert_eq!(t.temperature_k, 300.0);
        assert_eq!(t.vdd_v, Technology::ptm_32nm_hk().vdd_v);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_absolute_zero() {
        let _ = Technology::ptm_32nm_hk().at_temperature(0.0);
    }

    #[test]
    fn time_exponent_is_rd_h2() {
        let t = Technology::default();
        assert!((t.time_exponent - 1.0 / 6.0).abs() < 1e-12);
    }
}
