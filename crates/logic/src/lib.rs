//! Four-valued digital logic, gate primitives, and technology models.
//!
//! `agemul-logic` is the lowest-level substrate of the `agemul` workspace. It
//! defines the vocabulary every other crate speaks:
//!
//! * [`Logic`] — a four-valued signal (`Zero`, `One`, `Z`, `X`) with the usual
//!   Kleene-style gate semantics, rich enough to model the tri-state
//!   bypassing networks used by the column- and row-bypassing multipliers of
//!   the paper *"Aging-Aware Reliable Multiplier Design With Adaptive Hold
//!   Logic"* (Lin, Cho, Yang).
//! * [`GateKind`] — the structural gate library (inverter, n-ary
//!   AND/OR/NAND/NOR, XOR/XNOR, 2:1 mux, tri-state buffer) together with a
//!   pure evaluation function used by both the functional and the
//!   event-driven timing simulators in `agemul-netlist`.
//! * [`DelayModel`] — per-gate-kind nominal propagation delays (in
//!   nanoseconds) with calibration helpers, standing in for the paper's
//!   SPICE/Nanosim timing backend.
//! * [`AreaModel`] — per-gate-kind transistor counts used to regenerate the
//!   paper's Fig. 25 area comparison.
//! * [`Technology`] — 32 nm high-k/metal-gate constants consumed by the BTI
//!   aging model in `agemul-aging`.
//!
//! # Example
//!
//! ```
//! use agemul_logic::{GateKind, Logic, DelayModel};
//!
//! // Evaluate a 2:1 mux selecting its `1` branch.
//! let out = GateKind::Mux2.eval(&[Logic::Zero, Logic::One, Logic::One]);
//! assert_eq!(out, Logic::One);
//!
//! // Nominal delays come from a calibratable table.
//! let delays = DelayModel::nominal();
//! assert!(delays.delay_ns(GateKind::Xor) > delays.delay_ns(GateKind::Nand));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod delay;
mod gate;
mod tech;
mod value;
mod word;

pub use area::{AreaModel, FlopKind};
pub use delay::DelayModel;
pub use gate::GateKind;
pub use tech::Technology;
pub use value::Logic;
pub use word::{lane_mask, LogicBlock, LogicWord};
