//! Property-based tests for the logic substrate.

use agemul_logic::{DelayModel, GateKind, Logic};
use proptest::prelude::*;

fn arb_logic() -> impl Strategy<Value = Logic> {
    prop_oneof![
        Just(Logic::Zero),
        Just(Logic::One),
        Just(Logic::Z),
        Just(Logic::X),
    ]
}

proptest! {
    /// De Morgan duality holds in four-valued logic.
    #[test]
    fn de_morgan(a in arb_logic(), b in arb_logic()) {
        prop_assert_eq!(!(a.and(b)), (!a).or(!b));
        prop_assert_eq!(!(a.or(b)), (!a).and(!b));
    }

    /// NAND/NOR/XNOR gates are the negations of their positive forms.
    #[test]
    fn negated_gate_duals(a in arb_logic(), b in arb_logic()) {
        let ins = [a, b];
        prop_assert_eq!(GateKind::Nand.eval(&ins), !GateKind::And.eval(&ins));
        prop_assert_eq!(GateKind::Nor.eval(&ins), !GateKind::Or.eval(&ins));
        prop_assert_eq!(GateKind::Xnor.eval(&ins), !GateKind::Xor.eval(&ins));
    }

    /// Gate evaluation is monotone in information: refining an X input to
    /// a definite value never flips an already-definite output to the
    /// opposite definite value (it may stay, or become definite).
    #[test]
    fn x_refinement_is_monotone(
        kind_sel in 0usize..8,
        a in arb_logic(),
        b in arb_logic(),
        refined in proptest::bool::ANY,
    ) {
        let kind = [
            GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor,
            GateKind::Xor, GateKind::Xnor, GateKind::Buf, GateKind::Not,
        ][kind_sel];
        let arity = kind.fixed_arity().unwrap_or(2);
        let base: Vec<Logic> = if arity == 1 { vec![a] } else { vec![a, b] };
        let out_before = kind.eval(&base);
        // Refine the first X (or Z) input, if any.
        let mut refined_ins = base.clone();
        if let Some(slot) = refined_ins.iter().position(|v| !v.is_known()) {
            refined_ins[slot] = Logic::from(refined);
        }
        let out_after = kind.eval(&refined_ins);
        if out_before.is_known() {
            prop_assert_eq!(out_before, out_after, "{:?} {:?}", base, refined_ins);
        }
    }

    /// The mux never invents values: its output is one of its data inputs
    /// (or X when undetermined).
    #[test]
    fn mux_output_is_a_data_input(
        in0 in arb_logic(),
        in1 in arb_logic(),
        sel in arb_logic(),
    ) {
        let out = GateKind::Mux2.eval(&[in0, in1, sel]);
        let candidates = [in0.read(), in1.read(), Logic::X];
        prop_assert!(candidates.contains(&out), "mux({in0},{in1},{sel}) = {out}");
    }

    /// Resolution is commutative, associative, and has Z as identity.
    #[test]
    fn resolution_algebra(a in arb_logic(), b in arb_logic(), c in arb_logic()) {
        prop_assert_eq!(a.resolve(b), b.resolve(a));
        prop_assert_eq!(a.resolve(Logic::Z), a);
        prop_assert_eq!(a.resolve(b).resolve(c), a.resolve(b.resolve(c)));
    }

    /// Delay model scaling composes multiplicatively.
    #[test]
    fn delay_scaling_composes(f1 in 0.1f64..10.0, f2 in 0.1f64..10.0) {
        let m = DelayModel::nominal();
        let double = m.scaled(f1).scaled(f2);
        let direct = m.scaled(f1 * f2);
        for kind in GateKind::ALL {
            prop_assert!((double.delay_ns(kind) - direct.delay_ns(kind)).abs() < 1e-12);
        }
    }

    /// Variadic AND/OR are order-insensitive.
    #[test]
    fn variadic_gates_are_commutative(values in proptest::collection::vec(arb_logic(), 2..6)) {
        let mut reversed = values.clone();
        reversed.reverse();
        for kind in [GateKind::And, GateKind::Or, GateKind::Xor] {
            prop_assert_eq!(kind.eval(&values), kind.eval(&reversed));
        }
    }
}
