//! Supervised fault campaigns: one case per fault plus the baseline.
//!
//! The batch path ([`Campaign::prepare`]) evaluates up to 64 logic faults
//! per bit-parallel sweep; the supervised path trades that throughput for
//! per-case isolation — each fault is one supervised case that can be
//! checkpointed, retried, degraded, or quarantined on its own. Each lane
//! of a batch sweep is exact, so the per-case evidence is bit-identical to
//! the chunked evidence and a fully-recovered supervised campaign replays
//! identically to an unsupervised one (pinned by the faults crate's
//! `per_case_preparation_assembles_into_an_identical_campaign` test).

use std::path::Path;

use agemul::MultiplierDesign;
use agemul_conformance::Json;
use agemul_faults::{prepare_baseline, prepare_fault, Campaign, FaultError, FaultSpec};

use crate::checkpoint::CaseStatus;
use crate::snapshot::{
    evidence_from_json, evidence_to_json, is_cancellation, profile_from_json, profile_to_json,
};
use crate::supervisor::{Attempt, CaseError, Resume, RunLedger, Supervisor, SupervisorConfig};
use crate::HarnessError;

/// FNV-1a 64-bit — the workspace's offline fingerprint hash.
pub(crate) fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 {
        0xCBF2_9CE4_8422_2325
    } else {
        seed
    };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fingerprints a campaign's work: design, workload, and fault list. Two
/// runs share a key exactly when every case's result is interchangeable.
pub fn campaign_run_key(
    design: &MultiplierDesign,
    pairs: &[(u64, u64)],
    faults: &[FaultSpec],
) -> String {
    let kind = design.circuit().kind();
    let mut h = fnv1a64(0, kind.label().as_bytes());
    h = fnv1a64(h, &(design.circuit().width() as u64).to_le_bytes());
    for &(a, b) in pairs {
        h = fnv1a64(h, &a.to_le_bytes());
        h = fnv1a64(h, &b.to_le_bytes());
    }
    for f in faults {
        h = fnv1a64(h, f.label().as_bytes());
    }
    format!(
        "campaign/{}{}x{}/{}cases/{h:016x}",
        kind.label(),
        design.circuit().width(),
        design.circuit().width(),
        faults.len() + 1,
    )
}

/// A supervised campaign run: the reassembled [`Campaign`] plus the raw
/// ledger (retries, engine downgrades, quarantine reasons).
#[derive(Clone, Debug)]
pub struct SupervisedCampaign {
    /// The campaign, ready for [`Campaign::run`] replays. Quarantined
    /// faults appear in its reports' `quarantined` ledger.
    pub campaign: Campaign,
    /// The full per-case execution record.
    pub ledger: RunLedger,
}

fn fault_case_error(e: FaultError) -> CaseError {
    if is_cancellation(&e) {
        CaseError::Cancelled
    } else {
        CaseError::Failed(e.to_string())
    }
}

/// Prepares a fault campaign under supervision.
///
/// Case 0 is the fault-free baseline profile; case `1 + i` is `faults[i]`.
/// The supervisor checkpoints completed cases to `checkpoint` (if given),
/// so a killed run resumed with [`Resume::Attempt`] or [`Resume::Require`]
/// recomputes only the missing cases and — because every serialized piece
/// of evidence round-trips bit-identically — produces a campaign whose
/// reports match an uninterrupted run exactly.
///
/// A quarantined *fault* is recorded in the campaign's quarantine ledger
/// and excluded from classification; a quarantined *baseline* is fatal
/// ([`HarnessError::PoisonedBaseline`]) since nothing can be classified
/// without it.
///
/// # Errors
///
/// Checkpoint failures, decode failures on recovered evidence, and the
/// poisoned-baseline case above.
pub fn run_campaign_supervised(
    design: &MultiplierDesign,
    pairs: &[(u64, u64)],
    faults: &[FaultSpec],
    config: &SupervisorConfig,
    checkpoint: Option<&Path>,
    resume: Resume,
) -> Result<SupervisedCampaign, HarnessError> {
    let mut labels = Vec::with_capacity(faults.len() + 1);
    labels.push("baseline".to_string());
    labels.extend(faults.iter().map(FaultSpec::label));

    let supervisor = Supervisor::new(
        campaign_run_key(design, pairs, faults),
        labels,
        config.clone(),
    );
    let worker = |attempt: &Attempt| -> Result<Json, CaseError> {
        let cancel = attempt.cancel.as_ref();
        if attempt.index == 0 {
            let profile = prepare_baseline(design, pairs, attempt.engine, cancel)
                .map_err(fault_case_error)?;
            Ok(profile_to_json(&profile))
        } else {
            let spec = &faults[attempt.index - 1];
            let evidence = prepare_fault(design, pairs, spec, attempt.engine, cancel)
                .map_err(fault_case_error)?;
            Ok(evidence_to_json(&evidence))
        }
    };
    let ledger = supervisor.run(&worker, checkpoint, resume)?;

    let baseline = match &ledger.records[0].status {
        CaseStatus::Done { value } => {
            profile_from_json(value).map_err(|reason| HarnessError::Decode {
                what: "baseline profile".into(),
                reason,
            })?
        }
        CaseStatus::Quarantined { reason } => {
            return Err(HarnessError::PoisonedBaseline {
                reason: reason.clone(),
            })
        }
    };
    let mut entries = Vec::with_capacity(faults.len());
    let mut quarantined = Vec::new();
    for (i, spec) in faults.iter().enumerate() {
        match &ledger.records[i + 1].status {
            CaseStatus::Done { value } => {
                let evidence =
                    evidence_from_json(value).map_err(|reason| HarnessError::Decode {
                        what: format!("evidence for fault {}", spec.label()),
                        reason,
                    })?;
                entries.push((*spec, evidence));
            }
            CaseStatus::Quarantined { .. } => quarantined.push(spec.label()),
        }
    }
    Ok(SupervisedCampaign {
        campaign: Campaign::assemble(baseline, entries, quarantined),
        ledger,
    })
}
