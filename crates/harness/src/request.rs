//! Supervised execution of a single service request.
//!
//! A resident server (`agemul-serve`) runs each incoming request under the
//! same protections as a batch case: panic isolation, a cooperative
//! deadline via [`CancelToken`](agemul::CancelToken), bounded retry, and a
//! final Level→Event degradation attempt. [`run_request_supervised`] is
//! the one-case specialization of [`Supervisor::run`] — no checkpoint (a
//! request is retried by its client, not resumed from disk), and the
//! outcome is the single [`CaseRecord`] instead of a ledger.

use agemul_conformance::Json;

use crate::checkpoint::CaseRecord;
use crate::supervisor::{Attempt, CaseError, Resume, Supervisor, SupervisorConfig};
use crate::HarnessError;

/// Runs one request under full supervision and returns its record.
///
/// `worker` is invoked with each [`Attempt`] (engine + deadline token
/// installed per `config`, exactly as in a batch run); a panicking or
/// budget-exhausted request comes back as
/// [`CaseStatus::Quarantined`](crate::CaseStatus) rather than as an `Err`,
/// so the caller can render a structured failure response instead of
/// dying. `label` names the request in quarantine reasons and run keys.
///
/// # Errors
///
/// Only internal supervisor failures (never produced by the request
/// itself); quarantines are reported inside the returned record.
///
/// # Example
///
/// ```
/// use agemul_conformance::Json;
/// use agemul_harness::{run_request_supervised, CaseStatus, SupervisorConfig};
///
/// let record = run_request_supervised(
///     "profile/CB16",
///     &SupervisorConfig::default(),
///     &|attempt| Ok(Json::Str(format!("{:?}", attempt.engine))),
/// )?;
/// assert!(matches!(record.status, CaseStatus::Done { .. }));
/// # Ok::<(), agemul_harness::HarnessError>(())
/// ```
pub fn run_request_supervised<W>(
    label: &str,
    config: &SupervisorConfig,
    worker: &W,
) -> Result<CaseRecord, HarnessError>
where
    W: Fn(&Attempt) -> Result<Json, CaseError> + Sync,
{
    let supervisor = Supervisor::new(
        format!("request/{label}"),
        vec![label.to_string()],
        config.clone(),
    );
    let ledger = supervisor.run(worker, None, Resume::Fresh)?;
    ledger
        .records
        .into_iter()
        .next()
        .ok_or(HarnessError::NoUsableCases)
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    use agemul::SimEngine;

    use super::*;
    use crate::CaseStatus;

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            retry_backoff: Duration::ZERO,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn successful_request_returns_done_record() {
        let record =
            run_request_supervised("ok", &cfg(), &|a: &Attempt| Ok(Json::UInt(a.index as u64)))
                .unwrap();
        assert_eq!(record.label, "ok");
        assert!(!record.degraded);
        assert_eq!(
            record.status,
            CaseStatus::Done {
                value: Json::UInt(0)
            }
        );
    }

    #[test]
    fn panicking_request_is_quarantined_not_propagated() {
        let record = run_request_supervised(
            "poison",
            &cfg(),
            &|_: &Attempt| -> Result<Json, CaseError> { panic!("request poison") },
        )
        .unwrap();
        assert!(
            matches!(&record.status, CaseStatus::Quarantined { reason } if reason.contains("request poison"))
        );
    }

    #[test]
    fn deadline_overrun_degrades_to_event_engine() {
        let attempts = AtomicU32::new(0);
        let record = run_request_supervised(
            "slow",
            &SupervisorConfig {
                max_retries: 1,
                ..cfg()
            },
            &|a: &Attempt| {
                attempts.fetch_add(1, Ordering::Relaxed);
                match a.engine {
                    SimEngine::Level => Err(CaseError::Cancelled),
                    SimEngine::Event => Ok(Json::Str("degraded".into())),
                }
            },
        )
        .unwrap();
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
        assert!(record.degraded);
        assert_eq!(record.engine, "event");
        assert!(matches!(record.status, CaseStatus::Done { .. }));
    }
}
