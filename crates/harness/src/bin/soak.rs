//! Kill/resume soak driver for `just soak-smoke`.
//!
//! Runs a small supervised fault campaign (ColumnBypass 4×4) with
//! per-case checkpointing, then writes the campaign report JSON to
//! `--out`. The smoke script runs this binary three ways — uninterrupted,
//! stalled-and-SIGKILLed, and `--resume`d from the survivor checkpoint —
//! and diffs the reports byte for byte.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use agemul::{EngineConfig, MultiplierDesign, PatternSet};
use agemul_circuits::MultiplierKind;
use agemul_faults::FaultSpec;
use agemul_harness::{run_campaign_supervised, Resume, SupervisorConfig};

const USAGE: &str = "usage: soak --ckpt <path> --out <path> [--resume] [--require] \
[--stall-ms N] [--deadline-ms N] [--max-retries N] [--poison] [--ops N] [--faults N]";

struct Opts {
    ckpt: PathBuf,
    out: PathBuf,
    resume: Resume,
    stall_ms: u64,
    deadline_ms: Option<u64>,
    max_retries: u32,
    poison: bool,
    ops: usize,
    faults: usize,
}

fn parse_args() -> Result<Opts, String> {
    let mut ckpt = None;
    let mut out = None;
    let mut resume = Resume::Fresh;
    let mut stall_ms = 0;
    let mut deadline_ms = None;
    let mut max_retries = 2;
    let mut poison = false;
    let mut ops = 24;
    let mut faults = 6;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--ckpt" => ckpt = Some(PathBuf::from(value("--ckpt")?)),
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--resume" => resume = Resume::Attempt,
            "--require" => resume = Resume::Require,
            "--stall-ms" => {
                stall_ms = value("--stall-ms")?
                    .parse()
                    .map_err(|e| format!("--stall-ms: {e}"))?;
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--max-retries" => {
                max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?;
            }
            "--poison" => poison = true,
            "--ops" => {
                ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?;
            }
            "--faults" => {
                faults = value("--faults")?
                    .parse()
                    .map_err(|e| format!("--faults: {e}"))?;
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(Opts {
        ckpt: ckpt.ok_or_else(|| format!("--ckpt is required\n{USAGE}"))?,
        out: out.ok_or_else(|| format!("--out is required\n{USAGE}"))?,
        resume,
        stall_ms,
        deadline_ms,
        max_retries,
        poison,
        ops,
        faults,
    })
}

fn run(opts: &Opts) -> Result<(), String> {
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 4)
        .map_err(|e| format!("design construction failed: {e}"))?;
    let patterns = PatternSet::uniform(4, opts.ops, 7);
    let mut faults = FaultSpec::sample(&design, opts.ops, opts.faults, 11);
    if opts.poison {
        faults.push(FaultSpec::PanicForTest);
    }

    let config = SupervisorConfig {
        deadline: opts.deadline_ms.map(Duration::from_millis),
        max_retries: opts.max_retries,
        // Per-case checkpoints: the tightest resume granularity, so a
        // SIGKILL anywhere loses at most one case of work.
        checkpoint_every: 1,
        stall_per_case: (opts.stall_ms > 0).then(|| Duration::from_millis(opts.stall_ms)),
        ..SupervisorConfig::default()
    };

    let supervised = run_campaign_supervised(
        &design,
        patterns.pairs(),
        &faults,
        &config,
        Some(&opts.ckpt),
        opts.resume,
    )
    .map_err(|e| format!("supervised campaign failed: {e}"))?;

    let report = supervised.campaign.run(&EngineConfig::adaptive(1.0, 2));
    std::fs::write(&opts.out, report.to_json())
        .map_err(|e| format!("writing {}: {e}", opts.out.display()))?;

    let quarantined = supervised.ledger.quarantined();
    let degraded = supervised.ledger.degraded();
    println!(
        "soak: {} cases done, {} quarantined {:?}, {} degraded {:?}, report -> {}",
        supervised.ledger.records.len() - quarantined.len(),
        quarantined.len(),
        quarantined,
        degraded.len(),
        degraded,
        opts.out.display(),
    );
    Ok(())
}

fn main() -> ExitCode {
    // Every panic in this process is a supervised case unwinding into the
    // quarantine ledger (which records the message); the default hook's
    // backtrace spew would only obscure the smoke-test output.
    std::panic::set_hook(Box::new(|_| {}));
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("soak: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("soak: {msg}");
            ExitCode::FAILURE
        }
    }
}
