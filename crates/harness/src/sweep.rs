//! Supervised period sweeps: one case per cycle period.

use std::path::Path;

use agemul::{run_engine, EngineConfig, PatternProfile, PeriodSweep};
use agemul_conformance::Json;

use crate::campaign::fnv1a64;
use crate::checkpoint::CaseStatus;
use crate::snapshot::{metrics_from_json, metrics_to_json};
use crate::supervisor::{Attempt, CaseError, Resume, RunLedger, Supervisor, SupervisorConfig};
use crate::HarnessError;

/// A supervised sweep: the reassembled [`PeriodSweep`] (quarantined
/// periods omitted) plus the raw ledger.
#[derive(Clone, Debug)]
pub struct SupervisedSweep {
    /// The sweep over every period whose replay completed.
    pub sweep: PeriodSweep,
    /// Periods whose case was quarantined, in grid order.
    pub quarantined_periods: Vec<f64>,
    /// The full per-case execution record.
    pub ledger: RunLedger,
}

fn sweep_run_key(profile: &PatternProfile, config: &EngineConfig, periods_ns: &[f64]) -> String {
    let mut h = fnv1a64(0, profile.kind().label().as_bytes());
    h = fnv1a64(h, &(profile.width() as u64).to_le_bytes());
    h = fnv1a64(h, &(profile.len() as u64).to_le_bytes());
    h = fnv1a64(h, &profile.max_delay_ns().to_bits().to_le_bytes());
    h = fnv1a64(h, &config.skip.to_le_bytes());
    h = fnv1a64(h, &[u8::from(config.adaptive)]);
    h = fnv1a64(h, &config.razor.window_factor.to_bits().to_le_bytes());
    for &p in periods_ns {
        h = fnv1a64(h, &p.to_bits().to_le_bytes());
    }
    format!("sweep/{}periods/{h:016x}", periods_ns.len())
}

/// [`PeriodSweep::run`] under supervision: each period's engine replay is
/// one case, checkpointed so an interrupted sweep resumes at the first
/// unreplayed period and reassembles (via [`PeriodSweep::from_points`])
/// bit-identically to an uninterrupted [`PeriodSweep::run`].
///
/// Replays are pure in-memory engine math (no gate-level simulation), so
/// deadlines rarely matter here; panic isolation and checkpointing are the
/// point — a paper-scale sweep grid is hours of replays at `--paper`
/// workload sizes.
///
/// # Errors
///
/// Checkpoint/decode failures, and [`HarnessError::NoUsableCases`] when
/// every period was quarantined (an empty sweep has no meaning).
///
/// # Panics
///
/// Panics if `periods_ns` is empty or contains a non-positive period,
/// matching [`PeriodSweep::run`]'s contract.
pub fn run_sweep_supervised(
    profile: &PatternProfile,
    config: &EngineConfig,
    periods_ns: &[f64],
    sup: &SupervisorConfig,
    checkpoint: Option<&Path>,
    resume: Resume,
) -> Result<SupervisedSweep, HarnessError> {
    assert!(!periods_ns.is_empty(), "sweep needs at least one period");
    for &p in periods_ns {
        assert!(
            p.is_finite() && p > 0.0,
            "period must be finite and positive, got {p}"
        );
    }
    let labels = periods_ns
        .iter()
        .map(|p| format!("period {p} ns"))
        .collect();
    let supervisor = Supervisor::new(
        sweep_run_key(profile, config, periods_ns),
        labels,
        sup.clone(),
    );
    let worker = |attempt: &Attempt| -> Result<Json, CaseError> {
        let cfg = EngineConfig {
            cycle_ns: periods_ns[attempt.index],
            ..*config
        };
        Ok(metrics_to_json(&run_engine(profile, &cfg)))
    };
    let ledger = supervisor.run(&worker, checkpoint, resume)?;

    let mut points = Vec::with_capacity(periods_ns.len());
    let mut quarantined_periods = Vec::new();
    for (i, &period) in periods_ns.iter().enumerate() {
        match &ledger.records[i].status {
            CaseStatus::Done { value } => {
                let metrics = metrics_from_json(value).map_err(|reason| HarnessError::Decode {
                    what: format!("metrics for period {period}"),
                    reason,
                })?;
                points.push((period, metrics));
            }
            CaseStatus::Quarantined { .. } => quarantined_periods.push(period),
        }
    }
    if points.is_empty() {
        return Err(HarnessError::NoUsableCases);
    }
    Ok(SupervisedSweep {
        sweep: PeriodSweep::from_points(points),
        quarantined_periods,
        ledger,
    })
}
