//! Supervised execution runtime for the workspace's long-running work.
//!
//! The paper's architecture keeps delivering correct products while the
//! hardware degrades for *years*; this crate applies the same philosophy
//! to the simulations themselves. Paper-scale fault campaigns, conformance
//! gates, and period sweeps run minutes to hours, and before this crate a
//! single panic, wedged case, or killed process discarded every completed
//! case. The [`Supervisor`] wraps any indexed list of cases in four
//! protections:
//!
//! * **crash-safe checkpointing** — completed-case ledgers are snapshotted
//!   as JSON ([`Checkpoint`]) with an atomic temp-file + rename write and a
//!   CRC32 self-check; a resumed run skips exactly the recorded cases, and
//!   the per-case evidence round-trips bit-identically, so a killed run
//!   resumed from its checkpoint matches an uninterrupted run;
//! * **panic isolation and quarantine** — each case executes under
//!   [`std::panic::catch_unwind`]; a panicking case lands in the poisoned-
//!   case ledger with its panic message instead of aborting the run;
//! * **deadline budgets with bounded retry** — an optional per-case
//!   wall-clock deadline is enforced cooperatively through
//!   [`CancelToken`](agemul::CancelToken), which the `EventSim`/`LevelSim`
//!   step loops and the campaign evaluation loops poll; an overrun case is
//!   retried with exponential backoff and a deterministic seed
//!   perturbation before quarantining;
//! * **graceful degradation** — after the retry budget is exhausted on the
//!   fast levelized kernel, one final attempt runs on the event-driven
//!   reference engine ([`SimEngine::Event`](agemul::SimEngine)), and the
//!   downgrade is recorded — the AHL's trade of latency for correctness,
//!   applied to the runtime.
//!
//! Adapters wire the supervisor over the tree's existing work units:
//! [`run_campaign_supervised`] (one case per fault plus the baseline,
//! reassembled with [`Campaign::assemble`](agemul_faults::Campaign::assemble)),
//! [`run_sweep_supervised`] (one case per period),
//! [`run_gate_supervised`] (one case per conformance seed), and
//! [`run_mc_supervised`] (one case per Monte Carlo process corner, with
//! the retimed plan-reuse profiler on primary attempts), and
//! [`run_fleet_supervised`] (one case per fleet policy scenario, with
//! engine degradation pinned byte-identical by `agemul-fleet`'s event
//! log). The `soak` binary drives a kill → resume → diff smoke test
//! (`just soak-smoke`).
//!
//! # Example
//!
//! ```no_run
//! use agemul::{EngineConfig, MultiplierDesign, PatternSet};
//! use agemul_circuits::MultiplierKind;
//! use agemul_faults::FaultSpec;
//! use agemul_harness::{run_campaign_supervised, Resume, SupervisorConfig};
//!
//! let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
//! let patterns = PatternSet::uniform(16, 2_000, 42);
//! let faults = FaultSpec::sample(&design, patterns.pairs().len(), 24, 7);
//!
//! let run = run_campaign_supervised(
//!     &design,
//!     patterns.pairs(),
//!     &faults,
//!     &SupervisorConfig::default(),
//!     Some(std::path::Path::new("campaign.ckpt.json")),
//!     Resume::Attempt,
//! )?;
//! println!("{}", run.campaign.run(&EngineConfig::adaptive(0.95, 7)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod campaign;
mod checkpoint;
mod conformance;
mod error;
mod fleet;
mod mc;
mod request;
mod snapshot;
mod supervisor;
mod sweep;

pub use campaign::{campaign_run_key, run_campaign_supervised, SupervisedCampaign};
pub use checkpoint::{crc32, CaseRecord, CaseStatus, Checkpoint, CheckpointError, SCHEMA};
pub use conformance::{run_gate_supervised, SupervisedGateOutcome};
pub use error::HarnessError;
pub use fleet::{fleet_run_key, run_fleet_supervised, FleetScenario, SupervisedFleet};
pub use mc::{corner_from_json, corner_to_json, mc_run_key, run_mc_supervised, SupervisedMc};
pub use request::run_request_supervised;
pub use snapshot::{
    evidence_from_json, evidence_to_json, is_cancellation, metrics_from_json, metrics_to_json,
    profile_from_json, profile_to_json,
};
pub use supervisor::{Attempt, CaseError, Resume, RunLedger, Supervisor, SupervisorConfig};
pub use sweep::{run_sweep_supervised, SupervisedSweep};
