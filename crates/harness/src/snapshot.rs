//! Typed evidence ⇄ JSON codecs for checkpointed work.
//!
//! Everything a supervised run checkpoints must round-trip
//! **bit-identically** — a resumed run replays recorded evidence instead
//! of recomputing it, and the resume-identity guarantee only holds if the
//! trip through JSON is lossless. The `agemul-conformance` [`Json`] model
//! was built for exactly this: `u64` is a distinct variant and floats
//! print in shortest round-trip form, so `f64::to_bits` survives.

use agemul::{PatternProfile, PatternRecord, RunMetrics};
use agemul_circuits::MultiplierKind;
use agemul_conformance::Json;
use agemul_faults::FaultEvidence;
use agemul_netlist::NetlistError;

fn kind_label(kind: MultiplierKind) -> &'static str {
    kind.label()
}

fn kind_from_label(label: &str) -> Result<MultiplierKind, String> {
    match label {
        "AM" => Ok(MultiplierKind::Array),
        "CB" => Ok(MultiplierKind::ColumnBypass),
        "RB" => Ok(MultiplierKind::RowBypass),
        "WAL" => Ok(MultiplierKind::Wallace),
        "BOOTH" => Ok(MultiplierKind::Booth),
        other => Err(format!("unknown multiplier kind label {other:?}")),
    }
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn get_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

/// Serializes a [`PatternProfile`] losslessly (operands as integers,
/// delays as shortest-round-trip floats, switching activity included).
pub fn profile_to_json(p: &PatternProfile) -> Json {
    let records = p
        .records()
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("a".into(), Json::UInt(r.a)),
                ("b".into(), Json::UInt(r.b)),
                ("zeros".into(), Json::UInt(u64::from(r.zeros))),
                ("delay_ns".into(), Json::Num(r.delay_ns)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("kind".into(), Json::Str(kind_label(p.kind()).into())),
        ("width".into(), Json::UInt(p.width() as u64)),
        ("avg_gate_toggles".into(), Json::Num(p.avg_gate_toggles())),
        ("records".into(), Json::Arr(records)),
    ])
}

/// Rebuilds a [`PatternProfile`] from [`profile_to_json`] output.
///
/// # Errors
///
/// A rendered description of the first missing or mistyped field.
pub fn profile_from_json(v: &Json) -> Result<PatternProfile, String> {
    let kind = kind_from_label(get_str(v, "kind")?)?;
    let width = get_u64(v, "width")? as usize;
    let toggles = get_f64(v, "avg_gate_toggles")?;
    let raw = v
        .get("records")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing records array".to_string())?;
    let mut records = Vec::with_capacity(raw.len());
    for r in raw {
        records.push(PatternRecord {
            a: get_u64(r, "a")?,
            b: get_u64(r, "b")?,
            zeros: u32::try_from(get_u64(r, "zeros")?)
                .map_err(|_| "zeros out of u32 range".to_string())?,
            delay_ns: get_f64(r, "delay_ns")?,
        });
    }
    Ok(PatternProfile::from_records_with_toggles(
        kind, width, records, toggles,
    ))
}

/// Serializes [`RunMetrics`] field by field.
pub fn metrics_to_json(m: &RunMetrics) -> Json {
    Json::Obj(vec![
        ("operations".into(), Json::UInt(m.operations)),
        ("cycles".into(), Json::UInt(m.cycles)),
        ("errors".into(), Json::UInt(m.errors)),
        ("one_cycle_ops".into(), Json::UInt(m.one_cycle_ops)),
        ("two_cycle_ops".into(), Json::UInt(m.two_cycle_ops)),
        ("undetected".into(), Json::UInt(m.undetected)),
        ("cycle_ns".into(), Json::Num(m.cycle_ns)),
        ("aged_mode_entered".into(), Json::Bool(m.aged_mode_entered)),
    ])
}

/// Rebuilds [`RunMetrics`] from [`metrics_to_json`] output.
///
/// # Errors
///
/// A rendered description of the first missing or mistyped field.
pub fn metrics_from_json(v: &Json) -> Result<RunMetrics, String> {
    Ok(RunMetrics {
        operations: get_u64(v, "operations")?,
        cycles: get_u64(v, "cycles")?,
        errors: get_u64(v, "errors")?,
        one_cycle_ops: get_u64(v, "one_cycle_ops")?,
        two_cycle_ops: get_u64(v, "two_cycle_ops")?,
        undetected: get_u64(v, "undetected")?,
        cycle_ns: get_f64(v, "cycle_ns")?,
        aged_mode_entered: v
            .get("aged_mode_entered")
            .and_then(Json::as_bool)
            .ok_or_else(|| "missing aged_mode_entered".to_string())?,
    })
}

/// Serializes one fault's [`FaultEvidence`].
pub fn evidence_to_json(ev: &FaultEvidence) -> Json {
    match ev {
        FaultEvidence::Logic {
            corrupted_ops,
            first_corrupted_op,
        } => Json::Obj(vec![
            ("family".into(), Json::Str("logic".into())),
            ("corrupted_ops".into(), Json::UInt(*corrupted_ops)),
            (
                "first_corrupted_op".into(),
                first_corrupted_op.map_or(Json::Null, Json::UInt),
            ),
        ]),
        FaultEvidence::Delay { profile } => Json::Obj(vec![
            ("family".into(), Json::Str("delay".into())),
            ("profile".into(), profile_to_json(profile)),
        ]),
    }
}

/// Rebuilds [`FaultEvidence`] from [`evidence_to_json`] output.
///
/// # Errors
///
/// A rendered description of the first missing or mistyped field.
pub fn evidence_from_json(v: &Json) -> Result<FaultEvidence, String> {
    match get_str(v, "family")? {
        "logic" => Ok(FaultEvidence::Logic {
            corrupted_ops: get_u64(v, "corrupted_ops")?,
            first_corrupted_op: match v.get("first_corrupted_op") {
                Some(Json::Null) | None => None,
                Some(x) => Some(
                    x.as_u64()
                        .ok_or_else(|| "non-integer first_corrupted_op".to_string())?,
                ),
            },
        }),
        "delay" => Ok(FaultEvidence::Delay {
            profile: profile_from_json(
                v.get("profile")
                    .ok_or_else(|| "delay evidence missing profile".to_string())?,
            )?,
        }),
        other => Err(format!("unknown evidence family {other:?}")),
    }
}

/// Whether `err`'s source chain bottoms out in
/// [`NetlistError::Cancelled`] — i.e. the failure is a cooperative
/// deadline firing, not a real fault. Supervised workers use this to remap
/// propagation errors onto [`CaseError::Cancelled`](crate::CaseError).
pub fn is_cancellation(err: &(dyn std::error::Error + 'static)) -> bool {
    let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(err);
    while let Some(e) = cur {
        if matches!(
            e.downcast_ref::<NetlistError>(),
            Some(NetlistError::Cancelled)
        ) {
            return true;
        }
        cur = e.source();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_round_trips_bit_identically() {
        let records = vec![
            PatternRecord {
                a: u64::MAX,
                b: 3,
                zeros: 12,
                delay_ns: 1.3200000000000003,
            },
            PatternRecord {
                a: 0,
                b: 0,
                zeros: 16,
                delay_ns: 0.0,
            },
        ];
        let p = PatternProfile::from_records_with_toggles(
            MultiplierKind::ColumnBypass,
            16,
            records,
            123.456789,
        );
        let j = profile_to_json(&p);
        // Through text, as a checkpoint would.
        let back = profile_from_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(back, p);
        assert_eq!(
            back.records()[0].delay_ns.to_bits(),
            p.records()[0].delay_ns.to_bits()
        );
        assert_eq!(
            back.avg_gate_toggles().to_bits(),
            p.avg_gate_toggles().to_bits()
        );
    }

    #[test]
    fn metrics_round_trip() {
        let m = RunMetrics {
            operations: 10_000,
            cycles: 13_337,
            errors: 41,
            one_cycle_ops: 7_001,
            two_cycle_ops: 2_999,
            undetected: 3,
            cycle_ns: 0.9500000000000001,
            aged_mode_entered: true,
        };
        let text = metrics_to_json(&m).to_string();
        let back = metrics_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.cycle_ns.to_bits(), m.cycle_ns.to_bits());
    }

    #[test]
    fn evidence_round_trips_both_families() {
        let logic = FaultEvidence::Logic {
            corrupted_ops: 7,
            first_corrupted_op: Some(2),
        };
        let never = FaultEvidence::Logic {
            corrupted_ops: 0,
            first_corrupted_op: None,
        };
        let delay = FaultEvidence::Delay {
            profile: PatternProfile::from_records(
                MultiplierKind::RowBypass,
                8,
                vec![PatternRecord {
                    a: 5,
                    b: 9,
                    zeros: 4,
                    delay_ns: std::f64::consts::FRAC_1_SQRT_2,
                }],
            ),
        };
        for ev in [logic, never, delay] {
            let text = evidence_to_json(&ev).to_string();
            let back = evidence_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn malformed_documents_are_described() {
        assert!(profile_from_json(&Json::Null).is_err());
        assert!(evidence_from_json(&Json::Obj(vec![(
            "family".into(),
            Json::Str("bogus".into())
        )]))
        .unwrap_err()
        .contains("bogus"));
        assert!(kind_from_label("XX").is_err());
    }

    #[test]
    fn cancellation_is_detected_through_error_chains() {
        use agemul::CoreError;
        use agemul_faults::FaultError;
        let nested = FaultError::from(CoreError::from(NetlistError::Cancelled));
        assert!(is_cancellation(&nested));
        let other = FaultError::InvalidSpec {
            label: "x".into(),
            reason: "y".into(),
        };
        assert!(!is_cancellation(&other));
    }
}
