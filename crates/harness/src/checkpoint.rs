//! Crash-safe completed-work ledgers.
//!
//! A [`Checkpoint`] is the on-disk snapshot of a supervised run: which
//! cases finished (with their serialized evidence) and which were
//! quarantined. Snapshots are written atomically — serialize to a sibling
//! temp file, then `rename(2)` over the target, so a crash mid-write
//! leaves either the previous snapshot or a stray temp file, never a torn
//! document — and carry a CRC32 over the payload so bit rot or truncation
//! that survives the JSON parser is still rejected.
//!
//! The document layout (schema [`SCHEMA`]):
//!
//! ```json
//! {"schema":"agemul-harness-ckpt/1","crc":<u32 of payload text>,
//!  "payload":{"run_key":"...","total":N,"entries":[
//!    {"index":0,"label":"baseline","engine":"level","retries":0,
//!     "degraded":false,"status":"done","value":{...}},
//!    {"index":3,"label":"poison","engine":"event","retries":2,
//!     "degraded":true,"status":"quarantined","reason":"panic: ..."}]}}
//! ```
//!
//! `run_key` fingerprints the work (design, workload, case list); a resume
//! against a checkpoint whose key differs is refused rather than silently
//! merging foreign results.

use std::fmt;
use std::path::Path;

use agemul_conformance::Json;

/// Schema tag every checkpoint document must carry.
pub const SCHEMA: &str = "agemul-harness-ckpt/1";

/// IEEE CRC32 (polynomial `0xEDB88320`, bit-reflected) of `bytes`.
///
/// Tiny bitwise implementation — checkpoints are kilobytes, so a lookup
/// table would be noise.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a checkpoint could not be saved, loaded, or trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (message rendered from the `std::io::Error`).
    Io {
        /// Rendered cause.
        message: String,
    },
    /// The file is not a well-formed checkpoint document (JSON syntax or
    /// missing/mistyped fields) — truncation usually lands here.
    Parse {
        /// What the parser or decoder rejected.
        message: String,
    },
    /// The document declares a schema this build does not understand.
    Schema {
        /// The schema string found in the file.
        found: String,
    },
    /// The payload's CRC32 does not match the recorded one — bit rot or a
    /// hand-edited file.
    Checksum {
        /// CRC recorded in the document.
        expected: u32,
        /// CRC recomputed over the payload.
        found: u32,
    },
    /// The checkpoint describes a different run (workload, design, or case
    /// list) than the one resuming.
    RunMismatch {
        /// The resuming run's key.
        expected: String,
        /// The key recorded in the file.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { message } => write!(f, "i/o failure: {message}"),
            CheckpointError::Parse { message } => write!(f, "malformed checkpoint: {message}"),
            CheckpointError::Schema { found } => {
                write!(
                    f,
                    "unsupported checkpoint schema {found:?} (want {SCHEMA:?})"
                )
            }
            CheckpointError::Checksum { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: recorded {expected:#010x}, computed {found:#010x}"
            ),
            CheckpointError::RunMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different run: resuming {expected:?}, file has {found:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One case's recorded outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum CaseStatus {
    /// The case completed; `value` is its serialized evidence.
    Done {
        /// Adapter-defined evidence (profile, metrics, fault evidence, …).
        value: Json,
    },
    /// The case was poisoned (panic) or exhausted its deadline/retry
    /// budget; it produced no evidence.
    Quarantined {
        /// Panic message or budget report.
        reason: String,
    },
}

/// One completed or quarantined case in the ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseRecord {
    /// 0-based case index within the run.
    pub index: usize,
    /// Human-readable case label (fault label, period, seed, …).
    pub label: String,
    /// Timing kernel the final attempt ran on (`"level"` or `"event"`).
    pub engine: String,
    /// Retries spent before the final attempt (0 = first try succeeded).
    pub retries: u32,
    /// Whether the case fell back to the event-driven reference engine.
    pub degraded: bool,
    /// The recorded outcome.
    pub status: CaseStatus,
}

/// A snapshot of a supervised run's completed work.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the work (design + workload + case list).
    pub run_key: String,
    /// Total number of cases in the run.
    pub total: usize,
    /// Completed/quarantined cases, in case-index order.
    pub entries: Vec<CaseRecord>,
}

impl Checkpoint {
    /// Serializes the snapshot to its on-disk document (schema + CRC +
    /// payload), as a single deterministic line of JSON.
    pub fn to_document(&self) -> String {
        let payload = self.payload_json();
        let crc = crc32(payload.to_string().as_bytes());
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("crc".into(), Json::UInt(u64::from(crc))),
            ("payload".into(), payload),
        ])
        .to_string()
    }

    fn payload_json(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|r| {
                let mut pairs = vec![
                    ("index".into(), Json::UInt(r.index as u64)),
                    ("label".into(), Json::Str(r.label.clone())),
                    ("engine".into(), Json::Str(r.engine.clone())),
                    ("retries".into(), Json::UInt(u64::from(r.retries))),
                    ("degraded".into(), Json::Bool(r.degraded)),
                ];
                match &r.status {
                    CaseStatus::Done { value } => {
                        pairs.push(("status".into(), Json::Str("done".into())));
                        pairs.push(("value".into(), value.clone()));
                    }
                    CaseStatus::Quarantined { reason } => {
                        pairs.push(("status".into(), Json::Str("quarantined".into())));
                        pairs.push(("reason".into(), Json::Str(reason.clone())));
                    }
                }
                Json::Obj(pairs)
            })
            .collect();
        Json::Obj(vec![
            ("run_key".into(), Json::Str(self.run_key.clone())),
            ("total".into(), Json::UInt(self.total as u64)),
            ("entries".into(), Json::Arr(entries)),
        ])
    }

    /// Parses a document produced by [`to_document`](Self::to_document),
    /// verifying schema and CRC.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] for syntax or structural problems,
    /// [`CheckpointError::Schema`] for unknown schemas, and
    /// [`CheckpointError::Checksum`] when the payload does not hash to the
    /// recorded CRC.
    pub fn from_document(text: &str) -> Result<Self, CheckpointError> {
        let doc = Json::parse(text).map_err(|message| CheckpointError::Parse { message })?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| parse_err("missing schema field"))?;
        if schema != SCHEMA {
            return Err(CheckpointError::Schema {
                found: schema.to_string(),
            });
        }
        let expected = doc
            .get("crc")
            .and_then(Json::as_u64)
            .and_then(|u| u32::try_from(u).ok())
            .ok_or_else(|| parse_err("missing or oversized crc field"))?;
        let payload = doc
            .get("payload")
            .ok_or_else(|| parse_err("missing payload field"))?;
        let found = crc32(payload.to_string().as_bytes());
        if found != expected {
            return Err(CheckpointError::Checksum { expected, found });
        }
        Self::decode_payload(payload)
    }

    fn decode_payload(payload: &Json) -> Result<Self, CheckpointError> {
        let run_key = payload
            .get("run_key")
            .and_then(Json::as_str)
            .ok_or_else(|| parse_err("payload missing run_key"))?
            .to_string();
        let total = payload
            .get("total")
            .and_then(Json::as_u64)
            .ok_or_else(|| parse_err("payload missing total"))? as usize;
        let raw = payload
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| parse_err("payload missing entries"))?;
        let mut entries = Vec::with_capacity(raw.len());
        for e in raw {
            let index = e
                .get("index")
                .and_then(Json::as_u64)
                .ok_or_else(|| parse_err("entry missing index"))? as usize;
            let label = e
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| parse_err("entry missing label"))?
                .to_string();
            let engine = e
                .get("engine")
                .and_then(Json::as_str)
                .ok_or_else(|| parse_err("entry missing engine"))?
                .to_string();
            let retries = e
                .get("retries")
                .and_then(Json::as_u64)
                .and_then(|u| u32::try_from(u).ok())
                .ok_or_else(|| parse_err("entry missing retries"))?;
            let degraded = e
                .get("degraded")
                .and_then(Json::as_bool)
                .ok_or_else(|| parse_err("entry missing degraded"))?;
            let status = match e.get("status").and_then(Json::as_str) {
                Some("done") => CaseStatus::Done {
                    value: e
                        .get("value")
                        .ok_or_else(|| parse_err("done entry missing value"))?
                        .clone(),
                },
                Some("quarantined") => CaseStatus::Quarantined {
                    reason: e
                        .get("reason")
                        .and_then(Json::as_str)
                        .ok_or_else(|| parse_err("quarantined entry missing reason"))?
                        .to_string(),
                },
                _ => return Err(parse_err("entry has unknown status")),
            };
            entries.push(CaseRecord {
                index,
                label,
                engine,
                retries,
                degraded,
                status,
            });
        }
        Ok(Checkpoint {
            run_key,
            total,
            entries,
        })
    }

    /// Writes the snapshot atomically: serialize to `<path>.tmp`, then
    /// rename over `path`. A reader never observes a torn document.
    ///
    /// Chaos failpoints: `ckpt/write_tmp` (ENOSPC-like failure, or a torn
    /// temp file — a prefix lands on disk and the write errors) and
    /// `ckpt/rename` (the commit rename fails, leaving the temp file). Both
    /// fault shapes leave the previous generation at `path` untouched.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the temp write or the rename fails.
    pub fn save_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let doc = self.to_document();
        if agemul_chaos::armed() {
            let ctx = path.to_string_lossy();
            if let Some(shot) = agemul_chaos::hit("ckpt/write_tmp", &ctx) {
                if shot.kind == agemul_chaos::FaultKind::Torn {
                    // ENOSPC mid-write: a strict prefix of the document
                    // reaches the temp file before the failure.
                    let cut = (shot.entropy as usize) % doc.len().max(1);
                    let _ = std::fs::write(&tmp, &doc.as_bytes()[..cut]);
                    return Err(CheckpointError::Io {
                        message: "chaos: injected torn temp write (ENOSPC mid-write)".into(),
                    });
                }
                return Err(CheckpointError::Io {
                    message: "chaos: injected temp-write failure (ENOSPC)".into(),
                });
            }
        }
        std::fs::write(&tmp, doc).map_err(io_err)?;
        if agemul_chaos::armed()
            && agemul_chaos::hit("ckpt/rename", &path.to_string_lossy()).is_some()
        {
            // The temp file stays behind, exactly as a real rename failure
            // would leave it; the previous generation at `path` survives.
            return Err(CheckpointError::Io {
                message: "chaos: injected rename failure".into(),
            });
        }
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Loads and verifies a snapshot; with `expected_run_key`, also refuses
    /// checkpoints recorded for a different run.
    ///
    /// Chaos failpoint: `ckpt/read` corrupts the read-back bytes (bit
    /// flip, truncation) or fails the read outright, modelling bit rot and
    /// media faults; the schema/CRC envelope must convert every such
    /// corruption into a typed refusal, never a silently-wrong snapshot.
    ///
    /// # Errors
    ///
    /// Every [`CheckpointError`] variant is reachable: I/O, parse, schema,
    /// checksum, and run-key mismatch.
    pub fn load(path: &Path, expected_run_key: Option<&str>) -> Result<Self, CheckpointError> {
        let mut bytes = std::fs::read(path).map_err(io_err)?;
        if agemul_chaos::armed() {
            if let Some(shot) = agemul_chaos::hit("ckpt/read", &path.to_string_lossy()) {
                match shot.kind {
                    agemul_chaos::FaultKind::BitFlip if !bytes.is_empty() => {
                        let bit = (shot.entropy as usize) % (bytes.len() * 8);
                        bytes[bit / 8] ^= 1 << (bit % 8);
                    }
                    agemul_chaos::FaultKind::Torn => {
                        let cut = (shot.entropy as usize) % (bytes.len() + 1);
                        bytes.truncate(cut);
                    }
                    _ => {
                        return Err(CheckpointError::Io {
                            message: "chaos: injected read failure".into(),
                        });
                    }
                }
            }
        }
        let text = String::from_utf8(bytes).map_err(|e| CheckpointError::Parse {
            message: format!("checkpoint is not UTF-8: {e}"),
        })?;
        let ck = Self::from_document(&text)?;
        if let Some(expected) = expected_run_key {
            if ck.run_key != expected {
                return Err(CheckpointError::RunMismatch {
                    expected: expected.to_string(),
                    found: ck.run_key,
                });
            }
        }
        Ok(ck)
    }
}

fn io_err(e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        message: e.to_string(),
    }
}

fn parse_err(message: &str) -> CheckpointError {
    CheckpointError::Parse {
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint() -> Checkpoint {
        Checkpoint {
            run_key: "cb4x4/42".into(),
            total: 3,
            entries: vec![
                CaseRecord {
                    index: 0,
                    label: "baseline".into(),
                    engine: "level".into(),
                    retries: 0,
                    degraded: false,
                    status: CaseStatus::Done {
                        value: Json::Obj(vec![("x".into(), Json::UInt(7))]),
                    },
                },
                CaseRecord {
                    index: 2,
                    label: "poison".into(),
                    engine: "event".into(),
                    retries: 2,
                    degraded: true,
                    status: CaseStatus::Quarantined {
                        reason: "panic: boom".into(),
                    },
                },
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn document_round_trips() {
        let ck = checkpoint();
        let doc = ck.to_document();
        assert_eq!(Checkpoint::from_document(&doc).unwrap(), ck);
        // Serialization is deterministic.
        assert_eq!(doc, checkpoint().to_document());
    }

    #[test]
    fn truncated_document_is_rejected() {
        let doc = checkpoint().to_document();
        for cut in [1, doc.len() / 2, doc.len() - 1] {
            let err = Checkpoint::from_document(&doc[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Parse { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flip_is_rejected_by_checksum() {
        let doc = checkpoint().to_document();
        // Flip a character inside the payload (the label "baseline").
        let flipped = doc.replace("baseline", "basemine");
        let err = Checkpoint::from_document(&flipped).unwrap_err();
        assert!(matches!(err, CheckpointError::Checksum { .. }), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = checkpoint()
            .to_document()
            .replace(SCHEMA, "agemul-harness-ckpt/999");
        let err = Checkpoint::from_document(&doc).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Schema { ref found } if found.ends_with("/999")),
            "{err}"
        );
    }

    #[test]
    fn save_is_atomic_and_load_checks_run_key() {
        let dir = std::env::temp_dir().join(format!("agemul-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        let ck = checkpoint();
        ck.save_atomic(&path).unwrap();
        // No temp residue, and the loaded snapshot matches.
        assert!(!path.with_extension("json.tmp").exists());
        assert_eq!(Checkpoint::load(&path, Some("cb4x4/42")).unwrap(), ck);
        let err = Checkpoint::load(&path, Some("other")).unwrap_err();
        assert!(matches!(err, CheckpointError::RunMismatch { .. }));
        let missing = Checkpoint::load(&dir.join("absent.json"), None).unwrap_err();
        assert!(matches!(missing, CheckpointError::Io { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
