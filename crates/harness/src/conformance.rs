//! Supervised conformance gates: one case per seeded differential check.

use std::path::Path;

use agemul_conformance::Json;
use agemul_conformance::{case_seed, check_case, repro_artifact, shrink_case, Case};

use crate::campaign::fnv1a64;
use crate::checkpoint::CaseStatus;
use crate::supervisor::{Attempt, CaseError, Resume, RunLedger, Supervisor, SupervisorConfig};
use crate::HarnessError;

/// The outcome of a supervised conformance gate.
///
/// Unlike [`agemul_conformance::GateOutcome`], divergent cases are carried
/// as their replayable JSON artifacts (the form a checkpoint preserves)
/// rather than live [`Case`] values — the artifact is the durable,
/// re-parseable repro.
#[derive(Clone, Debug)]
pub struct SupervisedGateOutcome {
    /// Number of seeded cases in the gate.
    pub cases: usize,
    /// `(seed, minimized repro artifact)` for every divergent case, in
    /// case order. Empty means full conformance over the executed cases.
    pub divergent: Vec<(u64, String)>,
    /// Seeds whose case was quarantined (panicked or overran its budget)
    /// and therefore was *not* checked, in case order.
    pub quarantined_seeds: Vec<u64>,
    /// The full per-case execution record.
    pub ledger: RunLedger,
}

impl SupervisedGateOutcome {
    /// `true` when every executed case passed and none was quarantined.
    pub fn is_clean(&self) -> bool {
        self.divergent.is_empty() && self.quarantined_seeds.is_empty()
    }
}

/// [`run_gate`](agemul_conformance::run_gate) under supervision: case `i`
/// replays seed [`case_seed`]`(base_seed, i)` — the exact coverage of the
/// unsupervised gate — but a panicking or wedged case is quarantined
/// instead of killing the whole gate, and completed cases survive a crash
/// through the checkpoint.
///
/// # Errors
///
/// Checkpoint and decode failures.
pub fn run_gate_supervised(
    base_seed: u64,
    cases: usize,
    sup: &SupervisorConfig,
    checkpoint: Option<&Path>,
    resume: Resume,
) -> Result<SupervisedGateOutcome, HarnessError> {
    let seeds: Vec<u64> = (0..cases).map(|i| case_seed(base_seed, i)).collect();
    let labels = seeds.iter().map(|s| format!("seed {s:#018x}")).collect();
    let mut h = fnv1a64(0, &base_seed.to_le_bytes());
    h = fnv1a64(h, &(cases as u64).to_le_bytes());
    let supervisor = Supervisor::new(format!("gate/{cases}cases/{h:016x}"), labels, sup.clone());

    let worker = |attempt: &Attempt| -> Result<Json, CaseError> {
        let seed = seeds[attempt.index];
        let case = Case::generate(seed);
        let divergences = check_case(&case).map_err(|e| {
            if crate::snapshot::is_cancellation(&e) {
                CaseError::Cancelled
            } else {
                CaseError::Failed(e.to_string())
            }
        })?;
        if divergences.is_empty() {
            return Ok(Json::Obj(vec![
                ("seed".into(), Json::UInt(seed)),
                ("divergent".into(), Json::Bool(false)),
            ]));
        }
        let mut still_fails = |c: &Case| check_case(c).map(|d| !d.is_empty()).unwrap_or(false);
        let minimized = shrink_case(&case, &mut still_fails);
        let divs = check_case(&minimized).map_err(|e| CaseError::Failed(e.to_string()))?;
        let artifact = repro_artifact(&minimized, &divs);
        Ok(Json::Obj(vec![
            ("seed".into(), Json::UInt(seed)),
            ("divergent".into(), Json::Bool(true)),
            ("artifact".into(), Json::Str(artifact)),
        ]))
    };
    let ledger = supervisor.run(&worker, checkpoint, resume)?;

    let mut divergent = Vec::new();
    let mut quarantined_seeds = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        match &ledger.records[i].status {
            CaseStatus::Done { value } => {
                if value.get("divergent").and_then(Json::as_bool) == Some(true) {
                    let artifact =
                        value
                            .get("artifact")
                            .and_then(Json::as_str)
                            .ok_or_else(|| HarnessError::Decode {
                                what: format!("divergent case seed {seed:#x}"),
                                reason: "missing artifact".into(),
                            })?;
                    divergent.push((seed, artifact.to_string()));
                }
            }
            CaseStatus::Quarantined { .. } => quarantined_seeds.push(seed),
        }
    }
    Ok(SupervisedGateOutcome {
        cases,
        divergent,
        quarantined_seeds,
        ledger,
    })
}
