//! The supervised case loop: catch panics, enforce deadlines, retry with
//! backoff, degrade, checkpoint.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::Duration;

use agemul::{CancelToken, SimEngine};
use agemul_conformance::Json;

use crate::checkpoint::{CaseRecord, CaseStatus, Checkpoint, CheckpointError};
use crate::HarnessError;

/// Supervision policy for one run.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Per-attempt wall-clock budget, enforced cooperatively through the
    /// attempt's [`CancelToken`]. `None` disables deadlines.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt (on the primary engine) before the
    /// degradation attempt. 0 means one try.
    pub max_retries: u32,
    /// Base backoff before retry `r` (sleeps `backoff << (r-1)`, capped at
    /// 1024×). Keep small; this exists to let transient load pass, not to
    /// pace a scheduler.
    pub retry_backoff: Duration,
    /// Whether to make one final attempt on the event-driven reference
    /// engine after the primary-engine budget is exhausted.
    pub degrade: bool,
    /// Cases to complete between checkpoint writes (min 1).
    pub checkpoint_every: usize,
    /// Artificial pause before every attempt — a soak-test knob that
    /// widens the kill window of `just soak-smoke`. Leave `None` outside
    /// tests.
    pub stall_per_case: Option<Duration>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            deadline: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            degrade: true,
            checkpoint_every: 8,
            stall_per_case: None,
        }
    }
}

/// How to treat an existing checkpoint at run start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resume {
    /// Ignore any checkpoint on disk and recompute every case (the
    /// checkpoint file, if configured, is overwritten as the run
    /// progresses).
    Fresh,
    /// Resume from the checkpoint if it loads cleanly and matches this
    /// run; otherwise silently restart from scratch. The default for
    /// unattended runs: a corrupt snapshot costs recomputation, never
    /// corrupt merged results.
    Attempt,
    /// Resume or fail: any load error (missing file included) aborts the
    /// run. For workflows where recomputation must be impossible.
    Require,
}

/// One attempt at one case, handed to the worker.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// 0-based case index.
    pub index: usize,
    /// Which retry this is (0 = first attempt).
    pub retry: u32,
    /// Deterministic seed perturbation for this attempt: 0 on the first
    /// attempt, a SplitMix64-mixed value of `(index, retry)` afterwards.
    /// Workers with stochastic elements may fold it into their seed so a
    /// retry explores a perturbed trajectory; deterministic workers ignore
    /// it.
    pub seed_bump: u64,
    /// The timing kernel this attempt should use. The supervisor hands out
    /// the fast levelized kernel until the retry budget is exhausted, then
    /// (if degradation is enabled) the event-driven reference engine.
    pub engine: SimEngine,
    /// Deadline token for this attempt, if the policy sets one. Workers
    /// thread it into the simulation layers ([`agemul::MultiplierDesign::
    /// profile_supervised`] and friends poll it cooperatively).
    pub cancel: Option<CancelToken>,
}

/// Why a worker gave up on an attempt (panics are caught separately).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaseError {
    /// The attempt's deadline fired (the worker observed
    /// [`NetlistError::Cancelled`](agemul_netlist::NetlistError::Cancelled)).
    Cancelled,
    /// Any other failure, rendered.
    Failed(String),
}

/// The completed ledger of a supervised run: every case accounted for, in
/// index order.
#[derive(Clone, Debug, PartialEq)]
pub struct RunLedger {
    /// The run fingerprint the ledger belongs to.
    pub run_key: String,
    /// One record per case, index order, no gaps.
    pub records: Vec<CaseRecord>,
}

impl RunLedger {
    /// Indices of quarantined cases, in order.
    pub fn quarantined(&self) -> Vec<usize> {
        self.records
            .iter()
            .filter(|r| matches!(r.status, CaseStatus::Quarantined { .. }))
            .map(|r| r.index)
            .collect()
    }

    /// Indices of cases that fell back to the reference engine, in order.
    pub fn degraded(&self) -> Vec<usize> {
        self.records
            .iter()
            .filter(|r| r.degraded)
            .map(|r| r.index)
            .collect()
    }
}

/// Runs an indexed list of cases under the crate's four protections.
/// See the crate docs for the model; construct with [`Supervisor::new`]
/// and execute with [`Supervisor::run`].
pub struct Supervisor {
    run_key: String,
    labels: Vec<String>,
    config: SupervisorConfig,
}

const LEVEL: &str = "level";
const EVENT: &str = "event";

fn engine_name(engine: SimEngine) -> &'static str {
    match engine {
        SimEngine::Level => LEVEL,
        SimEngine::Event => EVENT,
    }
}

/// SplitMix64 finalizer — the retry seed perturbation.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Supervisor {
    /// A supervisor for `labels.len()` cases identified by `run_key`.
    ///
    /// The key should fingerprint everything that determines the cases'
    /// results (design, workload, case list); resuming checks it against
    /// the checkpoint's recorded key.
    pub fn new(run_key: impl Into<String>, labels: Vec<String>, config: SupervisorConfig) -> Self {
        Supervisor {
            run_key: run_key.into(),
            labels,
            config,
        }
    }

    /// Executes every case not already recorded in the checkpoint.
    ///
    /// `worker` evaluates one [`Attempt`] to its serialized evidence. It
    /// runs under `catch_unwind`; a panic quarantines the case. Returning
    /// [`CaseError::Cancelled`] (deadline) or [`CaseError::Failed`]
    /// consumes a retry; once the budget — and, if enabled, the
    /// degradation attempt on the reference engine — is exhausted, the
    /// case is quarantined with the last failure reason.
    ///
    /// With the `parallel` feature, the pending cases of each checkpoint
    /// batch fan out across threads with dynamic work stealing (case
    /// costs are uneven — retries, degradation, Monte Carlo corners of
    /// different depth — so a static split would leave cores idle behind
    /// the slowest chunk); records are merged back by case index, so the
    /// checkpoint sequence and the final ledger are identical to a serial
    /// run's.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O failures, and any load failure under
    /// [`Resume::Require`].
    pub fn run<W>(
        &self,
        worker: &W,
        checkpoint: Option<&Path>,
        resume: Resume,
    ) -> Result<RunLedger, HarnessError>
    where
        W: Fn(&Attempt) -> Result<Json, CaseError> + Sync,
    {
        let total = self.labels.len();
        let mut slots: Vec<Option<CaseRecord>> = vec![None; total];

        if resume != Resume::Fresh {
            if let Some(path) = checkpoint {
                match Checkpoint::load(path, Some(&self.run_key)) {
                    Ok(ck) if ck.total == total => {
                        for rec in ck.entries {
                            let i = rec.index;
                            if i < total {
                                slots[i] = Some(rec);
                            }
                        }
                    }
                    Ok(ck) => {
                        if resume == Resume::Require {
                            return Err(CheckpointError::RunMismatch {
                                expected: format!("{} ({total} cases)", self.run_key),
                                found: format!("{} ({} cases)", ck.run_key, ck.total),
                            }
                            .into());
                        }
                    }
                    Err(e) => {
                        if resume == Resume::Require {
                            return Err(e.into());
                        }
                        // Resume::Attempt: a missing or untrustworthy
                        // snapshot restarts from scratch — never merge
                        // suspect results.
                    }
                }
            }
        }

        let pending: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();
        let batch_size = self.config.checkpoint_every.max(1);
        for batch in pending.chunks(batch_size) {
            let eval = |&index: &usize| self.run_case(index, worker);
            // Claim granularity 1: one supervised case (attempts, retries,
            // possibly a degradation pass) is plenty to amortize a claim.
            #[cfg(feature = "parallel")]
            let records = agemul_par::par_map_stealing(batch, 1, eval);
            #[cfg(not(feature = "parallel"))]
            let records: Vec<CaseRecord> = batch.iter().map(eval).collect();
            for rec in records {
                let i = rec.index;
                slots[i] = Some(rec);
            }
            if let Some(path) = checkpoint {
                self.snapshot(&slots).save_atomic(path)?;
            }
        }

        let mut records = Vec::with_capacity(total);
        for (index, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(rec) => records.push(rec),
                // Unreachable by construction (every pending index was
                // evaluated), but never panic inside the supervisor.
                None => {
                    return Err(HarnessError::Decode {
                        what: format!("case {index}"),
                        reason: "ledger slot left empty".into(),
                    })
                }
            }
        }
        Ok(RunLedger {
            run_key: self.run_key.clone(),
            records,
        })
    }

    fn snapshot(&self, slots: &[Option<CaseRecord>]) -> Checkpoint {
        Checkpoint {
            run_key: self.run_key.clone(),
            total: self.labels.len(),
            entries: slots.iter().flatten().cloned().collect(),
        }
    }

    fn run_case<W>(&self, index: usize, worker: &W) -> CaseRecord
    where
        W: Fn(&Attempt) -> Result<Json, CaseError> + Sync,
    {
        let cfg = &self.config;
        let mut plan: Vec<(u32, SimEngine, bool)> = (0..=cfg.max_retries)
            .map(|r| (r, SimEngine::Level, false))
            .collect();
        if cfg.degrade {
            plan.push((cfg.max_retries.saturating_add(1), SimEngine::Event, true));
        }

        let mut last_reason = String::from("no attempt ran");
        for (retry, engine, is_degraded) in plan {
            if retry > 0 {
                let shift = retry.saturating_sub(1).min(10);
                let backoff = cfg.retry_backoff.saturating_mul(1 << shift);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            if let Some(stall) = cfg.stall_per_case {
                if !stall.is_zero() {
                    std::thread::sleep(stall);
                }
            }
            let attempt = Attempt {
                index,
                retry,
                seed_bump: if retry == 0 {
                    0
                } else {
                    splitmix((index as u64) ^ (u64::from(retry) << 32))
                },
                engine,
                cancel: cfg.deadline.map(CancelToken::with_deadline),
            };
            match catch_unwind(AssertUnwindSafe(|| worker(&attempt))) {
                Ok(Ok(value)) => {
                    return CaseRecord {
                        index,
                        label: self.labels[index].clone(),
                        engine: engine_name(engine).into(),
                        retries: retry,
                        degraded: is_degraded,
                        status: CaseStatus::Done { value },
                    }
                }
                Ok(Err(CaseError::Cancelled)) => {
                    last_reason = format!(
                        "deadline exceeded on {} engine (attempt {})",
                        engine_name(engine),
                        retry + 1
                    );
                }
                Ok(Err(CaseError::Failed(msg))) => {
                    last_reason = format!(
                        "failed on {} engine (attempt {}): {msg}",
                        engine_name(engine),
                        retry + 1
                    );
                }
                Err(payload) => {
                    // A panic is deterministic poison: no retry, no
                    // degradation — quarantine immediately with the
                    // message.
                    return CaseRecord {
                        index,
                        label: self.labels[index].clone(),
                        engine: engine_name(engine).into(),
                        retries: retry,
                        degraded: is_degraded,
                        status: CaseStatus::Quarantined {
                            reason: format!("panic: {}", panic_message(payload)),
                        },
                    };
                }
            }
        }
        CaseRecord {
            index,
            label: self.labels[index].clone(),
            engine: if cfg.degrade { EVENT } else { LEVEL }.into(),
            retries: cfg.max_retries,
            degraded: cfg.degrade,
            status: CaseStatus::Quarantined {
                reason: last_reason,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            retry_backoff: Duration::ZERO,
            ..SupervisorConfig::default()
        }
    }

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("case{i}")).collect()
    }

    #[test]
    fn all_cases_complete_in_index_order() {
        let sup = Supervisor::new("k", labels(5), cfg());
        let ledger = sup
            .run(
                &|a: &Attempt| Ok(Json::UInt(a.index as u64 * 10)),
                None,
                Resume::Fresh,
            )
            .unwrap();
        assert_eq!(ledger.records.len(), 5);
        for (i, r) in ledger.records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.retries, 0);
            assert!(!r.degraded);
            assert_eq!(
                r.status,
                CaseStatus::Done {
                    value: Json::UInt(i as u64 * 10)
                }
            );
        }
        assert!(ledger.quarantined().is_empty());
    }

    #[test]
    fn panicking_case_is_quarantined_without_retry() {
        let sup = Supervisor::new("k", labels(3), cfg());
        let ledger = sup
            .run(
                &|a: &Attempt| {
                    if a.index == 1 {
                        panic!("deliberate poison");
                    }
                    Ok(Json::Null)
                },
                None,
                Resume::Fresh,
            )
            .unwrap();
        assert_eq!(ledger.quarantined(), vec![1]);
        let r = &ledger.records[1];
        assert_eq!(r.retries, 0, "panic must not consume retries");
        assert!(
            matches!(&r.status, CaseStatus::Quarantined { reason } if reason.contains("deliberate poison"))
        );
        // Neighbours completed.
        assert!(matches!(ledger.records[0].status, CaseStatus::Done { .. }));
        assert!(matches!(ledger.records[2].status, CaseStatus::Done { .. }));
    }

    #[test]
    fn failed_case_retries_then_degrades_to_event_engine() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let attempts = AtomicU32::new(0);
        let sup = Supervisor::new("k", labels(1), cfg());
        let ledger = sup
            .run(
                &|a: &Attempt| {
                    attempts.fetch_add(1, Ordering::Relaxed);
                    match a.engine {
                        SimEngine::Level => {
                            Err(CaseError::Failed("levelized kernel suspect".into()))
                        }
                        SimEngine::Event => Ok(Json::Str("via reference engine".into())),
                    }
                },
                None,
                Resume::Fresh,
            )
            .unwrap();
        // max_retries = 2 → three Level attempts, then the Event fallback.
        assert_eq!(attempts.load(Ordering::Relaxed), 4);
        let r = &ledger.records[0];
        assert!(r.degraded);
        assert_eq!(r.engine, "event");
        assert_eq!(ledger.degraded(), vec![0]);
        assert!(matches!(r.status, CaseStatus::Done { .. }));
    }

    #[test]
    fn exhausted_budget_quarantines_with_last_reason() {
        let sup = Supervisor::new(
            "k",
            labels(1),
            SupervisorConfig {
                max_retries: 1,
                degrade: false,
                ..cfg()
            },
        );
        let ledger = sup
            .run(
                &|_: &Attempt| Err(CaseError::Cancelled),
                None,
                Resume::Fresh,
            )
            .unwrap();
        let r = &ledger.records[0];
        assert!(
            matches!(&r.status, CaseStatus::Quarantined { reason } if reason.contains("deadline exceeded")),
            "{r:?}"
        );
        assert!(!r.degraded);
    }

    #[test]
    fn seed_bump_is_zero_first_then_deterministic() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        let sup = Supervisor::new(
            "k",
            labels(1),
            SupervisorConfig {
                max_retries: 2,
                degrade: false,
                ..cfg()
            },
        );
        let _ = sup.run(
            &|a: &Attempt| {
                seen.lock().unwrap().push(a.seed_bump);
                Err(CaseError::Failed("again".into()))
            },
            None,
            Resume::Fresh,
        );
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], 0);
        assert_ne!(seen[1], 0);
        assert_ne!(seen[1], seen[2]);
        // Re-running reproduces the same perturbations.
        // Case index 0, retry 1 → mix input is (0 ^ (1 << 32)).
        assert_eq!(seen[1], splitmix(1u64 << 32));
    }

    #[test]
    fn resume_skips_recorded_cases() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let dir = std::env::temp_dir().join(format!("agemul-sup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.json");

        let sup = Supervisor::new("k", labels(4), cfg());
        let first = sup
            .run(
                &|a: &Attempt| Ok(Json::UInt(a.index as u64)),
                Some(&path),
                Resume::Fresh,
            )
            .unwrap();

        // Truncate the checkpoint to two completed cases.
        let mut ck = Checkpoint::load(&path, Some("k")).unwrap();
        ck.entries.truncate(2);
        ck.save_atomic(&path).unwrap();

        let evaluated = AtomicU32::new(0);
        let resumed = sup
            .run(
                &|a: &Attempt| {
                    evaluated.fetch_add(1, Ordering::Relaxed);
                    Ok(Json::UInt(a.index as u64))
                },
                Some(&path),
                Resume::Require,
            )
            .unwrap();
        assert_eq!(
            evaluated.load(Ordering::Relaxed),
            2,
            "only missing cases run"
        );
        assert_eq!(resumed, first);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn require_fails_on_missing_or_foreign_checkpoint() {
        let dir = std::env::temp_dir().join(format!("agemul-supreq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.json");
        let ok = |a: &Attempt| Ok(Json::UInt(a.index as u64));

        let sup = Supervisor::new("k", labels(2), cfg());
        assert!(sup.run(&ok, Some(&path), Resume::Require).is_err());

        // A checkpoint from a different run key is refused under Require
        // but silently recomputed under Attempt.
        Supervisor::new("other", labels(2), cfg())
            .run(&ok, Some(&path), Resume::Fresh)
            .unwrap();
        assert!(matches!(
            sup.run(&ok, Some(&path), Resume::Require),
            Err(HarnessError::Checkpoint(
                CheckpointError::RunMismatch { .. }
            ))
        ));
        let ledger = sup.run(&ok, Some(&path), Resume::Attempt).unwrap();
        assert_eq!(ledger.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
