//! Supervised Monte Carlo yield campaigns: one case per process corner.
//!
//! A yield campaign is the longest-running workload in the tree — corners
//! × lifetime points × workload replays — and exactly the shape the
//! supervisor was built for: every corner is independent, corner costs
//! are uneven (a slow corner sensitizes longer paths), and losing a
//! half-finished overnight run to one panic is unacceptable. Each corner
//! is one supervised case: checkpointed by corner index, deadline-bounded
//! through the kernels' cooperative [`CancelToken`](agemul::CancelToken)
//! polling, retried with the fast retimed profiler, and — if the retry
//! budget runs out — degraded to [`MonteCarloCampaign::run_corner_from_scratch`]
//! on the event-driven reference engine, which computes byte-identical
//! outcomes without the plan-reuse machinery under suspicion.
//!
//! Corner evidence round-trips bit-identically through the checkpoint
//! JSON, so a killed campaign resumed with [`Resume::Attempt`] assembles
//! the same [`McReport`] an uninterrupted run would (`just mc-smoke`
//! exercises the kill → resume → diff loop).

use std::path::Path;

use agemul::{CornerOutcome, McReport, MonteCarloCampaign, SimEngine, YearOutcome};
use agemul_conformance::Json;

use crate::campaign::fnv1a64;
use crate::checkpoint::CaseStatus;
use crate::snapshot::is_cancellation;
use crate::supervisor::{Attempt, CaseError, Resume, RunLedger, Supervisor, SupervisorConfig};
use crate::HarnessError;

/// A supervised Monte Carlo run: the assembled report (quarantined
/// corners omitted) plus the raw ledger.
#[derive(Clone, Debug)]
pub struct SupervisedMc {
    /// The yield report over every corner whose evaluation completed.
    /// Yield fractions are over the *usable* corners; compare
    /// `report.corners.len()` against the configured corner count (or
    /// check `quarantined_corners`) before quoting them.
    pub report: McReport,
    /// Corner indices whose case was quarantined, ascending.
    pub quarantined_corners: Vec<usize>,
    /// The full per-case execution record.
    pub ledger: RunLedger,
}

/// Fingerprints a campaign's work: design, workload, and every
/// result-determining configuration knob. Two runs share a key exactly
/// when every corner's outcome is interchangeable.
pub fn mc_run_key(campaign: &MonteCarloCampaign<'_>) -> String {
    let design = campaign.design();
    let config = campaign.config();
    let kind = design.kind();
    let mut h = fnv1a64(0, kind.label().as_bytes());
    h = fnv1a64(h, &(design.width() as u64).to_le_bytes());
    for &(a, b) in campaign.pairs() {
        h = fnv1a64(h, &a.to_le_bytes());
        h = fnv1a64(h, &b.to_le_bytes());
    }
    h = fnv1a64(h, &(config.corners as u64).to_le_bytes());
    h = fnv1a64(h, &config.sigma.to_bits().to_le_bytes());
    h = fnv1a64(h, &config.seed.to_le_bytes());
    for &y in &config.years {
        h = fnv1a64(h, &y.to_bits().to_le_bytes());
    }
    h = fnv1a64(h, &config.cycle_ns.to_bits().to_le_bytes());
    h = fnv1a64(h, &config.skip.to_le_bytes());
    h = fnv1a64(h, &config.error_limit_per_10k.to_bits().to_le_bytes());
    format!(
        "mc/{}{}x{}/{}corners/{h:016x}",
        kind.label(),
        design.width(),
        design.width(),
        config.corners,
    )
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn get_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or non-boolean field {key:?}"))
}

/// Serializes one corner's evidence losslessly (floats as
/// shortest-round-trip, so `to_bits` survives the checkpoint).
pub fn corner_to_json(c: &CornerOutcome) -> Json {
    let outcomes = c
        .outcomes
        .iter()
        .map(|o| {
            Json::Obj(vec![
                ("years".into(), Json::Num(o.years)),
                ("max_delay_ns".into(), Json::Num(o.max_delay_ns)),
                ("baseline_pass".into(), Json::Bool(o.baseline_pass)),
                ("errors_per_10k".into(), Json::Num(o.errors_per_10k)),
                ("undetected".into(), Json::UInt(o.undetected)),
                ("aged_mode_entered".into(), Json::Bool(o.aged_mode_entered)),
                ("adaptive_pass".into(), Json::Bool(o.adaptive_pass)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("corner".into(), Json::UInt(c.corner as u64)),
        ("seed".into(), Json::UInt(c.seed)),
        ("outcomes".into(), Json::Arr(outcomes)),
    ])
}

/// Rebuilds a [`CornerOutcome`] from [`corner_to_json`] output.
///
/// # Errors
///
/// A rendered description of the first missing or mistyped field.
pub fn corner_from_json(v: &Json) -> Result<CornerOutcome, String> {
    let raw = v
        .get("outcomes")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing outcomes array".to_string())?;
    let mut outcomes = Vec::with_capacity(raw.len());
    for o in raw {
        outcomes.push(YearOutcome {
            years: get_f64(o, "years")?,
            max_delay_ns: get_f64(o, "max_delay_ns")?,
            baseline_pass: get_bool(o, "baseline_pass")?,
            errors_per_10k: get_f64(o, "errors_per_10k")?,
            undetected: get_u64(o, "undetected")?,
            aged_mode_entered: get_bool(o, "aged_mode_entered")?,
            adaptive_pass: get_bool(o, "adaptive_pass")?,
        });
    }
    Ok(CornerOutcome {
        corner: get_u64(v, "corner")? as usize,
        seed: get_u64(v, "seed")?,
        outcomes,
    })
}

fn mc_case_error(e: agemul::CoreError) -> CaseError {
    if is_cancellation(&e) {
        CaseError::Cancelled
    } else {
        CaseError::Failed(e.to_string())
    }
}

/// Runs a [`MonteCarloCampaign`] under supervision, one case per corner.
///
/// Primary attempts use the plan-reuse fast path (one retimed
/// [`CornerProfiler`](agemul::CornerProfiler) per case, shared across the
/// case's lifetime points); the degradation attempt rebuilds every
/// kernel from scratch on the event-driven reference engine. Both paths
/// compute byte-identical outcomes (pinned in `agemul`'s campaign
/// tests), so a ledger mixing engines still assembles one coherent
/// report.
///
/// Quarantined corners are omitted from the report and listed in
/// [`SupervisedMc::quarantined_corners`]; the whole run fails with
/// [`HarnessError::NoUsableCases`] only if *every* corner was
/// quarantined.
///
/// # Errors
///
/// Checkpoint I/O failures, decode failures on recovered evidence, and
/// the all-quarantined case above.
pub fn run_mc_supervised(
    campaign: &MonteCarloCampaign<'_>,
    config: &SupervisorConfig,
    checkpoint: Option<&Path>,
    resume: Resume,
) -> Result<SupervisedMc, HarnessError> {
    let corners = campaign.config().corners;
    let labels = (0..corners).map(|c| format!("corner {c}")).collect();
    let supervisor = Supervisor::new(mc_run_key(campaign), labels, config.clone());

    let worker = |attempt: &Attempt| -> Result<Json, CaseError> {
        let cancel = attempt.cancel.as_ref();
        let outcome = match attempt.engine {
            SimEngine::Level => {
                // One compiled kernel per case, retimed across the
                // lifetime axis. (Per-case construction keeps each case
                // hermetic for retry/quarantine; the plan reuse across
                // years is where the profiling time goes anyway.)
                let mut profiler = campaign.profiler().map_err(mc_case_error)?;
                campaign.run_corner(&mut profiler, attempt.index, cancel)
            }
            SimEngine::Event => {
                campaign.run_corner_from_scratch(attempt.index, SimEngine::Event, cancel)
            }
        }
        .map_err(mc_case_error)?;
        Ok(corner_to_json(&outcome))
    };
    let ledger = supervisor.run(&worker, checkpoint, resume)?;

    let mut usable = Vec::with_capacity(corners);
    let mut quarantined_corners = Vec::new();
    for (i, record) in ledger.records.iter().enumerate() {
        match &record.status {
            CaseStatus::Done { value } => {
                let outcome = corner_from_json(value).map_err(|reason| HarnessError::Decode {
                    what: format!("evidence for corner {i}"),
                    reason,
                })?;
                usable.push(outcome);
            }
            CaseStatus::Quarantined { .. } => quarantined_corners.push(i),
        }
    }
    if usable.is_empty() && corners > 0 {
        return Err(HarnessError::NoUsableCases);
    }
    Ok(SupervisedMc {
        report: McReport {
            years: campaign.config().years.clone(),
            cycle_ns: campaign.config().cycle_ns,
            corners: usable,
        },
        quarantined_corners,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use agemul::{McConfig, MultiplierDesign, PatternSet};
    use agemul_aging::BtiModel;
    use agemul_circuits::MultiplierKind;
    use agemul_logic::Technology;

    use super::*;
    use crate::checkpoint::Checkpoint;

    fn fixture<'a>(
        design: &'a MultiplierDesign,
        pairs: &[(u64, u64)],
        corners: usize,
    ) -> MonteCarloCampaign<'a> {
        let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
        let mut config = McConfig::new(corners, 0.08, 404);
        config.years = vec![0.0, 7.0];
        MonteCarloCampaign::new(design, pairs, &bti, config).unwrap()
    }

    fn sup() -> SupervisorConfig {
        SupervisorConfig {
            retry_backoff: std::time::Duration::ZERO,
            ..SupervisorConfig::default()
        }
    }

    /// The supervised run assembles exactly the unsupervised report.
    #[test]
    fn supervised_matches_unsupervised_run() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 16, 2);
        let mc = fixture(&d, patterns.pairs(), 5);
        let supervised = run_mc_supervised(&mc, &sup(), None, Resume::Fresh).unwrap();
        let unsupervised = mc.run(None).unwrap();
        assert_eq!(supervised.report, unsupervised);
        assert!(supervised.quarantined_corners.is_empty());
    }

    /// Corner evidence round-trips bit-identically through checkpoint
    /// text.
    #[test]
    fn corner_evidence_round_trips() {
        let d = MultiplierDesign::new(MultiplierKind::RowBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 12, 8);
        let mc = fixture(&d, patterns.pairs(), 1);
        let mut profiler = mc.profiler().unwrap();
        let outcome = mc.run_corner(&mut profiler, 0, None).unwrap();
        let text = corner_to_json(&outcome).to_string();
        let back = corner_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, outcome);
        for (a, b) in back.outcomes.iter().zip(&outcome.outcomes) {
            assert_eq!(a.max_delay_ns.to_bits(), b.max_delay_ns.to_bits());
            assert_eq!(a.errors_per_10k.to_bits(), b.errors_per_10k.to_bits());
        }
    }

    /// Kill → resume: a checkpoint truncated mid-run resumes to the same
    /// report, recomputing only the missing corners.
    #[test]
    fn truncated_checkpoint_resumes_identically() {
        let dir = std::env::temp_dir().join(format!("agemul-mc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mc.ckpt.json");

        let d = MultiplierDesign::new(MultiplierKind::Array, 8).unwrap();
        let patterns = PatternSet::uniform(8, 16, 6);
        let mc = fixture(&d, patterns.pairs(), 6);
        let first = run_mc_supervised(&mc, &sup(), Some(&path), Resume::Fresh).unwrap();

        let mut ck = Checkpoint::load(&path, Some(&mc_run_key(&mc))).unwrap();
        ck.entries.truncate(2);
        ck.save_atomic(&path).unwrap();

        let resumed = run_mc_supervised(&mc, &sup(), Some(&path), Resume::Require).unwrap();
        assert_eq!(resumed.report, first.report);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The run key pins every result-determining knob: nudging the seed
    /// or the workload changes it; a fresh identical campaign does not.
    #[test]
    fn run_key_tracks_campaign_identity() {
        let d = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let patterns = PatternSet::uniform(8, 10, 3);
        let a = fixture(&d, patterns.pairs(), 4);
        let b = fixture(&d, patterns.pairs(), 4);
        assert_eq!(mc_run_key(&a), mc_run_key(&b));

        let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
        let mut config = McConfig::new(4, 0.08, 405);
        config.years = vec![0.0, 7.0];
        let c = MonteCarloCampaign::new(&d, patterns.pairs(), &bti, config).unwrap();
        assert_ne!(mc_run_key(&a), mc_run_key(&c));
    }
}
