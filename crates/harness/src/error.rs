//! Harness-level errors.

use crate::checkpoint::CheckpointError;

/// Errors from supervised runs and their reconstruction paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HarnessError {
    /// A checkpoint could not be written, read, or trusted.
    Checkpoint(CheckpointError),
    /// A checkpointed value failed to decode back into its typed form —
    /// the snapshot was well-formed JSON (its CRC matched) but does not
    /// describe what the adapter expected.
    Decode {
        /// What was being decoded (e.g. `baseline profile`).
        what: String,
        /// Why decoding failed.
        reason: String,
    },
    /// The campaign baseline itself was quarantined; without it no fault
    /// can be classified, so the run cannot degrade around it.
    PoisonedBaseline {
        /// The quarantine reason (panic message or deadline report).
        reason: String,
    },
    /// Every case of the run was quarantined, leaving nothing to
    /// reconstruct (e.g. a sweep with no surviving period).
    NoUsableCases,
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            HarnessError::Decode { what, reason } => {
                write!(f, "cannot decode {what} from checkpoint: {reason}")
            }
            HarnessError::PoisonedBaseline { reason } => {
                write!(f, "baseline case was quarantined ({reason})")
            }
            HarnessError::NoUsableCases => {
                write!(f, "every case was quarantined; nothing to reconstruct")
            }
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for HarnessError {
    fn from(e: CheckpointError) -> Self {
        HarnessError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_failure() {
        let e = HarnessError::PoisonedBaseline {
            reason: "panic: boom".into(),
        };
        assert!(e.to_string().contains("baseline"));
        let e = HarnessError::Decode {
            what: "fault evidence".into(),
            reason: "missing key".into(),
        };
        assert!(e.to_string().contains("fault evidence"));
        assert!(HarnessError::NoUsableCases
            .to_string()
            .contains("quarantined"));
    }

    #[test]
    fn checkpoint_errors_chain_as_source() {
        let e = HarnessError::from(CheckpointError::Schema {
            found: "bogus/9".into(),
        });
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("checkpoint failure"));
    }
}
