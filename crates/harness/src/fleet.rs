//! Supervised fleet simulations: one case per policy scenario.
//!
//! A fleet study compares routing and retirement policies over the same
//! seeded datacenter — round-robin against least-loaded against
//! aging-aware, sometimes with a rejuvenation rotation stacked on top.
//! Each scenario is an independent multi-epoch discrete-event campaign
//! (the profiling sweeps dominate its cost), which is exactly the
//! supervisor's case shape: checkpointed by scenario index, deadline-
//! bounded through the kernels' cooperative cancellation, and — because
//! `agemul-fleet` pins its event log byte-identical across
//! [`SimEngine::Level`](agemul::SimEngine::Level) and
//! [`SimEngine::Event`](agemul::SimEngine::Event) — safely degradable to
//! the reference engine without perturbing the comparison.
//!
//! Scenario evidence is the [`FleetSummary`] JSON codec, which is
//! lossless, so a killed study resumed with [`Resume::Attempt`] assembles
//! exactly the summaries an uninterrupted run would.

use std::path::Path;

use agemul::MultiplierDesign;
use agemul_aging::BtiModel;
use agemul_conformance::Json;
use agemul_fleet::{FleetCampaign, FleetConfig, FleetSim, FleetSummary};

use crate::campaign::fnv1a64;
use crate::checkpoint::CaseStatus;
use crate::snapshot::is_cancellation;
use crate::supervisor::{Attempt, CaseError, Resume, RunLedger, Supervisor, SupervisorConfig};
use crate::HarnessError;

/// One named fleet scenario: a policy/configuration point in the study.
#[derive(Clone, Debug)]
pub struct FleetScenario {
    /// Human-readable scenario label (shows up in ledger case labels and
    /// result tables), e.g. `"aging-aware+rotation"`.
    pub label: String,
    /// The full campaign configuration for this scenario.
    pub config: FleetConfig,
}

impl FleetScenario {
    /// A labelled scenario.
    pub fn new(label: impl Into<String>, config: FleetConfig) -> Self {
        FleetScenario {
            label: label.into(),
            config,
        }
    }
}

/// A supervised fleet study: one summary per scenario that completed,
/// plus the raw ledger.
#[derive(Clone, Debug)]
pub struct SupervisedFleet {
    /// Completed scenarios as `(scenario index, summary)`, ascending.
    /// Quarantined scenarios are absent; check
    /// [`SupervisedFleet::quarantined_scenarios`] before treating the
    /// study as complete.
    pub summaries: Vec<(usize, FleetSummary)>,
    /// Scenario indices whose case was quarantined, ascending.
    pub quarantined_scenarios: Vec<usize>,
    /// The full per-case execution record.
    pub ledger: RunLedger,
}

impl SupervisedFleet {
    /// The summary for scenario `index`, if it completed.
    pub fn summary(&self, index: usize) -> Option<&FleetSummary> {
        self.summaries
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, s)| s)
    }
}

/// Fingerprints a fleet study: the design and every result-determining
/// knob of every scenario. Two runs share a key exactly when every
/// scenario's summary is interchangeable.
pub fn fleet_run_key(design: &MultiplierDesign, scenarios: &[FleetScenario]) -> String {
    let kind = design.kind();
    let mut h = fnv1a64(0, kind.label().as_bytes());
    h = fnv1a64(h, &(design.width() as u64).to_le_bytes());
    for s in scenarios {
        h = fnv1a64(h, s.label.as_bytes());
        let c = &s.config;
        for word in [
            c.nodes as u64,
            c.epochs as u64,
            c.ops_per_epoch as u64,
            c.seed,
            c.sigma.to_bits(),
            c.years_per_epoch.to_bits(),
            c.burn_in_years.to_bits(),
            c.trace.tag(),
            u64::from(c.skip),
            c.cycle_ns.to_bits(),
            c.guardband.to_bits(),
            c.quorum as u64,
            u64::from(c.error_penalty_cycles),
        ] {
            h = fnv1a64(h, &word.to_le_bytes());
        }
        for word in c.policy.fingerprint_words() {
            h = fnv1a64(h, &word.to_le_bytes());
        }
    }
    format!(
        "fleet/{}{}x{}/{}scenarios/{h:016x}",
        kind.label(),
        design.width(),
        design.width(),
        scenarios.len(),
    )
}

fn fleet_case_error(e: agemul::CoreError) -> CaseError {
    if is_cancellation(&e) {
        CaseError::Cancelled
    } else {
        CaseError::Failed(e.to_string())
    }
}

/// Runs a fleet policy study under supervision, one case per scenario.
///
/// Primary attempts use the levelized kernel with the plan-reuse corner
/// profiler inside `agemul-fleet`'s profile sweep; the degradation
/// attempt replays the scenario on the event-driven reference engine.
/// The fleet layer pins both engines to byte-identical event logs, so a
/// ledger mixing engines still assembles one coherent study.
///
/// Quarantined scenarios are omitted from the summaries and listed in
/// [`SupervisedFleet::quarantined_scenarios`]; the whole study fails with
/// [`HarnessError::NoUsableCases`] only if *every* scenario was
/// quarantined.
///
/// # Errors
///
/// Checkpoint I/O failures, decode failures on recovered evidence, and
/// the all-quarantined case above.
pub fn run_fleet_supervised(
    design: &MultiplierDesign,
    bti: &BtiModel,
    scenarios: &[FleetScenario],
    config: &SupervisorConfig,
    checkpoint: Option<&Path>,
    resume: Resume,
) -> Result<SupervisedFleet, HarnessError> {
    let labels = scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| format!("scenario {i} ({})", s.label))
        .collect();
    let supervisor = Supervisor::new(fleet_run_key(design, scenarios), labels, config.clone());

    let worker = |attempt: &Attempt| -> Result<Json, CaseError> {
        let scenario = &scenarios[attempt.index];
        let campaign =
            FleetCampaign::new(design, bti, scenario.config.clone()).map_err(fleet_case_error)?;
        let mut sim = FleetSim::new(&campaign);
        let summary = sim
            .run(attempt.engine, attempt.cancel.as_ref())
            .map_err(fleet_case_error)?;
        Ok(summary.to_json())
    };
    let ledger = supervisor.run(&worker, checkpoint, resume)?;

    let mut summaries = Vec::with_capacity(scenarios.len());
    let mut quarantined_scenarios = Vec::new();
    for (i, record) in ledger.records.iter().enumerate() {
        match &record.status {
            CaseStatus::Done { value } => {
                let summary =
                    FleetSummary::from_json(value).map_err(|reason| HarnessError::Decode {
                        what: format!("summary for scenario {i}"),
                        reason,
                    })?;
                summaries.push((i, summary));
            }
            CaseStatus::Quarantined { .. } => quarantined_scenarios.push(i),
        }
    }
    if summaries.is_empty() && !scenarios.is_empty() {
        return Err(HarnessError::NoUsableCases);
    }
    Ok(SupervisedFleet {
        summaries,
        quarantined_scenarios,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use agemul::SimEngine;
    use agemul_circuits::MultiplierKind;
    use agemul_fleet::{FleetPolicy, RoutingPolicy};
    use agemul_logic::Technology;

    use super::*;
    use crate::checkpoint::Checkpoint;

    fn bti() -> BtiModel {
        BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132)
    }

    fn scenarios() -> Vec<FleetScenario> {
        RoutingPolicy::ALL
            .into_iter()
            .map(|routing| {
                let mut config = FleetConfig::new(3, 2, 48, 0x0A6E_0005);
                config.policy = FleetPolicy::baseline(routing);
                config.years_per_epoch = 1.5;
                FleetScenario::new(config.policy.label(), config)
            })
            .collect()
    }

    fn sup() -> SupervisorConfig {
        SupervisorConfig {
            retry_backoff: std::time::Duration::ZERO,
            ..SupervisorConfig::default()
        }
    }

    /// The supervised study assembles exactly the unsupervised summaries.
    #[test]
    fn supervised_matches_unsupervised_run() {
        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let bti = bti();
        let scenarios = scenarios();
        let supervised =
            run_fleet_supervised(&design, &bti, &scenarios, &sup(), None, Resume::Fresh).unwrap();
        assert!(supervised.quarantined_scenarios.is_empty());
        assert_eq!(supervised.summaries.len(), scenarios.len());
        for (i, scenario) in scenarios.iter().enumerate() {
            let campaign = FleetCampaign::new(&design, &bti, scenario.config.clone()).unwrap();
            let mut sim = FleetSim::new(&campaign);
            let direct = sim.run(SimEngine::Level, None).unwrap();
            assert_eq!(supervised.summary(i), Some(&direct));
        }
    }

    /// Kill → resume: a checkpoint truncated mid-study resumes to the same
    /// summaries, recomputing only the missing scenarios.
    #[test]
    fn truncated_checkpoint_resumes_identically() {
        let dir = std::env::temp_dir().join(format!("agemul-fleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.ckpt.json");

        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let bti = bti();
        let scenarios = scenarios();
        let first = run_fleet_supervised(
            &design,
            &bti,
            &scenarios,
            &sup(),
            Some(&path),
            Resume::Fresh,
        )
        .unwrap();

        let key = fleet_run_key(&design, &scenarios);
        let mut ck = Checkpoint::load(&path, Some(&key)).unwrap();
        ck.entries.truncate(1);
        ck.save_atomic(&path).unwrap();

        let resumed = run_fleet_supervised(
            &design,
            &bti,
            &scenarios,
            &sup(),
            Some(&path),
            Resume::Require,
        )
        .unwrap();
        assert_eq!(resumed.summaries, first.summaries);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The run key pins every result-determining knob: nudging a seed or a
    /// policy changes it; an identical study does not.
    #[test]
    fn run_key_tracks_study_identity() {
        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();
        let a = scenarios();
        let b = scenarios();
        assert_eq!(fleet_run_key(&design, &a), fleet_run_key(&design, &b));

        let mut c = scenarios();
        c[0].config.seed ^= 1;
        assert_ne!(fleet_run_key(&design, &a), fleet_run_key(&design, &c));

        let mut d = scenarios();
        d[2].config.policy = FleetPolicy::with_rotation(RoutingPolicy::AgingAware, 2, 0.25);
        assert_ne!(fleet_run_key(&design, &a), fleet_run_key(&design, &d));
    }
}
