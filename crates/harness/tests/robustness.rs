//! Checkpoint robustness: damaged snapshots must never corrupt results.
//!
//! [`Resume::Require`] refuses every damaged form with a typed error;
//! [`Resume::Attempt`] silently restarts from scratch and still produces
//! the uninterrupted result — recomputation is the only acceptable cost of
//! a bad snapshot.

use std::path::{Path, PathBuf};

use agemul::{EngineConfig, MultiplierDesign, PatternSet};
use agemul_circuits::MultiplierKind;
use agemul_faults::FaultSpec;
use agemul_harness::{
    run_campaign_supervised, Checkpoint, CheckpointError, HarnessError, Resume, SupervisorConfig,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agemul-robust-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn design() -> MultiplierDesign {
    MultiplierDesign::new(MultiplierKind::ColumnBypass, 4).unwrap()
}

fn config() -> SupervisorConfig {
    SupervisorConfig {
        checkpoint_every: 1,
        retry_backoff: std::time::Duration::ZERO,
        ..SupervisorConfig::default()
    }
}

/// Writes a healthy checkpoint, returns its path and document text.
fn healthy_checkpoint(tag: &str) -> (PathBuf, String, String) {
    let d = design();
    let patterns = PatternSet::uniform(4, 10, 1);
    let faults = FaultSpec::sample(&d, 10, 2, 2);
    let path = temp_dir(tag).join("ckpt.json");
    run_campaign_supervised(
        &d,
        patterns.pairs(),
        &faults,
        &config(),
        Some(&path),
        Resume::Fresh,
    )
    .unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let run_key = Checkpoint::load(&path, None).unwrap().run_key;
    (path, text, run_key)
}

fn rerun(path: &Path, resume: Resume) -> Result<String, HarnessError> {
    let d = design();
    let patterns = PatternSet::uniform(4, 10, 1);
    let faults = FaultSpec::sample(&d, 10, 2, 2);
    run_campaign_supervised(&d, patterns.pairs(), &faults, &config(), Some(path), resume)
        .map(|s| s.campaign.run(&EngineConfig::adaptive(1.0, 2)).to_json())
}

#[test]
fn damaged_checkpoints_are_refused_under_require() {
    let (path, text, _) = healthy_checkpoint("require");
    let reference = rerun(&path, Resume::Require).unwrap();

    // Truncation (torn write survivor) → Parse.
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    assert!(matches!(
        rerun(&path, Resume::Require),
        Err(HarnessError::Checkpoint(CheckpointError::Parse { .. }))
    ));

    // Single-character corruption that still parses → Checksum.
    std::fs::write(&path, text.replace("baseline", "basemine")).unwrap();
    assert!(matches!(
        rerun(&path, Resume::Require),
        Err(HarnessError::Checkpoint(CheckpointError::Checksum { .. }))
    ));

    // Unknown schema → Schema.
    std::fs::write(
        &path,
        text.replace("agemul-harness-ckpt/1", "agemul-harness-ckpt/999"),
    )
    .unwrap();
    assert!(matches!(
        rerun(&path, Resume::Require),
        Err(HarnessError::Checkpoint(CheckpointError::Schema { .. }))
    ));

    // Missing file → Io.
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(
        rerun(&path, Resume::Require),
        Err(HarnessError::Checkpoint(CheckpointError::Io { .. }))
    ));

    // After all that, a fresh run still reproduces the reference.
    assert_eq!(rerun(&path, Resume::Fresh).unwrap(), reference);
}

#[test]
fn attempt_mode_restarts_cleanly_from_every_damaged_form() {
    let (path, text, _) = healthy_checkpoint("attempt");
    let reference = rerun(&path, Resume::Fresh).unwrap();

    for (name, damaged) in [
        ("truncated", text[..text.len() / 3].to_string()),
        ("bit-flipped", text.replace("baseline", "basemine")),
        (
            "wrong-schema",
            text.replace("agemul-harness-ckpt/1", "nope/0"),
        ),
        ("not-json", "}{ definitely not json".to_string()),
    ] {
        std::fs::write(&path, &damaged).unwrap();
        let report = rerun(&path, Resume::Attempt).unwrap();
        assert_eq!(report, reference, "damage mode: {name}");
        // The damaged file was overwritten with a healthy checkpoint.
        Checkpoint::load(&path, None).unwrap();
    }
}

#[test]
fn checkpoint_from_a_different_workload_is_not_merged() {
    let (path, _, run_key) = healthy_checkpoint("foreign");

    // Same file, different workload: keys differ → Require refuses…
    let d = design();
    let other = PatternSet::uniform(4, 10, 999);
    let faults = FaultSpec::sample(&d, 10, 2, 2);
    let err = run_campaign_supervised(
        &d,
        other.pairs(),
        &faults,
        &config(),
        Some(&path),
        Resume::Require,
    )
    .unwrap_err();
    match err {
        HarnessError::Checkpoint(CheckpointError::RunMismatch { found, .. }) => {
            assert_eq!(found, run_key);
        }
        other => panic!("expected RunMismatch, got {other}"),
    }

    // …and Attempt recomputes rather than merging foreign evidence.
    let supervised = run_campaign_supervised(
        &d,
        other.pairs(),
        &faults,
        &config(),
        Some(&path),
        Resume::Attempt,
    )
    .unwrap();
    assert!(supervised.ledger.quarantined().is_empty());
    // The checkpoint now belongs to the new run.
    assert_ne!(Checkpoint::load(&path, None).unwrap().run_key, run_key);
}
