//! Resume identity: a supervised run interrupted at any point and resumed
//! from its checkpoint produces results **bit-identical** to an
//! uninterrupted run — the tentpole guarantee of the harness.
//!
//! The tests simulate the interruption by truncating the checkpoint file
//! (exactly what a SIGKILL between snapshot writes leaves behind) and
//! resuming with [`Resume::Require`], then compare rendered reports byte
//! for byte. `just soak-smoke` repeats the experiment with a real SIGKILL
//! against the `soak` binary.

use std::path::PathBuf;

use agemul::{EngineConfig, MultiplierDesign, PatternSet, PeriodSweep};
use agemul_circuits::MultiplierKind;
use agemul_faults::{Campaign, FaultSpec};
use agemul_harness::{
    run_campaign_supervised, run_sweep_supervised, Checkpoint, Resume, SupervisorConfig,
};
use proptest::prelude::*;

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agemul-resume-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("ckpt.json")
}

fn design() -> MultiplierDesign {
    MultiplierDesign::new(MultiplierKind::ColumnBypass, 4).unwrap()
}

fn config() -> SupervisorConfig {
    SupervisorConfig {
        checkpoint_every: 1,
        retry_backoff: std::time::Duration::ZERO,
        ..SupervisorConfig::default()
    }
}

#[test]
fn supervised_campaign_matches_unsupervised_batch_path() {
    let d = design();
    let patterns = PatternSet::uniform(4, 24, 7);
    let faults = FaultSpec::sample(&d, 24, 5, 11);

    let batch = Campaign::prepare(&d, patterns.pairs(), &faults).unwrap();
    let supervised = run_campaign_supervised(
        &d,
        patterns.pairs(),
        &faults,
        &config(),
        None,
        Resume::Fresh,
    )
    .unwrap();

    let cfg = EngineConfig::adaptive(1.0, 2);
    assert_eq!(
        supervised.campaign.run(&cfg).to_json(),
        batch.run(&cfg).to_json(),
        "per-case supervised evidence must be bit-identical to the 64-lane batch path"
    );
}

#[test]
fn campaign_resumed_from_truncated_checkpoint_is_bit_identical() {
    let d = design();
    let patterns = PatternSet::uniform(4, 20, 3);
    let faults = FaultSpec::sample(&d, 20, 6, 5);
    let cfg = EngineConfig::adaptive(1.0, 2);

    let path = temp_path("campaign");
    let full = run_campaign_supervised(
        &d,
        patterns.pairs(),
        &faults,
        &config(),
        Some(&path),
        Resume::Fresh,
    )
    .unwrap();
    let full_json = full.campaign.run(&cfg).to_json();

    // Interrupt at every possible point: 0 completed cases .. all-but-one.
    for survivors in 0..full.ledger.records.len() {
        let mut ck = Checkpoint::load(&path, None).unwrap();
        let run_key = ck.run_key.clone();
        ck.entries.truncate(survivors);
        let cut = temp_path(&format!("campaign-cut{survivors}"));
        ck.save_atomic(&cut).unwrap();

        let resumed = run_campaign_supervised(
            &d,
            patterns.pairs(),
            &faults,
            &config(),
            Some(&cut),
            Resume::Require,
        )
        .unwrap();
        assert_eq!(resumed.ledger, full.ledger, "survivors={survivors}");
        assert_eq!(resumed.campaign.run(&cfg).to_json(), full_json);
        // The rewritten checkpoint is complete and still keyed to the run.
        let after = Checkpoint::load(&cut, Some(&run_key)).unwrap();
        assert_eq!(after.entries.len(), full.ledger.records.len());
    }
}

#[test]
fn sweep_resumed_mid_grid_matches_uninterrupted_sweep() {
    let d = design();
    let patterns = PatternSet::uniform(4, 40, 9);
    let profile = d.profile(patterns.pairs(), None).unwrap();
    let cfg = EngineConfig::adaptive(1.0, 2);
    let periods: Vec<f64> = (0..8).map(|i| 0.6 + 0.1 * f64::from(i)).collect();

    let reference = PeriodSweep::run(&profile, &cfg, &periods);

    let path = temp_path("sweep");
    let full = run_sweep_supervised(
        &profile,
        &cfg,
        &periods,
        &config(),
        Some(&path),
        Resume::Fresh,
    )
    .unwrap();
    assert_eq!(full.sweep.points(), reference.points());
    assert!(full.quarantined_periods.is_empty());

    let mut ck = Checkpoint::load(&path, None).unwrap();
    ck.entries.truncate(3);
    ck.save_atomic(&path).unwrap();
    let resumed = run_sweep_supervised(
        &profile,
        &cfg,
        &periods,
        &config(),
        Some(&path),
        Resume::Require,
    )
    .unwrap();
    assert_eq!(resumed.sweep.points(), reference.points());
    assert_eq!(resumed.ledger, full.ledger);
    // Bit-level spot check on the floats that crossed the JSON boundary.
    for (a, b) in resumed.sweep.points().iter().zip(reference.points()) {
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.cycle_ns.to_bits(), b.1.cycle_ns.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized workload seeds and cut points: the resumed ledger always
    /// equals the uninterrupted one, and so does the rendered report.
    #[test]
    fn resume_identity_holds_for_random_seeds_and_cuts(
        seed in any::<u64>(),
        cut_pick in any::<u16>(),
    ) {
        let d = design();
        let patterns = PatternSet::uniform(4, 12, seed);
        let faults = FaultSpec::sample(&d, 12, 3, seed ^ 0xA5A5);
        let cfg = EngineConfig::adaptive(1.0, 2);

        let path = temp_path(&format!("prop-{seed:x}"));
        let full = run_campaign_supervised(
            &d, patterns.pairs(), &faults, &config(), Some(&path), Resume::Fresh,
        ).unwrap();

        let mut ck = Checkpoint::load(&path, None).unwrap();
        let survivors = usize::from(cut_pick) % ck.entries.len();
        ck.entries.truncate(survivors);
        ck.save_atomic(&path).unwrap();

        let resumed = run_campaign_supervised(
            &d, patterns.pairs(), &faults, &config(), Some(&path), Resume::Require,
        ).unwrap();
        prop_assert_eq!(&resumed.ledger, &full.ledger);
        prop_assert_eq!(
            resumed.campaign.run(&cfg).to_json(),
            full.campaign.run(&cfg).to_json()
        );
    }
}
