//! Panic isolation and deadline budgets, end to end.
//!
//! A genuinely unwinding fault case ([`FaultSpec::PanicForTest`]) must be
//! quarantined while the rest of the campaign completes and is counted in
//! the [`CampaignReport`]'s quarantine ledger; a deadline that cannot be
//! met must quarantine through the cancellation path threaded into the
//! gate-level simulators, not by killing the process.

use std::path::PathBuf;
use std::time::Duration;

use agemul::{EngineConfig, MultiplierDesign, PatternSet};
use agemul_circuits::MultiplierKind;
use agemul_faults::FaultSpec;
use agemul_harness::{
    run_campaign_supervised, run_gate_supervised, Checkpoint, HarnessError, Resume,
    SupervisorConfig,
};

fn design() -> MultiplierDesign {
    MultiplierDesign::new(MultiplierKind::ColumnBypass, 4).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agemul-quar-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("ckpt.json")
}

fn config() -> SupervisorConfig {
    SupervisorConfig {
        checkpoint_every: 1,
        retry_backoff: Duration::ZERO,
        ..SupervisorConfig::default()
    }
}

#[test]
fn poison_fault_is_quarantined_and_campaign_completes() {
    let d = design();
    let patterns = PatternSet::uniform(4, 16, 21);
    let mut faults = FaultSpec::sample(&d, 16, 4, 33);
    faults.insert(2, FaultSpec::PanicForTest);

    let supervised = run_campaign_supervised(
        &d,
        patterns.pairs(),
        &faults,
        &config(),
        None,
        Resume::Fresh,
    )
    .unwrap();

    // Ledger: exactly the poison case (campaign case index 3 = fault 2)
    // quarantined, with the panic message recorded; no retries burned.
    assert_eq!(supervised.ledger.quarantined(), vec![3]);
    let rec = &supervised.ledger.records[3];
    assert_eq!(rec.retries, 0, "a panic must not consume the retry budget");

    // Report: the four real faults classified, the poison one counted.
    let report = supervised.campaign.run(&EngineConfig::adaptive(1.0, 2));
    assert_eq!(report.outcomes.len(), 4);
    assert_eq!(report.quarantined, vec!["poison".to_string()]);
    assert_eq!(report.quarantined(), 1);
    assert!(report.to_json().contains("\"quarantined\":[\"poison\"]"));
}

#[test]
fn poison_case_survives_checkpoint_and_resume() {
    let d = design();
    let patterns = PatternSet::uniform(4, 12, 2);
    let faults = vec![FaultSpec::PanicForTest];
    let path = temp_path("resume");

    let first = run_campaign_supervised(
        &d,
        patterns.pairs(),
        &faults,
        &config(),
        Some(&path),
        Resume::Fresh,
    )
    .unwrap();
    assert_eq!(first.ledger.quarantined(), vec![1]);

    // Resuming replays the quarantine verdict from the checkpoint — the
    // poison worker must NOT run again (it would panic again, fine, but
    // the record proves it was skipped: retries and reason are identical).
    let resumed = run_campaign_supervised(
        &d,
        patterns.pairs(),
        &faults,
        &config(),
        Some(&path),
        Resume::Require,
    )
    .unwrap();
    assert_eq!(resumed.ledger, first.ledger);
    assert_eq!(
        resumed.campaign.run(&EngineConfig::adaptive(1.0, 2)),
        first.campaign.run(&EngineConfig::adaptive(1.0, 2))
    );
}

#[test]
fn poisoned_baseline_is_fatal_not_silent() {
    // An impossible deadline cancels the baseline profile on every
    // attempt (including the event-engine degradation), which must surface
    // as a typed fatal error — a campaign without a baseline means
    // nothing.
    let d = design();
    let patterns = PatternSet::uniform(4, 64, 5);
    let faults = FaultSpec::sample(&d, 64, 2, 6);
    let err = run_campaign_supervised(
        &d,
        patterns.pairs(),
        &faults,
        &SupervisorConfig {
            deadline: Some(Duration::ZERO),
            ..config()
        },
        None,
        Resume::Fresh,
    )
    .unwrap_err();
    match err {
        HarnessError::PoisonedBaseline { reason } => {
            assert!(reason.contains("deadline exceeded"), "{reason}");
        }
        other => panic!("expected PoisonedBaseline, got {other}"),
    }
}

#[test]
fn generous_deadline_completes_without_retries_or_degradation() {
    let d = design();
    let patterns = PatternSet::uniform(4, 16, 8);
    let faults = FaultSpec::sample(&d, 16, 3, 9);
    let supervised = run_campaign_supervised(
        &d,
        patterns.pairs(),
        &faults,
        &SupervisorConfig {
            deadline: Some(Duration::from_secs(60)),
            ..config()
        },
        None,
        Resume::Fresh,
    )
    .unwrap();
    assert!(supervised.ledger.quarantined().is_empty());
    assert!(supervised.ledger.degraded().is_empty());
    for rec in &supervised.ledger.records {
        assert_eq!(rec.retries, 0);
        assert_eq!(rec.engine, "level");
    }
}

#[test]
fn supervised_gate_is_clean_and_checkpoints() {
    let path = temp_path("gate");
    let outcome = run_gate_supervised(0xC0FFEE, 6, &config(), Some(&path), Resume::Fresh).unwrap();
    assert!(outcome.is_clean(), "divergent: {:?}", outcome.divergent);
    assert_eq!(outcome.cases, 6);
    assert_eq!(outcome.ledger.records.len(), 6);

    // The checkpoint holds all six cases; resuming evaluates nothing new
    // and reproduces the ledger.
    let ck = Checkpoint::load(&path, None).unwrap();
    assert_eq!(ck.entries.len(), 6);
    let resumed =
        run_gate_supervised(0xC0FFEE, 6, &config(), Some(&path), Resume::Require).unwrap();
    assert_eq!(resumed.ledger, outcome.ledger);
}
