//! Checkpoint robustness under injected filesystem faults (chaos seam 1).
//!
//! Each test arms a seeded `agemul-chaos` plan scoped to its own temp
//! directory and drives a supervised run through the `ckpt/write_tmp`,
//! `ckpt/rename`, and `ckpt/read` failpoints, asserting the standing
//! invariants: the prior checkpoint generation survives every failed save,
//! a checkpoint on disk either loads cleanly with trustworthy content or is
//! refused with a typed error, and a disarmed resume converges to the
//! byte-identical ledger and document of an uninterrupted run.

use std::path::{Path, PathBuf};

use agemul_chaos::{arm, ChaosPlan, FaultKind, PPM};
use agemul_conformance::Json;
use agemul_harness::{
    Attempt, CaseStatus, Checkpoint, CheckpointError, Resume, RunLedger, Supervisor,
    SupervisorConfig,
};

const CASES: usize = 6;

fn labels() -> Vec<String> {
    (0..CASES).map(|i| format!("case{i}")).collect()
}

fn config() -> SupervisorConfig {
    SupervisorConfig {
        retry_backoff: std::time::Duration::ZERO,
        checkpoint_every: 2,
        ..SupervisorConfig::default()
    }
}

fn worker(a: &Attempt) -> Result<Json, agemul_harness::CaseError> {
    Ok(Json::UInt(a.index as u64 * 7 + 1))
}

fn supervisor() -> Supervisor {
    Supervisor::new("chaos-ckpt", labels(), config())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agemul-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An uninterrupted run's ledger and final on-disk checkpoint document —
/// the byte-identity reference every chaos run must converge to.
fn reference(dir: &Path) -> (RunLedger, String) {
    let path = dir.join("reference.json");
    let ledger = supervisor()
        .run(&worker, Some(&path), Resume::Fresh)
        .unwrap();
    let doc = std::fs::read_to_string(&path).unwrap();
    (ledger, doc)
}

/// Any checkpoint that loads at all must contain exactly the reference
/// records for the indices it covers — a partial generation is fine, a
/// divergent one never is.
fn assert_clean_prefix(path: &Path, reference: &RunLedger) {
    match Checkpoint::load(path, Some("chaos-ckpt")) {
        Ok(ck) => {
            assert_eq!(ck.total, CASES);
            for rec in &ck.entries {
                assert_eq!(
                    rec, &reference.records[rec.index],
                    "checkpoint entry {} diverges from the reference run",
                    rec.index
                );
            }
        }
        Err(e) => panic!("surviving checkpoint failed to load: {e}"),
    }
}

#[test]
fn enospc_mid_run_preserves_prior_generation_and_resume_is_byte_identical() {
    let dir = temp_dir("enospc");
    let (ref_ledger, ref_doc) = reference(&dir);

    let mut injected_total = 0;
    for seed in 0..8u64 {
        let run_dir = dir.join(format!("seed{seed}"));
        std::fs::create_dir_all(&run_dir).unwrap();
        let path = run_dir.join("ck.json");
        let scope = run_dir.to_string_lossy().into_owned();

        let outcome = {
            let guard = arm(ChaosPlan::new(seed).rule(
                "ckpt/write_tmp",
                &scope,
                500_000,
                &[FaultKind::IoError, FaultKind::Torn],
            ));
            let outcome = supervisor().run(&worker, Some(&path), Resume::Fresh);
            injected_total += guard.injected_total();
            outcome
        };

        match outcome {
            // A save failed mid-run: whatever generation survives on disk
            // must load cleanly (or not exist at all — the very first save
            // may have been the one hit).
            Err(e) => {
                assert!(e.to_string().contains("chaos:"), "unexpected failure: {e}");
                if path.exists() {
                    assert_clean_prefix(&path, &ref_ledger);
                }
            }
            Ok(ledger) => assert_eq!(ledger, ref_ledger),
        }

        // A torn temp file may remain — exactly what a crash would leave.
        // It must never shadow the committed generation.
        let resumed = supervisor()
            .run(&worker, Some(&path), Resume::Attempt)
            .unwrap();
        assert_eq!(resumed, ref_ledger, "seed {seed}: resume diverged");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            ref_doc,
            "seed {seed}: final checkpoint is not byte-identical"
        );
    }
    assert!(
        injected_total > 0,
        "the schedule matrix never injected a write fault"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rename_failure_leaves_prior_generation_untouched() {
    let dir = temp_dir("rename");
    let (ref_ledger, ref_doc) = reference(&dir);
    let path = dir.join("ck.json");

    // Install a prior generation: the first two completed cases.
    let prior = Checkpoint {
        run_key: "chaos-ckpt".into(),
        total: CASES,
        entries: ref_ledger.records[..2].to_vec(),
    };
    prior.save_atomic(&path).unwrap();
    let prior_doc = std::fs::read_to_string(&path).unwrap();

    {
        let _guard = arm(ChaosPlan::new(41).rule(
            "ckpt/rename",
            &dir.to_string_lossy(),
            PPM,
            &[FaultKind::IoError],
        ));
        let err = supervisor()
            .run(&worker, Some(&path), Resume::Attempt)
            .unwrap_err();
        assert!(err.to_string().contains("chaos: injected rename failure"));
    }

    // The commit rename never happened: the prior generation is untouched
    // byte for byte, and the orphaned temp file sits beside it.
    assert_eq!(std::fs::read_to_string(&path).unwrap(), prior_doc);
    assert!(dir.join("ck.json.tmp").exists(), "temp file should remain");
    assert_clean_prefix(&path, &ref_ledger);

    // Disarmed resume completes the run byte-identically.
    let resumed = supervisor()
        .run(&worker, Some(&path), Resume::Attempt)
        .unwrap();
    assert_eq!(resumed, ref_ledger);
    assert_eq!(std::fs::read_to_string(&path).unwrap(), ref_doc);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_read_back_is_typed_and_attempt_recomputes() {
    let dir = temp_dir("readback");
    let (ref_ledger, ref_doc) = reference(&dir);
    let path = dir.join("ck.json");
    supervisor()
        .run(&worker, Some(&path), Resume::Fresh)
        .unwrap();

    let scope = dir.to_string_lossy().into_owned();
    let mut refused = 0;
    for seed in 0..16u64 {
        let guard = arm(ChaosPlan::new(seed).rule(
            "ckpt/read",
            &scope,
            PPM,
            &[FaultKind::BitFlip, FaultKind::Torn, FaultKind::IoError],
        ));
        // Corrupt read-back must be a typed refusal — never an `Ok` with
        // silently-wrong content (the schema/CRC envelope's whole job).
        match Checkpoint::load(&path, Some("chaos-ckpt")) {
            Ok(ck) => {
                let doc = ck.to_document();
                assert_eq!(
                    doc, ref_doc,
                    "seed {seed}: corrupt load passed verification"
                );
            }
            Err(
                CheckpointError::Io { .. }
                | CheckpointError::Parse { .. }
                | CheckpointError::Checksum { .. }
                | CheckpointError::Schema { .. },
            ) => refused += 1,
            Err(other) => panic!("seed {seed}: unexpected refusal {other}"),
        }
        drop(guard);
    }
    assert!(refused > 0, "no read-back corruption was ever injected");

    // Under Resume::Attempt a refused load restarts from scratch and the
    // recomputed run converges to the identical document.
    {
        let _guard = arm(ChaosPlan::new(3).rule("ckpt/read", &scope, PPM, &[FaultKind::Torn]));
        let ledger = supervisor()
            .run(&worker, Some(&path), Resume::Attempt)
            .unwrap();
        assert_eq!(ledger, ref_ledger);
    }
    assert_eq!(std::fs::read_to_string(&path).unwrap(), ref_doc);

    // Resume::Require refuses to run at all when the load is poisoned.
    {
        let _guard = arm(ChaosPlan::new(5).rule("ckpt/read", &scope, PPM, &[FaultKind::IoError]));
        let err = supervisor()
            .run(&worker, Some(&path), Resume::Require)
            .unwrap_err();
        assert!(err.to_string().contains("chaos:"), "{err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantined_entries_survive_faulted_saves() {
    // A run with a quarantined case exercises the other CaseStatus arm
    // through the same fault schedule: the poisoned record must round-trip
    // through partial generations exactly like a Done record.
    let dir = temp_dir("quarantine");
    let path = dir.join("ck.json");
    let poison = |a: &Attempt| {
        if a.index == 3 {
            panic!("deliberate poison");
        }
        worker(a)
    };
    let ref_ledger = supervisor()
        .run(&poison, Some(&path), Resume::Fresh)
        .unwrap();
    let ref_doc = std::fs::read_to_string(&path).unwrap();
    assert_eq!(ref_ledger.quarantined(), vec![3]);
    std::fs::remove_file(&path).unwrap();

    let scope = dir.to_string_lossy().into_owned();
    for seed in 0..4u64 {
        let run_path = dir.join(format!("ck-{seed}.json"));
        {
            let _guard = arm(ChaosPlan::new(seed).rule(
                "ckpt/write_tmp",
                &scope,
                400_000,
                &[FaultKind::Torn, FaultKind::IoError],
            ));
            let _ = supervisor().run(&poison, Some(&run_path), Resume::Fresh);
        }
        let resumed = supervisor()
            .run(&poison, Some(&run_path), Resume::Attempt)
            .unwrap();
        assert_eq!(resumed, ref_ledger);
        assert_eq!(std::fs::read_to_string(&run_path).unwrap(), ref_doc);
        let ck = Checkpoint::load(&run_path, Some("chaos-ckpt")).unwrap();
        assert!(matches!(
            ck.entries[3].status,
            CaseStatus::Quarantined { .. }
        ));
    }
    std::fs::remove_dir_all(&dir).ok();
}
