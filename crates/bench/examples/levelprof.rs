//! Ad-hoc profiling driver for the levelized kernel (not a benchmark —
//! see `benches/profile.rs` for the tracked numbers).

use std::time::Instant;

use agemul::{calibrated_delay_model, PatternSet};
use agemul_circuits::{MultiplierCircuit, MultiplierKind};
use agemul_logic::Logic;
use agemul_netlist::{DelayAssignment, EventSim, LevelSim};

fn main() {
    let width = 32;
    let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, width).unwrap();
    let topo = m.netlist().topology().unwrap();
    let delays = DelayAssignment::uniform(m.netlist(), calibrated_delay_model());
    let encoded: Vec<Vec<Logic>> = PatternSet::uniform(width, 256, 7)
        .pairs()
        .iter()
        .map(|&(a, b)| m.encode_inputs(a, b).unwrap())
        .collect();
    let zeros = m.encode_inputs(0, 0).unwrap();

    println!(
        "gates={} nets={} depth={}",
        m.netlist().gate_count(),
        m.netlist().net_count(),
        topo.depth()
    );

    let mut sim = LevelSim::new(m.netlist(), &topo, delays.clone());
    sim.settle(&zeros).unwrap();
    let mut events = 0u64;
    let mut toggles = 0u64;
    let t0 = Instant::now();
    for p in &encoded {
        let t = sim.step(p).unwrap();
        events += t.events;
        toggles += t.gate_toggles;
    }
    let dt = t0.elapsed();
    println!(
        "level: {:?} total, {:.1} us/step, events/step={}, gate_toggles/step={}, ns/event={:.1}",
        dt,
        dt.as_secs_f64() * 1e6 / 256.0,
        events / 256,
        toggles / 256,
        dt.as_secs_f64() * 1e9 / events as f64
    );

    let mut sim = EventSim::new(m.netlist(), &topo, delays.clone());
    sim.settle(&zeros).unwrap();
    let t0 = Instant::now();
    for p in &encoded {
        sim.step(p).unwrap();
    }
    let dt = t0.elapsed();
    println!(
        "event: {:?} total, {:.1} us/step",
        dt,
        dt.as_secs_f64() * 1e6 / 256.0
    );
}
