//! End-to-end regeneration benches for the paper's artifacts.
//!
//! One bench per table/figure family. The cheap artifacts run whole; the
//! timing-simulation-bound figures (5, 6, 13–24, 26, 27) are all dominated
//! by the same two kernels, benched here at reduced pattern counts:
//! `profile_building` (event-driven workload profiling — the cost of
//! Figs. 5/6/13–24/26/27) and `aging_factors` (the per-gate BTI pass used
//! by Figs. 7/19–24/26/27).

use criterion::{criterion_group, criterion_main, Criterion};

use agemul_aging::{aging_factors, BtiModel};
use agemul_bench::Fixture;
use agemul_logic::Technology;
use agemul_repro::{experiments, Context, Scale};

fn bench_cheap_artifacts(c: &mut Criterion) {
    let mut g = c.benchmark_group("artifacts");
    g.sample_size(10);
    for id in ["table1", "table2", "fig9-10", "fig25"] {
        g.bench_function(id, |b| {
            b.iter(|| {
                let mut ctx = Context::new(Scale::Quick);
                experiments::run_by_id(&mut ctx, id).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_profile_building(c: &mut Criterion) {
    let fixture = Fixture::column_bypass_16(1);
    let patterns = agemul::PatternSet::uniform(16, 256, 7);
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    g.bench_function("profile_256_patterns_cb16", |b| {
        b.iter(|| fixture.design.profile(patterns.pairs(), None).unwrap())
    });
    g.bench_function("critical_delay_cb16", |b| {
        b.iter(|| fixture.design.critical_delay_ns(None).unwrap())
    });
    g.finish();
}

fn bench_aging_pass(c: &mut Criterion) {
    let fixture = Fixture::column_bypass_16(64);
    let stats = fixture
        .design
        .workload_stats(fixture.patterns.pairs())
        .unwrap();
    let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.132);
    c.bench_function("kernels/aging_factors_cb16", |b| {
        b.iter(|| aging_factors(fixture.design.circuit().netlist(), &stats, &bti, 7.0))
    });
}

criterion_group!(
    benches,
    bench_cheap_artifacts,
    bench_profile_building,
    bench_aging_pass
);
criterion_main!(benches);
