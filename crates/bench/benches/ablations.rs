//! Ablation benches for the design choices called out in `DESIGN.md`.
//!
//! These are *quality* ablations dressed as benches: each bench replays
//! the same profiled workload under one design-knob variation, and the
//! interesting output is the measured latency printed alongside the
//! throughput numbers. Criterion keeps them regression-tracked.

use criterion::{criterion_group, criterion_main, Criterion};

use agemul::{run_engine, AhlConfig, EngineConfig, RazorConfig};
use agemul_bench::Fixture;

fn bench_skip_number(c: &mut Criterion) {
    let fixture = Fixture::column_bypass_16(4_096);
    let mut g = c.benchmark_group("ablation_skip");
    for skip in [5u32, 6, 7, 8, 9, 10, 11] {
        let cfg = EngineConfig::adaptive(0.95, skip);
        let m = run_engine(&fixture.profile, &cfg);
        g.bench_function(
            format!(
                "skip{skip}_lat{:.3}ns_err{:.0}",
                m.avg_latency_ns(),
                m.errors_per_10k_cycles()
            ),
            |b| b.iter(|| run_engine(&fixture.profile, &cfg)),
        );
    }
    g.finish();
}

fn bench_aging_indicator(c: &mut Criterion) {
    let fixture = Fixture::column_bypass_16(4_096);
    let mut g = c.benchmark_group("ablation_ahl");
    for (label, ahl) in [
        ("paper_10pct_sticky", AhlConfig::paper()),
        (
            "5pct_sticky",
            AhlConfig {
                error_threshold: 5,
                ..AhlConfig::paper()
            },
        ),
        (
            "20pct_sticky",
            AhlConfig {
                error_threshold: 20,
                ..AhlConfig::paper()
            },
        ),
        (
            "10pct_oscillating",
            AhlConfig {
                sticky: false,
                ..AhlConfig::paper()
            },
        ),
    ] {
        let cfg = EngineConfig {
            ahl,
            ..EngineConfig::adaptive(0.80, 7)
        };
        let m = run_engine(&fixture.profile, &cfg);
        g.bench_function(format!("{label}_lat{:.3}ns", m.avg_latency_ns()), |b| {
            b.iter(|| run_engine(&fixture.profile, &cfg))
        });
    }
    g.finish();
}

fn bench_razor_penalty(c: &mut Criterion) {
    let fixture = Fixture::column_bypass_16(4_096);
    let mut g = c.benchmark_group("ablation_razor");
    for penalty in [1u32, 2, 3, 5] {
        let cfg = EngineConfig {
            error_penalty_cycles: penalty,
            ..EngineConfig::adaptive(0.85, 7)
        };
        let m = run_engine(&fixture.profile, &cfg);
        g.bench_function(
            format!("penalty{penalty}_lat{:.3}ns", m.avg_latency_ns()),
            |b| b.iter(|| run_engine(&fixture.profile, &cfg)),
        );
    }
    // Shrunken detection window: silent corruptions appear.
    for window in [1.0f64, 0.25] {
        let cfg = EngineConfig {
            razor: RazorConfig {
                window_factor: window,
            },
            ..EngineConfig::adaptive(0.70, 7)
        };
        let m = run_engine(&fixture.profile, &cfg);
        g.bench_function(format!("window{window}_undetected{}", m.undetected), |b| {
            b.iter(|| run_engine(&fixture.profile, &cfg))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_skip_number,
    bench_aging_indicator,
    bench_razor_penalty
);
criterion_main!(benches);
