//! Substrate microbenches: generation, validation, simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use agemul_circuits::{MultiplierCircuit, MultiplierKind};
use agemul_logic::{DelayModel, Logic};
use agemul_netlist::{static_critical_path_ns, DelayAssignment, EventSim, FuncSim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generate");
    for kind in MultiplierKind::ALL {
        g.bench_function(format!("{}16", kind.label()), |b| {
            b.iter(|| MultiplierCircuit::generate(kind, 16).unwrap())
        });
    }
    g.bench_function("CB32", |b| {
        b.iter(|| MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 32).unwrap())
    });
    g.finish();
}

fn bench_topology_and_sta(c: &mut Criterion) {
    let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 16).unwrap();
    let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
    c.bench_function("topology/CB16", |b| {
        b.iter(|| m.netlist().topology().unwrap())
    });
    c.bench_function("sta/CB16", |b| {
        b.iter(|| static_critical_path_ns(m.netlist(), &delays).unwrap())
    });
}

fn bench_func_sim(c: &mut Criterion) {
    let m = MultiplierCircuit::generate(MultiplierKind::ColumnBypass, 16).unwrap();
    let topo = m.netlist().topology().unwrap();
    let mut sim = FuncSim::new(m.netlist(), &topo);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("func_sim/CB16_eval", |b| {
        b.iter_batched(
            || {
                let a = rng.gen::<u64>() & 0xFFFF;
                let bb = rng.gen::<u64>() & 0xFFFF;
                m.encode_inputs(a, bb).unwrap()
            },
            |inputs| sim.eval(&inputs).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_event_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_sim");
    for (label, kind, width) in [
        ("AM16", MultiplierKind::Array, 16usize),
        ("CB16", MultiplierKind::ColumnBypass, 16),
        ("RB16", MultiplierKind::RowBypass, 16),
        ("CB32", MultiplierKind::ColumnBypass, 32),
    ] {
        let m = MultiplierCircuit::generate(kind, width).unwrap();
        let topo = m.netlist().topology().unwrap();
        let delays = DelayAssignment::uniform(m.netlist(), &DelayModel::nominal());
        let mut sim = EventSim::new(m.netlist(), &topo, delays);
        sim.settle(&vec![Logic::Zero; 2 * width]).unwrap();
        let mask = (1u64 << width) - 1;
        let mut rng = StdRng::seed_from_u64(2);
        g.bench_function(format!("{label}_step"), |b| {
            b.iter_batched(
                || {
                    m.encode_inputs(rng.gen::<u64>() & mask, rng.gen::<u64>() & mask)
                        .unwrap()
                },
                |inputs| sim.step(&inputs).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_topology_and_sta,
    bench_func_sim,
    bench_event_sim
);
criterion_main!(benches);
