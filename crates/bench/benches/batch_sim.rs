//! Scalar vs bit-parallel profiling throughput.
//!
//! The headline comparison for the 64-lane batch simulator: collecting
//! signal probabilities and functionally verifying products over a fixed
//! workload, scalar `FuncSim` (one sweep per pattern) against `BatchSim`
//! (one sweep per 64 patterns). Build with `--features parallel` to also
//! fan the batch passes out across threads.
//!
//! Run with `cargo bench -p agemul-bench --bench batch_sim`; set
//! `CRITERION_JSON=<file>` to append machine-readable results (see
//! `BENCH_sim.json` at the workspace root).

use criterion::{criterion_group, criterion_main, Criterion};

use agemul::{MultiplierDesign, PatternSet};
use agemul_circuits::{MultiplierCircuit, MultiplierKind};
use agemul_logic::Logic;
use agemul_netlist::{FuncSim, WorkloadStats};

const CASES: [(&str, MultiplierKind, usize); 4] = [
    ("CB16", MultiplierKind::ColumnBypass, 16),
    ("RB16", MultiplierKind::RowBypass, 16),
    ("CB32", MultiplierKind::ColumnBypass, 32),
    ("RB32", MultiplierKind::RowBypass, 32),
];

/// Encodes a fixed seed-derived workload for `m`.
fn workload(m: &MultiplierCircuit, width: usize, count: usize) -> Vec<Vec<Logic>> {
    PatternSet::uniform(width, count, 7)
        .pairs()
        .iter()
        .map(|&(a, b)| m.encode_inputs(a, b).unwrap())
        .collect()
}

/// Signal-probability collection over 256 patterns: the aging model's
/// hot loop. `scalar` sweeps one pattern at a time; `batch` goes through
/// `WorkloadStats::observe_patterns` (64 lanes per sweep).
fn bench_signal_prob(c: &mut Criterion) {
    let mut g = c.benchmark_group("signal_prob");
    g.sample_size(10);
    for (label, kind, width) in CASES {
        let m = MultiplierCircuit::generate(kind, width).unwrap();
        let topo = m.netlist().topology().unwrap();
        let patterns = workload(&m, width, 256);

        g.bench_function(format!("{label}_scalar256"), |b| {
            b.iter(|| {
                let mut sim = FuncSim::new(m.netlist(), &topo);
                let mut weights = vec![0.0f64; m.netlist().net_count()];
                for p in &patterns {
                    sim.eval(p).unwrap();
                    for (acc, v) in weights.iter_mut().zip(sim.values()) {
                        *acc += v.high_weight();
                    }
                }
                weights
            })
        });
        g.bench_function(format!("{label}_batch256"), |b| {
            b.iter(|| {
                let mut stats = WorkloadStats::new(m.netlist());
                stats
                    .observe_patterns(m.netlist(), &topo, patterns.iter())
                    .unwrap();
                stats
            })
        });
    }
    g.finish();
}

/// Functional product verification over 1024 operand pairs. The batch row
/// uses `MultiplierDesign::verify_functional`, which also fans out across
/// threads when the `parallel` feature is enabled.
fn bench_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("verify");
    g.sample_size(10);
    for (label, kind, width) in CASES {
        let design = MultiplierDesign::new(kind, width).unwrap();
        let m = design.circuit();
        let topo = m.netlist().topology().unwrap();
        let patterns = PatternSet::uniform(width, 1024, 11);
        let encoded: Vec<Vec<Logic>> = patterns
            .pairs()
            .iter()
            .map(|&(a, b)| m.encode_inputs(a, b).unwrap())
            .collect();

        g.bench_function(format!("{label}_scalar1024"), |b| {
            b.iter(|| {
                let mut sim = FuncSim::new(m.netlist(), &topo);
                for (p, &(a, bb)) in encoded.iter().zip(patterns.pairs()) {
                    sim.eval(p).unwrap();
                    let got = m.product().decode(sim.values());
                    assert_eq!(got, Some(u128::from(a) * u128::from(bb)));
                }
            })
        });
        g.bench_function(format!("{label}_batch1024"), |b| {
            b.iter(|| design.verify_functional(patterns.pairs()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_signal_prob, bench_verify);
criterion_main!(benches);
