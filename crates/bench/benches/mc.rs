//! Monte Carlo corner-switch cost: plan-reuse re-timing vs from-scratch
//! kernel construction.
//!
//! The campaign's fast path compiles one levelized kernel per worker and
//! re-times it per (corner, year) — an in-place delay rewrite plus a
//! settled-state restore, both O(gates) memcpys. The reference path pays
//! full `LevelSim` construction (levelize, CSR fanout, truth-table LUTs,
//! arena allocation) for every cell. The `retime_corner_*` /
//! `rebuild_corner_*` row pair isolates exactly that marginal cost — the
//! acceptance target is retime ≥ 10× below rebuild — and the
//! `campaign_8corners_*` rows put it in context with the full end-to-end
//! campaign (factor composition, workload replay, engine judging).
//!
//! Both paths produce byte-identical reports (pinned by `agemul`'s
//! campaign tests), so the ratio is pure overhead, not accuracy traded
//! away.
//!
//! Run with `cargo bench -p agemul-bench --bench mc`; set
//! `CRITERION_JSON=<file>` to record machine-readable results (see
//! `BENCH_sim.json` at the workspace root).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use agemul::{McConfig, MonteCarloCampaign, MultiplierDesign, PatternSet};
use agemul_aging::BtiModel;
use agemul_circuits::MultiplierKind;
use agemul_logic::Technology;
use agemul_netlist::DelayAssignment;

/// Patterns per corner-year replay in the end-to-end rows.
const OPS: usize = 48;

/// Corners in the end-to-end campaign rows (and distinct delay
/// assignments cycled through the corner-switch rows).
const CORNERS: usize = 8;

/// The workspace's calibrated per-gate seven-year factor target (see
/// `agemul-repro`'s context calibration).
const GATE_7Y_FACTOR: f64 = 1.132;

fn bench_mc(c: &mut Criterion) {
    let mut g = c.benchmark_group("mc");
    g.sample_size(10);
    let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), GATE_7Y_FACTOR);
    for (label, kind) in [
        ("CB16", MultiplierKind::ColumnBypass),
        ("RB16", MultiplierKind::RowBypass),
    ] {
        let design = MultiplierDesign::new(kind, 16).unwrap();
        let patterns = PatternSet::uniform(16, OPS, 7);
        let config = McConfig::new(CORNERS, 0.05, 0x0A6E_0002);
        let campaign = MonteCarloCampaign::new(&design, patterns.pairs(), &bti, config).unwrap();

        // One aged (year-7) delay assignment per corner, derived outside
        // the timed region: the row pair measures kernel work, not the
        // factor pipeline both paths share.
        let year7 = campaign.config().years.len() - 1;
        let delays: Vec<DelayAssignment> = (0..CORNERS)
            .map(|corner| {
                design
                    .delay_assignment(Some(&campaign.cell_factors(corner, year7)))
                    .unwrap()
            })
            .collect();

        // Marginal cost of pointing an existing kernel at the next
        // corner: in-place delay swap + settled-state restore.
        g.bench_function(format!("retime_corner_{label}"), |b| {
            let mut profiler = campaign.profiler().unwrap();
            let mut i = 0;
            b.iter(|| {
                profiler.retime(black_box(&delays[i % CORNERS]));
                i += 1;
            })
        });

        // The from-scratch alternative: compile a whole new levelized
        // kernel for the same delays.
        g.bench_function(format!("rebuild_corner_{label}"), |b| {
            let mut i = 0;
            b.iter(|| {
                black_box(design.corner_profiler(&delays[i % CORNERS]));
                i += 1;
            })
        });

        // End-to-end context: the full campaign on the plan-reuse path.
        g.bench_function(format!("campaign_{CORNERS}corners_{label}"), |b| {
            b.iter(|| black_box(campaign.run(None).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
