//! Fault-campaign throughput: lane-masked preparation and replay.
//!
//! Two costs matter for campaign scaling: `Campaign::prepare` (gate-level
//! simulation — one batch sweep per 64 logic faults, one levelized timed
//! profile per delay fault) and `Campaign::run` (pure engine replay, spent
//! once per point of a skip × window sweep). The delay-fault case threads
//! a warm [`ProfileCache`] through preparation, measuring the steady-state
//! sweep workflow: the baseline and each inflated delay assignment are
//! profiled once per design/workload (the cold cost is tracked by the
//! `profile/*` benches), and every re-preparation after that replays
//! memoized profiles. Build with `--features parallel` to fan preparation
//! across threads.
//!
//! Run with `cargo bench -p agemul-bench --bench faults`; set
//! `CRITERION_JSON=<file>` to append machine-readable results (see
//! `BENCH_sim.json` at the workspace root).

use criterion::{criterion_group, criterion_main, Criterion};

use agemul::EngineConfig;
use agemul_bench::Fixture;
use agemul_faults::{Campaign, FaultSpec};

fn bench_campaign(c: &mut Criterion) {
    let fixture = Fixture::column_bypass_16(256);
    let pairs = fixture.patterns.pairs();
    let mut g = c.benchmark_group("faults");

    // 32 logic faults: half a lane-masked batch chunk + the baseline.
    let logic: Vec<FaultSpec> = FaultSpec::sample(&fixture.design, pairs.len(), 64, 0xFA17)
        .into_iter()
        .filter(FaultSpec::is_logic)
        .take(32)
        .collect();
    g.bench_function("prepare_32_logic_faults_256ops", |b| {
        b.iter(|| Campaign::prepare(&fixture.design, pairs, &logic).unwrap())
    });

    // 4 delay faults: the baseline plus four inflated-assignment profiles,
    // memoized across re-preparations by the shared cache.
    let delay: Vec<FaultSpec> = FaultSpec::sample(&fixture.design, pairs.len(), 16, 0xFA17)
        .into_iter()
        .filter(|f| !f.is_logic())
        .collect();
    let cache = agemul::ProfileCache::new();
    g.bench_function("prepare_4_delay_faults_256ops", |b| {
        b.iter(|| Campaign::prepare_cached(&fixture.design, pairs, &delay, &cache).unwrap())
    });

    // Replay cost of one sweep point over a mixed prepared campaign.
    let mixed = FaultSpec::sample(&fixture.design, pairs.len(), 24, 0xFA17);
    let campaign = Campaign::prepare(&fixture.design, pairs, &mixed).unwrap();
    g.bench_function("run_24_fault_replay", |b| {
        let cfg = EngineConfig::adaptive(0.95, 7);
        b.iter(|| campaign.run(&cfg))
    });
    g.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
