//! Aging-sweep driver throughput: incremental re-profiling vs the
//! cache-less from-scratch driver over the 7-year × 17-period
//! configuration grid on the 32×32 bypassing multipliers.
//!
//! Mirrors the `repro sweep` experiment: the grid is walked year-major
//! and the driver is asked for a profile once per configuration. The
//! `7yr_full_*` rows recompute every request (136 full profiles); the
//! `7yr_incremental_*` rows run one [`AgingSweep`], which answers the
//! period axis from factor identity and year boundaries from dirty-cone
//! re-simulation. Both produce byte-identical profiles (asserted by the
//! workspace tests), so the ratio of the two rows is the sweep speedup.
//!
//! Run with `cargo bench -p agemul-bench --bench sweep`; set
//! `CRITERION_JSON=<file>` to append machine-readable results (see
//! `BENCH_sim.json` at the workspace root).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use agemul::{quantize_factors, AgingSweep, MultiplierDesign, PatternSet};
use agemul_aging::{aging_factors, BtiModel};
use agemul_circuits::MultiplierKind;
use agemul_logic::Technology;

/// Patterns per year — small enough that the 136-profile baseline stays
/// benchable, large enough that per-pattern kernel work dominates.
const OPS: usize = 64;

/// Cycle periods in the grid (the fig14 sweep's cardinality; the period
/// never enters profiling, which is exactly what the incremental driver
/// discovers and the from-scratch driver cannot).
const PERIODS: usize = 17;

/// The workspace's calibrated per-gate seven-year factor target (see
/// `agemul-repro`'s context calibration).
const GATE_7Y_FACTOR: f64 = 1.132;

/// One factor vector per year 0..=7 (`None` = fresh delays), derived from
/// the real BTI pipeline so the per-gate drift density matches what the
/// repro sweep sees.
fn year_factors(design: &MultiplierDesign, pairs: &[(u64, u64)]) -> Vec<Option<Vec<f64>>> {
    let stats = design
        .workload_stats(pairs)
        .expect("workload statistics succeed on a valid design");
    let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), GATE_7Y_FACTOR);
    (0..=7)
        .map(|y| {
            (y > 0).then(|| aging_factors(design.circuit().netlist(), &stats, &bti, f64::from(y)))
        })
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    for (label, kind) in [
        ("CB32", MultiplierKind::ColumnBypass),
        ("RB32", MultiplierKind::RowBypass),
    ] {
        let design = MultiplierDesign::new(kind, 32).unwrap();
        let patterns = PatternSet::uniform(32, OPS, 7);
        let pairs = patterns.pairs();
        let factors = year_factors(&design, pairs);
        // The from-scratch driver profiles under pre-quantized factors so
        // both rows compute identical profiles on the same delay grid.
        let quant: Vec<Option<Vec<f64>>> = factors
            .iter()
            .map(|f| f.as_ref().map(|v| quantize_factors(v)))
            .collect();

        g.bench_function(format!("7yr_full_{label}"), |b| {
            b.iter(|| {
                for f in &quant {
                    for _ in 0..PERIODS {
                        black_box(design.profile(pairs, f.as_deref()).unwrap());
                    }
                }
            })
        });

        g.bench_function(format!("7yr_incremental_{label}"), |b| {
            b.iter(|| {
                let mut sweep = AgingSweep::new(&design, pairs).unwrap();
                for f in &factors {
                    for _ in 0..PERIODS {
                        black_box(sweep.profile_year(f.as_deref()).unwrap());
                    }
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
