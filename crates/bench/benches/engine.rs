//! Architecture hot-path benches: profile replay through the engine.

use criterion::{criterion_group, criterion_main, Criterion};

use agemul::{run_engine, run_fixed_latency, EngineConfig};
use agemul_bench::Fixture;

fn bench_engine_replay(c: &mut Criterion) {
    let fixture = Fixture::column_bypass_16(4_096);
    let mut g = c.benchmark_group("engine");

    g.bench_function("adaptive_replay_4096", |b| {
        let cfg = EngineConfig::adaptive(0.95, 7);
        b.iter(|| run_engine(&fixture.profile, &cfg))
    });
    g.bench_function("traditional_replay_4096", |b| {
        let cfg = EngineConfig::traditional(0.95, 7);
        b.iter(|| run_engine(&fixture.profile, &cfg))
    });
    g.bench_function("fixed_latency_4096", |b| {
        b.iter(|| run_fixed_latency(4_096, 1.734))
    });
    // A full Fig. 13-style sweep: 15 periods × 3 skips, two engines each.
    g.bench_function("fig13_style_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for step in 0..15 {
                let period = 0.60 + 0.05 * f64::from(step);
                for skip in [7u32, 8, 9] {
                    acc += run_engine(&fixture.profile, &EngineConfig::adaptive(period, skip))
                        .avg_latency_ns();
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine_replay);
criterion_main!(benches);
