//! Profiling-path throughput: event-driven vs levelized vs memoized.
//!
//! The tentpole comparison for the levelized timing kernel. The `profile`
//! group measures the full pipeline (`MultiplierDesign::profile`) per
//! engine plus the `ProfileCache` hit path; the `level_sim` group strips
//! it to raw kernel stepping over a pre-encoded workload, isolating the
//! scheduler from encode/verify overhead.
//!
//! Run with `cargo bench -p agemul-bench --bench profile`; set
//! `CRITERION_JSON=<file>` to append machine-readable results (see
//! `BENCH_sim.json` at the workspace root).

use criterion::{criterion_group, criterion_main, Criterion};

use agemul::{
    calibrated_delay_model, LaneWidth, MultiplierDesign, PatternSet, ProfileCache, SimEngine,
};
use agemul_circuits::{MultiplierCircuit, MultiplierKind};
use agemul_logic::Logic;
use agemul_netlist::{DelayAssignment, EventSim, LevelSim};

const CASES: [(&str, MultiplierKind, usize); 4] = [
    ("CB16", MultiplierKind::ColumnBypass, 16),
    ("RB16", MultiplierKind::RowBypass, 16),
    ("CB32", MultiplierKind::ColumnBypass, 32),
    ("RB32", MultiplierKind::RowBypass, 32),
];

const OPS: usize = 256;

/// Full profiling pipeline over 256 operand pairs: functional sweep,
/// delay assignment, settle, and one two-vector timed step per pair.
/// `_event` runs the priority-queue reference, the unsuffixed row the
/// levelized default, and `_cached` replays through a pre-warmed
/// [`ProfileCache`] (pure hit: no gate-level simulation at all).
fn bench_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("profile");
    g.sample_size(10);
    for (label, kind, width) in CASES {
        let design = MultiplierDesign::new(kind, width).unwrap();
        let patterns = PatternSet::uniform(width, OPS, 7);
        let pairs = patterns.pairs();

        g.bench_function(format!("{label}_event"), |b| {
            b.iter(|| {
                design
                    .profile_with_engine(pairs, None, SimEngine::Event)
                    .unwrap()
            })
        });
        g.bench_function(label, |b| {
            b.iter(|| {
                design
                    .profile_with_engine(pairs, None, SimEngine::Level)
                    .unwrap()
            })
        });

        let cache = ProfileCache::new();
        cache.profile(&design, pairs, None).unwrap();
        g.bench_function(format!("{label}_cached"), |b| {
            b.iter(|| cache.profile(&design, pairs, None).unwrap())
        });

        // The wide-lane batch kernel under profiling's functional
        // verification sweep: 64, 256, and 512 lanes per block.
        for lanes in LaneWidth::ALL {
            g.bench_function(format!("{label}_verify_wide{}", lanes.lanes()), |b| {
                b.iter(|| design.verify_functional_wide(pairs, lanes).unwrap())
            });
        }
    }
    g.finish();
}

/// Raw kernel stepping: 256 pre-encoded two-vector transitions through
/// each timing kernel, no encode or functional-verification overhead.
fn bench_level_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("level_sim");
    g.sample_size(10);
    for (label, kind, width) in CASES {
        let m = MultiplierCircuit::generate(kind, width).unwrap();
        let topo = m.netlist().topology().unwrap();
        let delays = DelayAssignment::uniform(m.netlist(), calibrated_delay_model());
        let encoded: Vec<Vec<Logic>> = PatternSet::uniform(width, OPS, 7)
            .pairs()
            .iter()
            .map(|&(a, b)| m.encode_inputs(a, b).unwrap())
            .collect();
        let zeros = m.encode_inputs(0, 0).unwrap();

        g.bench_function(format!("{label}_event{OPS}"), |b| {
            b.iter(|| {
                let mut sim = EventSim::new(m.netlist(), &topo, delays.clone());
                sim.settle(&zeros).unwrap();
                let mut worst = 0.0f64;
                for p in &encoded {
                    worst = worst.max(sim.step(p).unwrap().delay_ns);
                }
                worst
            })
        });
        g.bench_function(format!("{label}_level{OPS}"), |b| {
            b.iter(|| {
                let mut sim = LevelSim::new(m.netlist(), &topo, delays.clone());
                sim.settle(&zeros).unwrap();
                let mut worst = 0.0f64;
                for p in &encoded {
                    worst = worst.max(sim.step(p).unwrap().delay_ns);
                }
                worst
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_profile, bench_level_sim);
criterion_main!(benches);
