//! Fleet discrete-event campaign throughput: operations simulated per
//! second as the datacenter scales out.
//!
//! Each row runs one full seeded campaign — per-node corner profiling,
//! epoch trace generation, event-queue routing, AHL judging, and the
//! event-log replay witness — on the levelized kernel. The
//! `fleet_run_*nodes` rows scale the node count at a fixed per-epoch
//! operation budget, so the profiling sweeps (one per node per epoch)
//! dominate and the scaling is expected slightly superlinear in wall
//! time; the `fleet_policy_*` pair holds the fleet shape fixed and
//! isolates the routing-policy overhead (aging-aware consults every
//! node's profile each epoch, round-robin none).
//!
//! Campaign construction (cycle anchoring profiles the fresh design) is
//! hoisted outside the timed region; each iteration replays the
//! campaign from a fresh [`FleetSim`], which is the reproducibility
//! contract's unit of work.
//!
//! Run with `cargo bench -p agemul-bench --bench fleet`; set
//! `CRITERION_JSON=<file>` to record machine-readable results (see
//! `BENCH_sim.json` at the workspace root).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use agemul::{MultiplierDesign, SimEngine};
use agemul_aging::BtiModel;
use agemul_circuits::MultiplierKind;
use agemul_fleet::{FleetCampaign, FleetConfig, FleetPolicy, FleetSim, RoutingPolicy};
use agemul_logic::Technology;

/// Operations routed per epoch in every row.
const OPS: usize = 48;

/// Epochs per campaign in every row.
const EPOCHS: usize = 2;

/// The workspace's calibrated per-gate seven-year factor target (see
/// `agemul-repro`'s context calibration).
const GATE_7Y_FACTOR: f64 = 1.132;

fn config(nodes: usize, routing: RoutingPolicy) -> FleetConfig {
    let mut config = FleetConfig::new(nodes, EPOCHS, OPS, 0x0A6E_0005);
    config.years_per_epoch = 1.0;
    config.policy = FleetPolicy::baseline(routing);
    config
}

fn bench_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    let bti = BtiModel::calibrated(Technology::ptm_32nm_hk(), GATE_7Y_FACTOR);
    let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8).unwrap();

    // Scale-out: node count is the profiling-sweep multiplier.
    for nodes in [2usize, 4, 8] {
        let campaign =
            FleetCampaign::new(&design, &bti, config(nodes, RoutingPolicy::AgingAware)).unwrap();
        g.bench_function(format!("fleet_run_{nodes}nodes"), |b| {
            b.iter(|| {
                let mut sim = FleetSim::new(&campaign);
                black_box(sim.run(SimEngine::Level, None).unwrap())
            })
        });
    }

    // Policy overhead at a fixed fleet shape.
    for routing in [RoutingPolicy::RoundRobin, RoutingPolicy::AgingAware] {
        let campaign = FleetCampaign::new(&design, &bti, config(4, routing)).unwrap();
        g.bench_function(format!("fleet_policy_{}", routing.label()), |b| {
            b.iter(|| {
                let mut sim = FleetSim::new(&campaign);
                black_box(sim.run(SimEngine::Level, None).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
