//! Shared fixtures for the `agemul` Criterion benches.
//!
//! The benches live in `benches/`:
//!
//! * `simulator` — microbenches of the substrate: netlist generation,
//!   topology validation, functional evaluation, event-driven stepping,
//!   static timing analysis.
//! * `engine` — the architecture hot path: profile replay through the
//!   variable-latency engine under the paper's configurations.
//! * `experiments` — end-to-end regeneration of the cheap paper artifacts
//!   (Tables I/II, Figs. 9/10, Fig. 25) plus profile-building throughput,
//!   which dominates every heavier figure.
//! * `ablations` — design-choice sweeps called out in `DESIGN.md`: skip
//!   number, aging-indicator threshold and stickiness, Razor penalty and
//!   detection window, and adaptive-vs-traditional hold logic.
//! * `faults` — fault-campaign throughput: lane-masked logic-fault
//!   preparation, per-delay-fault profiling, and sweep-point replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use agemul::{MultiplierDesign, PatternProfile, PatternSet};
use agemul_circuits::MultiplierKind;

/// A ready-to-replay 16×16 column-bypassing fixture shared by the benches.
pub struct Fixture {
    /// The design under test.
    pub design: MultiplierDesign,
    /// A profiled uniform workload.
    pub profile: PatternProfile,
    /// The workload itself.
    pub patterns: PatternSet,
}

impl Fixture {
    /// Builds the standard fixture: 16×16 CB, `count` uniform patterns.
    ///
    /// # Panics
    ///
    /// Panics if generation or profiling fails (benches treat that as a
    /// broken workspace).
    pub fn column_bypass_16(count: usize) -> Self {
        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)
            .expect("16 is a supported width");
        let patterns = PatternSet::uniform(16, count, 0xBE7C);
        let profile = design
            .profile(patterns.pairs(), None)
            .expect("profiling a valid workload succeeds");
        Fixture {
            design,
            profile,
            patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let f = Fixture::column_bypass_16(32);
        assert_eq!(f.profile.len(), 32);
        assert_eq!(f.patterns.len(), 32);
    }
}
