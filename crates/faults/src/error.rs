//! Campaign error type.

use agemul::CoreError;
use agemul_circuits::CircuitError;
use agemul_netlist::NetlistError;

/// Errors raised while preparing or running a fault campaign.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultError {
    /// A design-level operation (profiling, delay assignment) failed.
    Core(CoreError),
    /// A netlist-level operation (overlay, simulation) failed.
    Netlist(NetlistError),
    /// Operand encoding failed.
    Circuit(CircuitError),
    /// A fault specification is malformed for the target design.
    InvalidSpec {
        /// The offending fault's display label.
        label: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Core(e) => write!(f, "design operation failed: {e}"),
            FaultError::Netlist(e) => write!(f, "netlist operation failed: {e}"),
            FaultError::Circuit(e) => write!(f, "operand encoding failed: {e}"),
            FaultError::InvalidSpec { label, reason } => {
                write!(f, "invalid fault spec {label}: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Core(e) => Some(e),
            FaultError::Netlist(e) => Some(e),
            FaultError::Circuit(e) => Some(e),
            FaultError::InvalidSpec { .. } => None,
        }
    }
}

impl From<CoreError> for FaultError {
    fn from(e: CoreError) -> Self {
        FaultError::Core(e)
    }
}

impl From<NetlistError> for FaultError {
    fn from(e: NetlistError) -> Self {
        FaultError::Netlist(e)
    }
}

impl From<CircuitError> for FaultError {
    fn from(e: CircuitError) -> Self {
        FaultError::Circuit(e)
    }
}
