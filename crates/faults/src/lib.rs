//! Gate-level fault-injection campaigns for the aging-aware multiplier.
//!
//! The paper's resilience argument rests on two mechanisms: Razor
//! flip-flops catch *late* transitions, and the AHL re-tunes the cycle
//! prediction once errors accumulate. This crate stress-tests that
//! argument by injecting faults into the gate-level simulation and
//! classifying what the architecture does with each one:
//!
//! * **masked** — the fault never reaches an observable output (logic
//!   faults) or never produces a new timing violation (delay faults);
//! * **detected** — the fault manifests as late transitions inside the
//!   Razor shadow window, so every corrupted operation is caught and
//!   re-executed, and the AHL sees the error stream;
//! * **silent** — the fault corrupts results without tripping Razor:
//!   stable-but-wrong values from stuck-at/flip faults (Razor only
//!   watches transition *timing*), or transitions landing beyond a
//!   shrunken shadow window.
//!
//! # Fault model
//!
//! [`FaultSpec`] covers three families, mirroring the classic gate-level
//! taxonomy specialized to BTI-era failure modes:
//!
//! * [`FaultSpec::StuckAt0`] / [`FaultSpec::StuckAt1`] — a net
//!   permanently pinned, the end state of a worn-out driver;
//! * [`FaultSpec::Transient`] — a single-operation bit-flip (SEU-style
//!   soft error) on one net;
//! * [`FaultSpec::Delay`] — one gate's propagation delay inflated by a
//!   factor, modeling a localized BTI hot spot long before it becomes a
//!   hard failure.
//!
//! Logic faults are injected through
//! [`FaultOverlay`](agemul_netlist::FaultOverlay) lane masks, so one
//! bit-parallel [`BatchSim`](agemul_netlist::BatchSim) sweep evaluates up
//! to 64 faulty circuit variants at once; delay faults get a private
//! event-driven timing profile via
//! [`DelayAssignment::inflate`](agemul_netlist::DelayAssignment::inflate).
//!
//! # Workflow
//!
//! ```no_run
//! use agemul::{EngineConfig, MultiplierDesign, PatternSet};
//! use agemul_circuits::MultiplierKind;
//! use agemul_faults::{Campaign, FaultSpec};
//!
//! let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 16)?;
//! let patterns = PatternSet::uniform(16, 2_000, 42);
//! let faults = FaultSpec::sample(&design, patterns.pairs().len(), 24, 7);
//!
//! // Expensive, config-independent: one baseline profile + one simulation
//! // per fault family.
//! let campaign = Campaign::prepare(&design, patterns.pairs(), &faults)?;
//!
//! // Cheap replays: sweep engine configs over the same prepared evidence.
//! let report = campaign.run(&EngineConfig::adaptive(0.95, 7));
//! println!("{report}");
//! println!("{}", report.to_json());
//! # Ok::<(), agemul_faults::FaultError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod error;
mod report;
mod spec;

pub use campaign::{prepare_baseline, prepare_fault, Campaign, FaultEvidence};
pub use error::FaultError;
pub use report::{CampaignReport, FaultClass, FaultOutcome};
pub use spec::FaultSpec;
