//! Fault specifications and deterministic campaign sampling.

use agemul::MultiplierDesign;
use agemul_netlist::{GateId, NetId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One injectable fault.
///
/// The three families cover the gate-level taxonomy the campaign
/// classifies (see the crate docs): permanent logic faults, transient
/// single-operation upsets, and localized timing degradation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpec {
    /// `net` reads as a constant `0` for the whole workload.
    StuckAt0 {
        /// The pinned net.
        net: NetId,
    },
    /// `net` reads as a constant `1` for the whole workload.
    StuckAt1 {
        /// The pinned net.
        net: NetId,
    },
    /// `net` is inverted for exactly one operation (0-based index into the
    /// workload) — a single-cycle soft error. An `op` beyond the workload
    /// never fires, which classifies as masked.
    Transient {
        /// The flipped net.
        net: NetId,
        /// 0-based operation index at which the flip is live.
        op: usize,
    },
    /// One gate's propagation delay is multiplied by `factor` — a
    /// localized BTI hot spot ([`DelayAssignment::inflate`]).
    ///
    /// [`DelayAssignment::inflate`]: agemul_netlist::DelayAssignment::inflate
    Delay {
        /// The slowed gate.
        gate: GateId,
        /// Multiplicative delay factor (finite, `> 0`).
        factor: f64,
    },
    /// Test-only poison case: evaluating it panics unconditionally.
    ///
    /// Exists so panic-isolation machinery (the `agemul-harness`
    /// supervisor's quarantine ledger) can be exercised end to end with a
    /// genuine unwinding worker. Never emitted by [`sample`]
    /// (FaultSpec::sample); classified as a logic fault so it rides the
    /// functional evaluation path, where the panic fires.
    ///
    /// [`sample`]: FaultSpec::sample
    PanicForTest,
}

impl FaultSpec {
    /// `true` for the functionally evaluated families (stuck-at and
    /// transient); `false` for delay faults, which are timing-only.
    #[inline]
    pub fn is_logic(&self) -> bool {
        !matches!(self, FaultSpec::Delay { .. })
    }

    /// Compact display label used in reports and error messages, e.g.
    /// `sa0@n17`, `flip@n4#op120`, `slow@g33x1.60`.
    pub fn label(&self) -> String {
        match self {
            FaultSpec::StuckAt0 { net } => format!("sa0@n{}", net.index()),
            FaultSpec::StuckAt1 { net } => format!("sa1@n{}", net.index()),
            FaultSpec::Transient { net, op } => format!("flip@n{}#op{op}", net.index()),
            FaultSpec::Delay { gate, factor } => {
                format!("slow@g{}x{factor:.2}", gate.index())
            }
            FaultSpec::PanicForTest => "poison".to_string(),
        }
    }

    /// Samples a deterministic campaign of `count` faults for `design`,
    /// cycling through the four families (stuck-at-0, stuck-at-1,
    /// transient, delay) so every family is represented.
    ///
    /// Nets, gates, transient operations (`0..ops`), and delay factors
    /// (1.10–2.09×) are drawn from a seeded [`StdRng`], so the same
    /// `(design, ops, count, seed)` always yields the same campaign — the
    /// property the committed repro tables rely on.
    pub fn sample(design: &MultiplierDesign, ops: usize, count: usize, seed: u64) -> Vec<Self> {
        let netlist = design.circuit().netlist();
        let nets = netlist.net_count();
        let gates = netlist.gate_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = Vec::with_capacity(count);
        for i in 0..count {
            let net = NetId::from_index(rng.gen::<u64>() as usize % nets.max(1));
            let gate = GateId::from_index(rng.gen::<u64>() as usize % gates.max(1));
            let op = rng.gen::<u64>() as usize % ops.max(1);
            let factor = 1.10 + (rng.gen::<u64>() % 100) as f64 / 100.0;
            faults.push(match i % 4 {
                0 => FaultSpec::StuckAt0 { net },
                1 => FaultSpec::StuckAt1 { net },
                2 => FaultSpec::Transient { net, op },
                _ => FaultSpec::Delay { gate, factor },
            });
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    use agemul_circuits::MultiplierKind;

    use super::*;

    #[test]
    fn labels_are_compact_and_unique_per_site() {
        let a = FaultSpec::StuckAt0 {
            net: NetId::from_index(17),
        };
        let b = FaultSpec::StuckAt1 {
            net: NetId::from_index(17),
        };
        let c = FaultSpec::Transient {
            net: NetId::from_index(4),
            op: 120,
        };
        let d = FaultSpec::Delay {
            gate: GateId::from_index(33),
            factor: 1.6,
        };
        assert_eq!(a.label(), "sa0@n17");
        assert_eq!(b.label(), "sa1@n17");
        assert_eq!(c.label(), "flip@n4#op120");
        assert_eq!(d.label(), "slow@g33x1.60");
        assert!(a.is_logic() && b.is_logic() && c.is_logic());
        assert!(!d.is_logic());
    }

    #[test]
    fn sampling_is_deterministic_and_covers_all_families() {
        let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 4).unwrap();
        let s1 = FaultSpec::sample(&design, 100, 16, 0xF00D);
        let s2 = FaultSpec::sample(&design, 100, 16, 0xF00D);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 16);
        assert_eq!(s1.iter().filter(|f| !f.is_logic()).count(), 4);
        let other = FaultSpec::sample(&design, 100, 16, 0xBEEF);
        assert_ne!(s1, other);
        // Every sampled site is in range for the design.
        let nets = design.circuit().netlist().net_count();
        let gate_count = design.circuit().netlist().gate_count();
        for f in &s1 {
            match f {
                FaultSpec::StuckAt0 { net } | FaultSpec::StuckAt1 { net } => {
                    assert!(net.index() < nets)
                }
                FaultSpec::Transient { net, op } => {
                    assert!(net.index() < nets && *op < 100)
                }
                FaultSpec::Delay { gate, factor } => {
                    assert!(gate.index() < gate_count);
                    assert!((1.10..2.10).contains(factor));
                }
                FaultSpec::PanicForTest => {
                    panic!("sample must never emit the poison case")
                }
            }
        }
    }
}
