//! Machine-readable campaign reports.

/// The campaign taxonomy: what the architecture did with one fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// The fault never became observable: no corrupted product (logic
    /// faults) / no new timing violation (delay faults).
    Masked,
    /// The fault surfaced as Razor-detected timing errors — every affected
    /// operation was caught and re-executed, and the AHL saw the error
    /// stream. Only delay faults can earn this class: Razor watches
    /// transition timing, not values.
    Detected,
    /// The fault corrupted results without tripping Razor: a
    /// stable-but-wrong product (stuck-at/flip), or a transition past the
    /// shadow window.
    Silent,
}

impl FaultClass {
    /// Lower-case display/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Masked => "masked",
            FaultClass::Detected => "detected",
            FaultClass::Silent => "silent",
        }
    }
}

/// One fault's classification under one engine configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultOutcome {
    /// The fault's display label (see `FaultSpec::label`).
    pub label: String,
    /// The classification.
    pub class: FaultClass,
    /// Operations whose product deviated from `a × b` (logic faults; zero
    /// for delay faults, which never corrupt values).
    pub corrupted_ops: u64,
    /// 0-based workload index of the first corrupted operation, if any.
    pub first_corrupted_op: Option<u64>,
    /// Razor-detected errors beyond the fault-free baseline's (delay
    /// faults).
    pub excess_errors: u64,
    /// Undetected timing violations beyond the baseline's (delay faults
    /// under a shrunken shadow window).
    pub excess_undetected: u64,
    /// 1-based operation at which the AHL's aging indicator engaged under
    /// this fault, if it did — the adaptation latency observable.
    pub aged_at_op: Option<u64>,
    /// Average-latency overhead vs the fault-free baseline, percent
    /// (re-execution penalties plus any re-tuned two-cycle predictions).
    pub latency_overhead_pct: f64,
}

/// A full campaign classification: configuration echo, baseline anchors,
/// and one [`FaultOutcome`] per injected fault (in injection order).
///
/// Derives `PartialEq` so the serial-vs-parallel identity guarantee is
/// directly assertable on whole reports.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// Multiplier architecture label (e.g. `CB`, `RB`).
    pub kind: String,
    /// Operand width in bits.
    pub width: usize,
    /// Workload length (operations per fault).
    pub operations: u64,
    /// Engine clock period, nanoseconds.
    pub cycle_ns: f64,
    /// Engine skip threshold.
    pub skip: u32,
    /// Razor shadow window as a fraction of the cycle.
    pub window_factor: f64,
    /// Adaptive (two judging blocks) vs traditional hold logic.
    pub adaptive: bool,
    /// Razor errors of the fault-free baseline replay.
    pub baseline_errors: u64,
    /// Average latency of the fault-free baseline replay, nanoseconds.
    pub baseline_avg_latency_ns: f64,
    /// Per-fault classifications, in injection order.
    pub outcomes: Vec<FaultOutcome>,
    /// Labels of faults whose evaluation was quarantined (panicked or
    /// exhausted its deadline budget under a supervisor) and therefore
    /// produced no [`FaultOutcome`], in injection order. Empty for
    /// unsupervised campaigns.
    pub quarantined: Vec<String>,
}

impl CampaignReport {
    /// Number of faults classified [`FaultClass::Masked`].
    pub fn masked(&self) -> usize {
        self.count(FaultClass::Masked)
    }

    /// Number of faults classified [`FaultClass::Detected`].
    pub fn detected(&self) -> usize {
        self.count(FaultClass::Detected)
    }

    /// Number of faults classified [`FaultClass::Silent`].
    pub fn silent(&self) -> usize {
        self.count(FaultClass::Silent)
    }

    /// Number of faults quarantined without an outcome (supervised runs).
    pub fn quarantined(&self) -> usize {
        self.quarantined.len()
    }

    fn count(&self, class: FaultClass) -> usize {
        self.outcomes.iter().filter(|o| o.class == class).count()
    }

    /// Detection coverage over the faults that *manifested*:
    /// `detected / (detected + silent)`. Masked faults are excluded — the
    /// architecture was never asked to catch them. Reports `1.0` when no
    /// fault manifested.
    pub fn coverage(&self) -> f64 {
        let detected = self.detected();
        let manifested = detected + self.silent();
        if manifested == 0 {
            1.0
        } else {
            detected as f64 / manifested as f64
        }
    }

    /// Serializes the report as a single JSON object (hand-rolled — the
    /// workspace carries no serde). All labels are machine-generated
    /// ASCII, so no string escaping is required.
    pub fn to_json(&self) -> String {
        fn opt(v: Option<u64>) -> String {
            v.map_or_else(|| "null".to_string(), |x| x.to_string())
        }
        let mut s = String::with_capacity(256 + 160 * self.outcomes.len());
        s.push_str(&format!(
            "{{\"kind\":\"{}\",\"width\":{},\"operations\":{},\"cycle_ns\":{},\
             \"skip\":{},\"window_factor\":{},\"adaptive\":{},\
             \"baseline_errors\":{},\"baseline_avg_latency_ns\":{},\
             \"summary\":{{\"masked\":{},\"detected\":{},\"silent\":{},\
             \"quarantined\":{},\"coverage\":{}}},\
             \"quarantined\":[{}],\
             \"faults\":[",
            self.kind,
            self.width,
            self.operations,
            self.cycle_ns,
            self.skip,
            self.window_factor,
            self.adaptive,
            self.baseline_errors,
            self.baseline_avg_latency_ns,
            self.masked(),
            self.detected(),
            self.silent(),
            self.quarantined(),
            self.coverage(),
            self.quarantined
                .iter()
                .map(|l| format!("\"{l}\""))
                .collect::<Vec<_>>()
                .join(","),
        ));
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"label\":\"{}\",\"class\":\"{}\",\"corrupted_ops\":{},\
                 \"first_corrupted_op\":{},\"excess_errors\":{},\"excess_undetected\":{},\
                 \"aged_at_op\":{},\"latency_overhead_pct\":{}}}",
                o.label,
                o.class.label(),
                o.corrupted_ops,
                opt(o.first_corrupted_op),
                o.excess_errors,
                o.excess_undetected,
                opt(o.aged_at_op),
                o.latency_overhead_pct,
            ));
        }
        s.push_str("]}");
        s
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fault campaign: {} {}x{} | period {} ns, skip {}, window {}x, {} | {} ops/fault",
            self.kind,
            self.width,
            self.width,
            self.cycle_ns,
            self.skip,
            self.window_factor,
            if self.adaptive {
                "adaptive"
            } else {
                "traditional"
            },
            self.operations,
        )?;
        writeln!(
            f,
            "  {} faults: {} masked, {} detected, {} silent, {} quarantined (coverage {:.0}%)",
            self.outcomes.len() + self.quarantined.len(),
            self.masked(),
            self.detected(),
            self.silent(),
            self.quarantined(),
            100.0 * self.coverage(),
        )?;
        for o in &self.outcomes {
            writeln!(
                f,
                "  {:<18} {:<9} corrupted {:<5} err +{:<5} undet +{:<4} aged@{:<6} lat {:+.2}%",
                o.label,
                o.class.label(),
                o.corrupted_ops,
                o.excess_errors,
                o.excess_undetected,
                o.aged_at_op.map_or_else(|| "-".into(), |x| x.to_string()),
                o.latency_overhead_pct,
            )?;
        }
        for l in &self.quarantined {
            writeln!(f, "  {l:<18} quarantined (no outcome)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(label: &str, class: FaultClass) -> FaultOutcome {
        FaultOutcome {
            label: label.to_string(),
            class,
            corrupted_ops: 0,
            first_corrupted_op: None,
            excess_errors: 0,
            excess_undetected: 0,
            aged_at_op: None,
            latency_overhead_pct: 0.0,
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            kind: "CB".to_string(),
            width: 16,
            operations: 100,
            cycle_ns: 0.95,
            skip: 7,
            window_factor: 1.0,
            adaptive: true,
            baseline_errors: 2,
            baseline_avg_latency_ns: 1.25,
            outcomes: vec![
                outcome("sa0@n1", FaultClass::Masked),
                outcome("sa1@n2", FaultClass::Silent),
                outcome("slow@g3x1.50", FaultClass::Detected),
                outcome("slow@g4x1.80", FaultClass::Detected),
            ],
            quarantined: Vec::new(),
        }
    }

    #[test]
    fn counts_and_coverage() {
        let r = report();
        assert_eq!((r.masked(), r.detected(), r.silent()), (1, 2, 1));
        assert!((r.coverage() - 2.0 / 3.0).abs() < 1e-12);

        let empty = CampaignReport {
            outcomes: Vec::new(),
            ..report()
        };
        assert_eq!(empty.coverage(), 1.0);
    }

    #[test]
    fn json_is_well_formed() {
        let r = report();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches("\"label\"").count(), 4);
        assert!(
            j.contains("\"summary\":{\"masked\":1,\"detected\":2,\"silent\":1,\"quarantined\":0")
        );
        assert!(j.contains("\"first_corrupted_op\":null"));
        // Balanced braces/brackets — a cheap structural check without a
        // JSON parser in the workspace.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn display_lists_every_fault() {
        let r = report();
        let text = r.to_string();
        assert_eq!(text.lines().count(), 2 + r.outcomes.len());
        assert!(text.contains("coverage 67%"));
    }

    #[test]
    fn quarantined_faults_are_counted_and_serialized() {
        let mut r = report();
        r.quarantined = vec!["poison".to_string(), "slow@g9x1.40".to_string()];
        assert_eq!(r.quarantined(), 2);
        // Quarantined faults carry no outcome, so the classification
        // counters and coverage are unchanged.
        assert_eq!((r.masked(), r.detected(), r.silent()), (1, 2, 1));
        assert!((r.coverage() - 2.0 / 3.0).abs() < 1e-12);

        let j = r.to_json();
        assert!(j.contains("\"quarantined\":2"));
        assert!(j.contains("\"quarantined\":[\"poison\",\"slow@g9x1.40\"]"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());

        let text = r.to_string();
        assert!(text.contains("2 quarantined"));
        assert!(text.contains("poison"));
        assert_eq!(text.lines().count(), 2 + r.outcomes.len() + 2);
    }
}
