//! Campaign preparation (the simulations) and replay (the classification).

use std::collections::VecDeque;

use agemul::{
    run_engine_traced, CancelToken, EngineConfig, MultiplierDesign, PatternProfile, ProfileCache,
    SimEngine,
};
use agemul_netlist::{BatchSim, FaultKind, FaultOverlay, GateId};

use crate::report::{CampaignReport, FaultClass, FaultOutcome};
use crate::{FaultError, FaultSpec};

/// A prepared fault campaign: the fault-free baseline profile plus one
/// piece of simulation evidence per injected fault.
///
/// Preparation ([`Campaign::prepare`]) does all the expensive,
/// engine-config-independent work once:
///
/// * the **baseline** timing profile of the fault-free design over the
///   workload (one event-driven simulation);
/// * **logic faults** (stuck-at, transient) evaluated functionally in
///   lane-masked [`BatchSim`] chunks — up to 64 faulty variants per
///   bit-parallel sweep — counting operations whose product deviates from
///   `a × b`;
/// * **delay faults** re-profiled with the levelized timing kernel under
///   the inflated gate delay ([`MultiplierDesign::profile_with_delays`]),
///   optionally memoized through a [`ProfileCache`]
///   ([`Campaign::prepare_cached`]).
///
/// [`Campaign::run`] then replays that evidence through the
/// variable-latency engine under any [`EngineConfig`] — sweeping skip
/// numbers or Razor windows costs no further gate-level simulation.
#[derive(Clone, Debug)]
pub struct Campaign {
    baseline: PatternProfile,
    entries: Vec<(FaultSpec, FaultEvidence)>,
    quarantined: Vec<String>,
}

/// Config-independent simulation evidence for one fault.
///
/// Public so supervised runners (the `agemul-harness` crate) can evaluate
/// faults case by case — [`prepare_fault`] produces one `FaultEvidence`,
/// checkpoints serialize it, and [`Campaign::assemble`] stitches recovered
/// evidence back into a replayable campaign.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvidence {
    /// Functional evaluation of a stuck-at/transient fault.
    Logic {
        /// Operations whose product deviated from `a × b`.
        corrupted_ops: u64,
        /// 0-based workload index of the first corrupted operation.
        first_corrupted_op: Option<u64>,
    },
    /// Timing profile under an inflated gate delay.
    Delay {
        /// The re-profiled workload.
        profile: PatternProfile,
    },
}

/// One unit of preparation work, sized for fan-out.
enum Task {
    /// Up to 64 logic faults sharing one lane-masked batch sweep.
    Chunk(Vec<FaultSpec>),
    /// One delay fault's private timing profile.
    Delay(GateId, f64),
}

/// The result of one [`Task`].
enum TaskOut {
    Chunk(Vec<(u64, Option<u64>)>),
    Delay(PatternProfile),
}

impl Campaign {
    /// Prepares a campaign: baseline profile plus per-fault evidence.
    ///
    /// With the `parallel` feature the per-fault simulations (logic chunks
    /// and delay profiles) fan out across threads; results are reassembled
    /// in fault order, so the prepared campaign — and every report derived
    /// from it — is bit-identical to [`prepare_serial`](Self::prepare_serial).
    ///
    /// An empty `faults` slice yields a campaign whose baseline is exactly
    /// `design.profile(pairs, None)` and whose reports carry no outcomes —
    /// the zero-fault identity the property tests pin down.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidSpec`] for out-of-range fault sites or
    /// non-finite/non-positive delay factors, and propagates simulation
    /// failures.
    pub fn prepare(
        design: &MultiplierDesign,
        pairs: &[(u64, u64)],
        faults: &[FaultSpec],
    ) -> Result<Self, FaultError> {
        Self::prepare_impl(design, pairs, faults, true, None)
    }

    /// [`prepare`](Self::prepare) forced down the serial path — the
    /// reference implementation the parallel fan-out must match
    /// bit-for-bit (regression-tested under the `parallel` feature).
    pub fn prepare_serial(
        design: &MultiplierDesign,
        pairs: &[(u64, u64)],
        faults: &[FaultSpec],
    ) -> Result<Self, FaultError> {
        Self::prepare_impl(design, pairs, faults, false, None)
    }

    /// [`prepare`](Self::prepare) consulting a [`ProfileCache`] for the
    /// baseline and every delay-fault profile.
    ///
    /// Delay-fault evidence is a full re-profile of the workload under one
    /// inflated gate delay; across campaigns that share a workload (skip
    /// sweeps, Razor-window sweeps, repeated what-if runs) the same
    /// (gate, factor) sites recur, and the cache keys them exactly by the
    /// inflated assignment's fingerprint — see the crate's
    /// re-profiling-cache notes in `EXPERIMENTS.md`. The prepared campaign
    /// is bit-identical to an uncached [`prepare`](Self::prepare): cache
    /// hits return profiles produced by the very same simulation the miss
    /// path would run.
    ///
    /// Logic-fault evidence (corruption counts from lane-masked functional
    /// sweeps) is not a profile and is never cached.
    ///
    /// # Errors
    ///
    /// Same contract as [`prepare`](Self::prepare).
    pub fn prepare_cached(
        design: &MultiplierDesign,
        pairs: &[(u64, u64)],
        faults: &[FaultSpec],
        cache: &ProfileCache,
    ) -> Result<Self, FaultError> {
        Self::prepare_impl(design, pairs, faults, true, Some(cache))
    }

    fn prepare_impl(
        design: &MultiplierDesign,
        pairs: &[(u64, u64)],
        faults: &[FaultSpec],
        parallel: bool,
        cache: Option<&ProfileCache>,
    ) -> Result<Self, FaultError> {
        validate(design, faults)?;
        let baseline = match cache {
            Some(c) => {
                let delays = design.delay_assignment(None)?;
                let profile = c.get_or_insert_with(design, &delays, pairs, || {
                    design.profile(pairs, None).map_err(FaultError::from)
                })?;
                PatternProfile::clone(&profile)
            }
            None => design.profile(pairs, None)?,
        };

        let logic: Vec<FaultSpec> = faults.iter().filter(|f| f.is_logic()).copied().collect();
        let mut tasks: Vec<Task> = logic
            .chunks(BatchSim::LANES)
            .map(|c| Task::Chunk(c.to_vec()))
            .collect();
        for f in faults {
            if let FaultSpec::Delay { gate, factor } = *f {
                tasks.push(Task::Delay(gate, factor));
            }
        }

        let outs = run_tasks(design, pairs, &tasks, parallel, cache)?;
        let mut logic_out: VecDeque<(u64, Option<u64>)> = VecDeque::new();
        let mut delay_out: VecDeque<PatternProfile> = VecDeque::new();
        for out in outs {
            match out {
                TaskOut::Chunk(rows) => logic_out.extend(rows),
                TaskOut::Delay(profile) => delay_out.push_back(profile),
            }
        }

        let entries = faults
            .iter()
            .map(|&spec| {
                let evidence = if spec.is_logic() {
                    let (corrupted_ops, first_corrupted_op) = logic_out
                        .pop_front()
                        .expect("one logic result per logic fault");
                    FaultEvidence::Logic {
                        corrupted_ops,
                        first_corrupted_op,
                    }
                } else {
                    FaultEvidence::Delay {
                        profile: delay_out.pop_front().expect("one profile per delay fault"),
                    }
                };
                (spec, evidence)
            })
            .collect();
        Ok(Campaign {
            baseline,
            entries,
            quarantined: Vec::new(),
        })
    }

    /// Reassembles a campaign from per-case evidence produced by
    /// [`prepare_baseline`] and [`prepare_fault`] — the reconstruction path
    /// for supervised runs, where each case was evaluated (and possibly
    /// checkpointed, retried, or quarantined) independently.
    ///
    /// `quarantined` lists the labels of faults that produced no evidence;
    /// they surface in every [`run`](Self::run) report's `quarantined`
    /// ledger but contribute no [`FaultOutcome`].
    ///
    /// Evidence produced by the per-case entry points is bit-identical to
    /// what [`prepare`](Self::prepare) computes for the same fault, so an
    /// assembled campaign with no quarantined cases replays identically to
    /// an unsupervised one.
    pub fn assemble(
        baseline: PatternProfile,
        entries: Vec<(FaultSpec, FaultEvidence)>,
        quarantined: Vec<String>,
    ) -> Self {
        Campaign {
            baseline,
            entries,
            quarantined,
        }
    }

    /// The prepared per-fault evidence, in injection order.
    #[inline]
    pub fn entries(&self) -> &[(FaultSpec, FaultEvidence)] {
        &self.entries
    }

    /// Labels of faults quarantined without evidence (supervised runs).
    #[inline]
    pub fn quarantined_labels(&self) -> &[String] {
        &self.quarantined
    }

    /// The fault-free baseline profile the campaign classifies against.
    #[inline]
    pub fn baseline(&self) -> &PatternProfile {
        &self.baseline
    }

    /// Number of prepared faults.
    #[inline]
    pub fn fault_count(&self) -> usize {
        self.entries.len()
    }

    /// Replays the prepared evidence under `config` and classifies every
    /// fault (see [`FaultClass`] for the taxonomy):
    ///
    /// * logic faults are **silent** if they corrupted at least one
    ///   product (a stable-but-wrong value never trips Razor, which only
    ///   watches transition timing) and **masked** otherwise;
    /// * delay faults are classified by their engine replay against the
    ///   baseline replay: new undetected violations → **silent**, else new
    ///   Razor errors → **detected**, else **masked**. Detected faults
    ///   report the AHL's adaptation op and the latency overhead the
    ///   re-executions and re-tuned prediction cost.
    ///
    /// Replay is cheap (no gate-level simulation), so sweeping skip
    /// thresholds and Razor windows over one prepared campaign is the
    /// intended usage.
    ///
    /// # Panics
    ///
    /// Panics if `config.cycle_ns` is not finite and positive (same
    /// contract as [`run_engine_traced`]).
    pub fn run(&self, config: &EngineConfig) -> CampaignReport {
        let (base, _) = run_engine_traced(&self.baseline, config);
        let base_latency = base.avg_latency_ns();
        let outcomes = self
            .entries
            .iter()
            .map(|(spec, evidence)| match evidence {
                FaultEvidence::Logic {
                    corrupted_ops,
                    first_corrupted_op,
                } => FaultOutcome {
                    label: spec.label(),
                    class: if *corrupted_ops > 0 {
                        FaultClass::Silent
                    } else {
                        FaultClass::Masked
                    },
                    corrupted_ops: *corrupted_ops,
                    first_corrupted_op: *first_corrupted_op,
                    excess_errors: 0,
                    excess_undetected: 0,
                    aged_at_op: None,
                    latency_overhead_pct: 0.0,
                },
                FaultEvidence::Delay { profile } => {
                    let (m, trace) = run_engine_traced(profile, config);
                    let excess_errors = m.errors.saturating_sub(base.errors);
                    let excess_undetected = m.undetected.saturating_sub(base.undetected);
                    let class = if excess_undetected > 0 {
                        FaultClass::Silent
                    } else if excess_errors > 0 {
                        FaultClass::Detected
                    } else {
                        FaultClass::Masked
                    };
                    let latency_overhead_pct = if base_latency > 0.0 {
                        100.0 * (m.avg_latency_ns() / base_latency - 1.0)
                    } else {
                        0.0
                    };
                    FaultOutcome {
                        label: spec.label(),
                        class,
                        corrupted_ops: 0,
                        first_corrupted_op: None,
                        excess_errors,
                        excess_undetected,
                        aged_at_op: trace.aged_at_op,
                        latency_overhead_pct,
                    }
                }
            })
            .collect();
        CampaignReport {
            kind: self.baseline.kind().label().to_string(),
            width: self.baseline.width(),
            operations: self.baseline.len() as u64,
            cycle_ns: config.cycle_ns,
            skip: config.skip,
            window_factor: config.razor.window_factor,
            adaptive: config.adaptive,
            baseline_errors: base.errors,
            baseline_avg_latency_ns: base_latency,
            outcomes,
            quarantined: self.quarantined.clone(),
        }
    }
}

/// Profiles the fault-free baseline for a supervised campaign, on an
/// explicit timing kernel and under an optional [`CancelToken`].
///
/// With [`SimEngine::Level`] and no token this is exactly the baseline
/// [`Campaign::prepare`] computes (bit-identical profile); the supervisor's
/// degradation ladder re-invokes it with [`SimEngine::Event`] when the
/// levelized kernel is suspect.
///
/// # Errors
///
/// Propagates profiling failures, including
/// [`NetlistError::Cancelled`](agemul_netlist::NetlistError::Cancelled)
/// (wrapped in [`FaultError::Core`]) once the token fires.
pub fn prepare_baseline(
    design: &MultiplierDesign,
    pairs: &[(u64, u64)],
    engine: SimEngine,
    cancel: Option<&CancelToken>,
) -> Result<PatternProfile, FaultError> {
    Ok(design.profile_supervised(pairs, None, engine, cancel)?)
}

/// Evaluates one fault's config-independent evidence — the supervised,
/// per-case counterpart of the batch work inside [`Campaign::prepare`].
///
/// Logic faults run a lane-0 functional evaluation whose corruption counts
/// are bit-identical to the lane-masked 64-wide chunks `prepare` uses
/// (each lane of a batch sweep is exact, so chunking is pure throughput).
/// Delay faults re-profile the workload on `engine`. The optional token
/// cancels both paths cooperatively.
///
/// # Errors
///
/// Returns [`FaultError::InvalidSpec`] for out-of-range sites, and
/// propagates simulation failures including
/// [`NetlistError::Cancelled`](agemul_netlist::NetlistError::Cancelled).
///
/// # Panics
///
/// Panics (by design) for [`FaultSpec::PanicForTest`] — the poison case
/// supervised runners quarantine.
pub fn prepare_fault(
    design: &MultiplierDesign,
    pairs: &[(u64, u64)],
    spec: &FaultSpec,
    engine: SimEngine,
    cancel: Option<&CancelToken>,
) -> Result<FaultEvidence, FaultError> {
    validate(design, std::slice::from_ref(spec))?;
    match *spec {
        FaultSpec::Delay { gate, factor } => {
            let mut delays = design.delay_assignment(None)?;
            delays.inflate(gate, factor);
            let profile = design.profile_with_delays_supervised(pairs, &delays, engine, cancel)?;
            Ok(FaultEvidence::Delay { profile })
        }
        _ => {
            let rows =
                eval_logic_chunk_cancellable(design, pairs, std::slice::from_ref(spec), cancel)?;
            let (corrupted_ops, first_corrupted_op) = rows[0];
            Ok(FaultEvidence::Logic {
                corrupted_ops,
                first_corrupted_op,
            })
        }
    }
}

/// Rejects fault sites outside the design and malformed delay factors
/// before any simulation is spent.
fn validate(design: &MultiplierDesign, faults: &[FaultSpec]) -> Result<(), FaultError> {
    let nets = design.circuit().netlist().net_count();
    let gates = design.circuit().netlist().gate_count();
    for f in faults {
        match *f {
            FaultSpec::StuckAt0 { net }
            | FaultSpec::StuckAt1 { net }
            | FaultSpec::Transient { net, .. } => {
                if net.index() >= nets {
                    return Err(FaultError::InvalidSpec {
                        label: f.label(),
                        reason: format!("net {} out of range ({nets} nets)", net.index()),
                    });
                }
            }
            FaultSpec::Delay { gate, factor } => {
                if gate.index() >= gates {
                    return Err(FaultError::InvalidSpec {
                        label: f.label(),
                        reason: format!("gate {} out of range ({gates} gates)", gate.index()),
                    });
                }
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(FaultError::InvalidSpec {
                        label: f.label(),
                        reason: format!("delay factor must be finite and positive, got {factor}"),
                    });
                }
            }
            // The poison case has no site to validate; it exists to panic
            // during evaluation, not to fail validation.
            FaultSpec::PanicForTest => {}
        }
    }
    Ok(())
}

/// Runs the preparation tasks — threaded under the `parallel` feature when
/// `parallel` is set and worthwhile, serial otherwise. Outputs are in task
/// order either way.
fn run_tasks(
    design: &MultiplierDesign,
    pairs: &[(u64, u64)],
    tasks: &[Task],
    parallel: bool,
    cache: Option<&ProfileCache>,
) -> Result<Vec<TaskOut>, FaultError> {
    let eval = |task: &Task| -> Result<TaskOut, FaultError> {
        match task {
            Task::Chunk(chunk) => Ok(TaskOut::Chunk(eval_logic_chunk(design, pairs, chunk)?)),
            Task::Delay(gate, factor) => Ok(TaskOut::Delay(profile_delay_fault(
                design, pairs, *gate, *factor, cache,
            )?)),
        }
    };
    #[cfg(feature = "parallel")]
    {
        if parallel && agemul_par::thread_count(tasks.len()) > 1 {
            return agemul_par::par_map(tasks, eval).into_iter().collect();
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = parallel;
    tasks.iter().map(eval).collect()
}

/// Functionally evaluates up to 64 logic faults at once: fault `i` rides
/// lane `i` of a lane-masked batch sweep, and every operation whose lane
/// product deviates from `a × b` counts as corrupted for that fault.
///
/// Stuck-at faults live in a persistent overlay; on operations where a
/// transient fires, a clone of that overlay additionally carries the
/// one-shot flips.
fn eval_logic_chunk(
    design: &MultiplierDesign,
    pairs: &[(u64, u64)],
    chunk: &[FaultSpec],
) -> Result<Vec<(u64, Option<u64>)>, FaultError> {
    eval_logic_chunk_cancellable(design, pairs, chunk, None)
}

/// [`eval_logic_chunk`] polling an optional [`CancelToken`] once per
/// operation — the supervised per-case path.
fn eval_logic_chunk_cancellable(
    design: &MultiplierDesign,
    pairs: &[(u64, u64)],
    chunk: &[FaultSpec],
    cancel: Option<&CancelToken>,
) -> Result<Vec<(u64, Option<u64>)>, FaultError> {
    debug_assert!(chunk.len() <= BatchSim::LANES);
    let circuit = design.circuit();
    let netlist = circuit.netlist();
    let mut base = FaultOverlay::new(netlist);
    for (lane, f) in chunk.iter().enumerate() {
        let mask = 1u64 << lane;
        match *f {
            FaultSpec::StuckAt0 { net } => base.add(net, FaultKind::StuckAt0, mask)?,
            FaultSpec::StuckAt1 { net } => base.add(net, FaultKind::StuckAt1, mask)?,
            FaultSpec::Transient { .. } => {}
            FaultSpec::PanicForTest => panic!(
                "poison fault case evaluated: FaultSpec::PanicForTest panics by design \
                 so panic-isolation machinery can be tested end to end"
            ),
            FaultSpec::Delay { .. } => unreachable!("delay faults are not logic-chunk members"),
        }
    }

    let mut sim = BatchSim::new(netlist, design.topology());
    let product = circuit.product();
    let mut corrupted = vec![0u64; chunk.len()];
    let mut first: Vec<Option<u64>> = vec![None; chunk.len()];
    for (op, &(a, b)) in pairs.iter().enumerate() {
        if let Some(token) = cancel {
            token.check().map_err(agemul::CoreError::from)?;
        }
        let pattern = circuit.encode_inputs(a, b)?;
        let patterns = vec![pattern.as_slice(); chunk.len()];
        let fires_now = |f: &FaultSpec| matches!(f, FaultSpec::Transient { op: t, .. } if *t == op);
        if chunk.iter().any(fires_now) {
            let mut with_transients = base.clone();
            for (lane, f) in chunk.iter().enumerate() {
                if let FaultSpec::Transient { net, op: t } = *f {
                    if t == op {
                        with_transients.add(net, FaultKind::Flip, 1u64 << lane)?;
                    }
                }
            }
            sim.eval_batch_with_overlay(&patterns, &with_transients)?;
        } else {
            sim.eval_batch_with_overlay(&patterns, &base)?;
        }
        let expected = u128::from(a) * u128::from(b);
        for (lane, count) in corrupted.iter_mut().enumerate() {
            if product.decode_with(|net| sim.value(net, lane)) != Some(expected) {
                *count += 1;
                if first[lane].is_none() {
                    first[lane] = Some(op as u64);
                }
            }
        }
    }
    Ok(corrupted.into_iter().zip(first).collect())
}

/// Profiles the workload under one inflated gate delay — the same
/// two-vector measurement as the fault-free [`MultiplierDesign::profile`],
/// minus the functional pass (the fault is timing-only, so every product
/// stays correct by construction). With a cache, the inflated assignment's
/// fingerprint keys the memoized profile.
fn profile_delay_fault(
    design: &MultiplierDesign,
    pairs: &[(u64, u64)],
    gate: GateId,
    factor: f64,
    cache: Option<&ProfileCache>,
) -> Result<PatternProfile, FaultError> {
    let mut delays = design.delay_assignment(None)?;
    delays.inflate(gate, factor);
    match cache {
        Some(c) => {
            let profile = c.get_or_insert_with(design, &delays, pairs, || {
                design
                    .profile_with_delays(pairs, &delays)
                    .map_err(FaultError::from)
            })?;
            Ok(PatternProfile::clone(&profile))
        }
        None => Ok(design.profile_with_delays(pairs, &delays)?),
    }
}
