//! End-to-end campaign tests on a real (small) bypassing multiplier.
//!
//! The acceptance properties from the campaign design:
//!
//! * a zero-fault campaign is bit-identical to the fault-free simulation
//!   (baseline profile == `design.profile`, no outcomes);
//! * every fault family lands in its expected class on constructed
//!   workloads (stuck-at/transient → silent-or-masked, delay → detected /
//!   silent depending on the Razor window);
//! * detected faults feed the AHL: the report carries the adaptation op;
//! * serial and parallel preparation produce identical reports.

use agemul::{EngineConfig, MultiplierDesign, PatternSet, ProfileCache, RazorConfig, SimEngine};
use agemul_circuits::MultiplierKind;
use agemul_faults::{prepare_baseline, prepare_fault, Campaign, FaultClass, FaultError, FaultSpec};
use agemul_netlist::{GateId, NetId};

fn design() -> MultiplierDesign {
    MultiplierDesign::new(MultiplierKind::ColumnBypass, 4).unwrap()
}

/// A GateId on an always-sensitized path: the driver of a product bit that
/// toggles for the given workload. Product bit 1 (weight 2) toggles for
/// most operand pairs of a 4×4 multiplier.
fn driver_of_product_bit(d: &MultiplierDesign, bit: usize) -> GateId {
    let net = d.circuit().product().nets()[bit];
    d.circuit()
        .netlist()
        .driver_gate(net)
        .expect("product bits are gate-driven")
}

#[test]
fn zero_fault_campaign_is_bit_identical_to_fault_free_run() {
    let d = design();
    let patterns = PatternSet::uniform(4, 150, 11);
    let campaign = Campaign::prepare(&d, patterns.pairs(), &[]).unwrap();
    let reference = d.profile(patterns.pairs(), None).unwrap();

    assert_eq!(campaign.fault_count(), 0);
    assert_eq!(campaign.baseline().len(), reference.len());
    for (got, want) in campaign
        .baseline()
        .records()
        .iter()
        .zip(reference.records())
    {
        assert_eq!(got, want);
    }

    let cfg = EngineConfig::adaptive(1.0, 2);
    let report = campaign.run(&cfg);
    assert!(report.outcomes.is_empty());
    assert_eq!(
        report.baseline_errors,
        agemul::run_engine(&reference, &cfg).errors
    );
    assert_eq!(report.coverage(), 1.0);
}

#[test]
fn stuck_faults_classify_as_silent_or_masked_by_observability() {
    let d = design();
    // All-zero products: a stuck-at-0 on any product bit is invisible,
    // a stuck-at-1 on a product bit corrupts every operation.
    let pairs: Vec<(u64, u64)> = (0..40).map(|i| (0, i % 16)).collect();
    let p0 = d.circuit().product().nets()[0];
    let faults = [
        FaultSpec::StuckAt0 { net: p0 },
        FaultSpec::StuckAt1 { net: p0 },
    ];
    let campaign = Campaign::prepare(&d, &pairs, &faults).unwrap();
    let report = campaign.run(&EngineConfig::adaptive(1.0, 2));

    assert_eq!(report.outcomes[0].class, FaultClass::Masked);
    assert_eq!(report.outcomes[0].corrupted_ops, 0);

    assert_eq!(report.outcomes[1].class, FaultClass::Silent);
    assert_eq!(report.outcomes[1].corrupted_ops, pairs.len() as u64);
    assert_eq!(report.outcomes[1].first_corrupted_op, Some(0));
    // A silently corrupting logic fault never trips Razor.
    assert_eq!(report.outcomes[1].excess_errors, 0);
}

#[test]
fn transient_corrupts_exactly_its_operation() {
    let d = design();
    let pairs: Vec<(u64, u64)> = (0..30).map(|i| (15, (i % 15) + 1)).collect();
    let p0 = d.circuit().product().nets()[0];
    let faults = [
        FaultSpec::Transient { net: p0, op: 7 },
        // Never fires: beyond the workload.
        FaultSpec::Transient { net: p0, op: 999 },
    ];
    let campaign = Campaign::prepare(&d, &pairs, &faults).unwrap();
    let report = campaign.run(&EngineConfig::adaptive(1.0, 2));

    assert_eq!(report.outcomes[0].class, FaultClass::Silent);
    assert_eq!(report.outcomes[0].corrupted_ops, 1);
    assert_eq!(report.outcomes[0].first_corrupted_op, Some(7));

    assert_eq!(report.outcomes[1].class, FaultClass::Masked);
    assert_eq!(report.outcomes[1].corrupted_ops, 0);
}

#[test]
fn delay_fault_is_detected_then_silent_as_the_window_shrinks() {
    let d = design();
    let patterns = PatternSet::uniform(4, 400, 3);
    let baseline = d.profile(patterns.pairs(), None).unwrap();
    // Clock just above the fault-free worst case: zero baseline errors,
    // and skip 0 keeps every operation on the one-cycle path.
    let cycle = baseline.max_delay_ns() * 1.05;
    let gate = driver_of_product_bit(&d, 1);
    let faults = [
        FaultSpec::Delay { gate, factor: 20.0 },
        // A hot spot far below the timing slack stays masked.
        FaultSpec::Delay {
            gate,
            factor: 1.001,
        },
    ];
    let campaign = Campaign::prepare(&d, patterns.pairs(), &faults).unwrap();

    let full = campaign.run(&EngineConfig::adaptive(cycle, 0));
    assert_eq!(full.baseline_errors, 0);
    let slow = &full.outcomes[0];
    assert_eq!(slow.class, FaultClass::Detected, "{slow:?}");
    assert!(slow.excess_errors > 0);
    assert_eq!(slow.excess_undetected, 0);
    assert!(slow.latency_overhead_pct > 0.0);
    assert_eq!(full.outcomes[1].class, FaultClass::Masked);
    assert!((full.coverage() - 1.0).abs() < 1e-12);

    // Same campaign, near-zero shadow window: the hot spot's late
    // transitions land past the window and the fault goes silent. No new
    // gate-level simulation is spent on this replay.
    let mut shrunken = EngineConfig::adaptive(cycle, 0);
    shrunken.razor = RazorConfig {
        window_factor: 0.01,
    };
    let narrow = campaign.run(&shrunken);
    assert_eq!(narrow.outcomes[0].class, FaultClass::Silent, "{narrow}");
    assert!(narrow.outcomes[0].excess_undetected > 0);
    assert!(narrow.coverage() < 1.0);
}

#[test]
fn detected_fault_reports_ahl_adaptation_latency() {
    let d = design();
    let patterns = PatternSet::uniform(4, 400, 5);
    let baseline = d.profile(patterns.pairs(), None).unwrap();
    let cycle = baseline.max_delay_ns() * 1.05;
    let gate = driver_of_product_bit(&d, 1);
    let campaign = Campaign::prepare(
        &d,
        patterns.pairs(),
        &[FaultSpec::Delay { gate, factor: 20.0 }],
    )
    .unwrap();
    let report = campaign.run(&EngineConfig::adaptive(cycle, 0));

    let o = &report.outcomes[0];
    assert_eq!(o.class, FaultClass::Detected);
    // Enough detected errors accumulate that the aging indicator engages;
    // the paper's window is 100 ops, so adaptation lands on a boundary.
    let aged_at = o.aged_at_op.expect("sustained error pressure must age");
    assert!(
        aged_at.is_multiple_of(100) && aged_at <= 400,
        "aged at {aged_at}"
    );
}

#[test]
fn serial_and_parallel_preparation_agree() {
    let d = design();
    let patterns = PatternSet::uniform(4, 120, 9);
    let faults = FaultSpec::sample(&d, patterns.pairs().len(), 10, 0xCAFE);
    let par = Campaign::prepare(&d, patterns.pairs(), &faults).unwrap();
    let ser = Campaign::prepare_serial(&d, patterns.pairs(), &faults).unwrap();
    for cfg in [
        EngineConfig::adaptive(1.0, 2),
        EngineConfig::traditional(0.8, 3),
    ] {
        assert_eq!(par.run(&cfg), ser.run(&cfg));
    }
}

#[test]
fn cached_preparation_is_bit_identical_and_reuses_profiles() {
    let d = design();
    let patterns = PatternSet::uniform(4, 120, 13);
    let gate = driver_of_product_bit(&d, 1);
    let faults = [
        FaultSpec::Delay { gate, factor: 4.0 },
        FaultSpec::Delay { gate, factor: 1.5 },
        FaultSpec::StuckAt1 {
            net: d.circuit().product().nets()[0],
        },
    ];

    let cache = ProfileCache::new();
    let cached = Campaign::prepare_cached(&d, patterns.pairs(), &faults, &cache).unwrap();
    let plain = Campaign::prepare(&d, patterns.pairs(), &faults).unwrap();
    for cfg in [
        EngineConfig::adaptive(1.0, 2),
        EngineConfig::traditional(0.8, 3),
    ] {
        assert_eq!(cached.run(&cfg), plain.run(&cfg));
    }
    // First pass: baseline + one profile per distinct delay fault, all misses.
    assert_eq!(cache.misses(), 3);
    assert_eq!(cache.hits(), 0);

    // Re-preparing the same campaign re-simulates nothing.
    let again = Campaign::prepare_cached(&d, patterns.pairs(), &faults, &cache).unwrap();
    assert_eq!(cache.misses(), 3);
    assert_eq!(cache.hits(), 3);
    let cfg = EngineConfig::adaptive(1.0, 2);
    assert_eq!(again.run(&cfg), plain.run(&cfg));
}

#[test]
fn more_than_one_chunk_of_logic_faults_is_handled() {
    let d = design();
    let pairs: Vec<(u64, u64)> = (0..20).map(|i| (i % 16, 15)).collect();
    // 70 stuck faults → two lane-masked chunks.
    let nets = d.circuit().netlist().net_count();
    let faults: Vec<FaultSpec> = (0..70)
        .map(|i| {
            let net = NetId::from_index(i % nets);
            if i % 2 == 0 {
                FaultSpec::StuckAt0 { net }
            } else {
                FaultSpec::StuckAt1 { net }
            }
        })
        .collect();
    let campaign = Campaign::prepare(&d, &pairs, &faults).unwrap();
    let report = campaign.run(&EngineConfig::adaptive(1.0, 2));
    assert_eq!(report.outcomes.len(), 70);
    // Every fault got classified, and the labels line up with the specs.
    for (o, f) in report.outcomes.iter().zip(&faults) {
        assert_eq!(o.label, f.label());
    }
    assert!(report.silent() > 0, "stuck product logic must corrupt");
}

/// The supervised per-case path (`prepare_baseline` + `prepare_fault` +
/// `Campaign::assemble`) is bit-identical to the batch `Campaign::prepare`
/// — the property that makes checkpoint/resume replays trustworthy.
#[test]
fn per_case_preparation_assembles_into_an_identical_campaign() {
    let d = design();
    let patterns = PatternSet::uniform(4, 120, 21);
    let faults = FaultSpec::sample(&d, patterns.pairs().len(), 9, 0xDEED);

    let batch = Campaign::prepare(&d, patterns.pairs(), &faults).unwrap();

    let baseline = prepare_baseline(&d, patterns.pairs(), SimEngine::Level, None).unwrap();
    let entries: Vec<_> = faults
        .iter()
        .map(|f| {
            let ev = prepare_fault(&d, patterns.pairs(), f, SimEngine::Level, None).unwrap();
            (*f, ev)
        })
        .collect();
    assert_eq!(entries.as_slice(), batch.entries());
    let assembled = Campaign::assemble(baseline, entries, Vec::new());

    for cfg in [
        EngineConfig::adaptive(1.0, 2),
        EngineConfig::traditional(0.8, 3),
    ] {
        assert_eq!(assembled.run(&cfg), batch.run(&cfg));
    }
}

/// An assembled campaign surfaces its quarantine ledger in every report
/// without disturbing the classified outcomes.
#[test]
fn assembled_campaign_reports_quarantined_labels() {
    let d = design();
    let patterns = PatternSet::uniform(4, 60, 23);
    let faults = FaultSpec::sample(&d, patterns.pairs().len(), 4, 0xACE);

    let baseline = prepare_baseline(&d, patterns.pairs(), SimEngine::Level, None).unwrap();
    let entries: Vec<_> = faults
        .iter()
        .map(|f| {
            let ev = prepare_fault(&d, patterns.pairs(), f, SimEngine::Level, None).unwrap();
            (*f, ev)
        })
        .collect();
    let quarantined = vec![FaultSpec::PanicForTest.label()];
    let campaign = Campaign::assemble(baseline, entries, quarantined.clone());
    assert_eq!(campaign.quarantined_labels(), quarantined.as_slice());

    let report = campaign.run(&EngineConfig::adaptive(1.0, 2));
    assert_eq!(report.quarantined, quarantined);
    assert_eq!(report.quarantined(), 1);
    assert_eq!(report.outcomes.len(), faults.len());
    assert!(report.to_json().contains("\"quarantined\":[\"poison\"]"));
}

#[test]
fn invalid_specs_are_rejected_before_simulation() {
    let d = design();
    let pairs = [(1u64, 1u64)];
    let nets = d.circuit().netlist().net_count();
    let gates = d.circuit().netlist().gate_count();

    let bad_net = Campaign::prepare(
        &d,
        &pairs,
        &[FaultSpec::StuckAt0 {
            net: NetId::from_index(nets),
        }],
    );
    assert!(matches!(bad_net, Err(FaultError::InvalidSpec { .. })));

    let bad_gate = Campaign::prepare(
        &d,
        &pairs,
        &[FaultSpec::Delay {
            gate: GateId::from_index(gates),
            factor: 1.5,
        }],
    );
    assert!(matches!(bad_gate, Err(FaultError::InvalidSpec { .. })));

    let bad_factor = Campaign::prepare(
        &d,
        &pairs,
        &[FaultSpec::Delay {
            gate: GateId::from_index(0),
            factor: f64::NAN,
        }],
    );
    assert!(matches!(bad_factor, Err(FaultError::InvalidSpec { .. })));
}
