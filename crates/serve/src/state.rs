//! Shared, thread-safe server state: designs, workloads, aging factors,
//! the sharded profile cache, and the single-flight coalescer.
//!
//! This is the resident-process counterpart of the repro crate's
//! single-threaded `Context`: the same lazily built artifacts (designs,
//! workload statistics, BTI aging factors, timing profiles), but behind
//! poison-recovering locks and `Arc`s so hundreds of concurrent requests
//! share one copy of everything. Profiles go through the sharded
//! [`ProfileCache`] *behind* a [`SingleFlight`] coalescer, so N identical
//! cold requests cost one simulation, not N racing ones.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use agemul::{
    quantize_factors, CacheEntry, CancelToken, MultiplierDesign, PatternProfile, PatternSet,
    ProfileCache, SimEngine,
};
use agemul_aging::{aging_factors, BtiModel};
use agemul_circuits::MultiplierKind;
use agemul_conformance::Json;
use agemul_harness::{
    is_cancellation, profile_from_json, profile_to_json, CaseRecord, CaseStatus, Checkpoint,
};
use agemul_logic::Technology;
use agemul_netlist::WorkloadStats;

use crate::flight::{FlightError, FlightRole, SingleFlight};
use crate::proto::{parse_kind, DesignQuery};

/// Per-gate seven-year delay-factor target for the calibrated BTI model —
/// the same anchor the repro `Context` uses, so a served profile matches
/// the batch experiments bit for bit (see the derivation note in
/// `crates/repro/src/context.rs`).
const REFERENCE_GATE_7Y_FACTOR: f64 = 1.132;

/// Run key recorded in warm-start snapshot documents; a snapshot written
/// by an incompatible layout is refused on load instead of silently
/// seeding garbage.
pub const SNAPSHOT_KEY: &str = "agemul-serve-cache/1";

/// How a profile lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Simulated by this request.
    Miss,
    /// Waited on another request's in-flight simulation of the same key.
    Coalesced,
}

impl CacheOutcome {
    /// Wire label (`hit` / `miss` / `coalesced`).
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Keyed store of workload statistics: (kind, width, patterns, seed).
type StatsMap = HashMap<(MultiplierKind, usize, usize, u64), Arc<WorkloadStats>>;
/// Keyed store of aging factors: (kind, width, patterns, seed, years).
type FactorsMap = HashMap<(MultiplierKind, usize, usize, u64, u32), Arc<Vec<f64>>>;

fn years_key(years: f64) -> u32 {
    (years * 100.0).round() as u32
}

/// Single-flight key: one in-flight simulation per design × aging epoch ×
/// workload × engine.
#[derive(Clone, PartialEq, Eq, Hash)]
struct FlightKey {
    kind: MultiplierKind,
    width: usize,
    years_c: u32,
    patterns: usize,
    seed: u64,
    engine: u8,
}

/// The server's shared artifact store. Cheap lookups (designs, workloads,
/// stats, factors) live in plain poison-recovering maps; profiles — the
/// expensive artifact — go through the sharded bounded [`ProfileCache`]
/// behind the [`SingleFlight`] coalescer.
pub struct ServerState {
    bti: BtiModel,
    cache: ProfileCache,
    flight: SingleFlight<FlightKey, Arc<PatternProfile>>,
    designs: Mutex<HashMap<(MultiplierKind, usize), Arc<MultiplierDesign>>>,
    workloads: Mutex<HashMap<(usize, usize, u64), Arc<PatternSet>>>,
    stats: Mutex<StatsMap>,
    factors: Mutex<FactorsMap>,
    /// Connections shed by the acceptor with a typed `overloaded`
    /// response (surfaced in the `stats` op).
    shed: std::sync::atomic::AtomicU64,
    /// Context for this state's `serve/build` chaos failpoint; chaos plans
    /// scope on it so one test's injected leader deaths cannot strike
    /// another state in the same process.
    chaos_scope: String,
}

impl ServerState {
    /// Fresh state with the workspace-calibrated BTI model and a profile
    /// cache bounded to `shard_capacity` entries per shard (`None` =
    /// unbounded, for short-lived test servers).
    pub fn new(shard_capacity: Option<usize>) -> Self {
        Self::with_chaos_scope(shard_capacity, String::new())
    }

    /// Like [`new`](Self::new), but the `serve/build`, `flight/lead`, and
    /// `flight/publish` chaos failpoints carry `scope` as their context,
    /// so seeded fault plans can target exactly this state.
    pub fn with_chaos_scope(shard_capacity: Option<usize>, scope: impl Into<String>) -> Self {
        let scope = scope.into();
        ServerState {
            bti: BtiModel::calibrated(Technology::ptm_32nm_hk(), REFERENCE_GATE_7Y_FACTOR),
            cache: match shard_capacity {
                Some(per_shard) => ProfileCache::with_capacity(per_shard),
                None => ProfileCache::new(),
            },
            flight: SingleFlight::with_scope(scope.clone()),
            designs: Mutex::new(HashMap::new()),
            workloads: Mutex::new(HashMap::new()),
            stats: Mutex::new(HashMap::new()),
            factors: Mutex::new(HashMap::new()),
            shed: std::sync::atomic::AtomicU64::new(0),
            chaos_scope: scope,
        }
    }

    /// Records one connection shed by the acceptor.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Connections shed with a typed `overloaded` response so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Profile builds currently in flight in the coalescer (0 when the
    /// server is quiescent — a stranded slot would wedge every future
    /// request for its key, so soaks assert this drains).
    pub fn in_flight(&self) -> usize {
        self.flight.in_flight()
    }

    /// The profile cache (shared with campaign preparation).
    pub fn cache(&self) -> &ProfileCache {
        &self.cache
    }

    /// The workspace-calibrated BTI model (shared with the Monte Carlo
    /// op, so served yield curves match the batch `mc` experiment).
    pub fn bti(&self) -> &BtiModel {
        &self.bti
    }

    /// Number of profile lookups coalesced onto another request's
    /// in-flight simulation.
    pub fn coalesced(&self) -> u64 {
        self.flight.coalesced()
    }

    /// The design for `kind` × `width` (cached; built outside the map
    /// lock so concurrent first requests don't serialize on construction).
    ///
    /// # Errors
    ///
    /// Rendered construction errors (unsupported width, etc.).
    pub fn design(
        &self,
        kind: MultiplierKind,
        width: usize,
    ) -> Result<Arc<MultiplierDesign>, String> {
        if let Some(d) = lock(&self.designs).get(&(kind, width)) {
            return Ok(Arc::clone(d));
        }
        let built = Arc::new(MultiplierDesign::new(kind, width).map_err(|e| e.to_string())?);
        let mut designs = lock(&self.designs);
        let d = designs
            .entry((kind, width))
            .or_insert_with(|| Arc::clone(&built));
        Ok(Arc::clone(d))
    }

    /// The seed-derived uniform workload (cached).
    pub fn workload(&self, width: usize, patterns: usize, seed: u64) -> Arc<PatternSet> {
        if let Some(w) = lock(&self.workloads).get(&(width, patterns, seed)) {
            return Arc::clone(w);
        }
        let built = Arc::new(PatternSet::uniform(width, patterns, seed));
        let mut workloads = lock(&self.workloads);
        let w = workloads
            .entry((width, patterns, seed))
            .or_insert_with(|| Arc::clone(&built));
        Arc::clone(w)
    }

    /// Per-gate BTI aging factors for the query's design under its own
    /// workload's duty cycles (cached). Fresh designs (`years == 0`) have
    /// no factors.
    ///
    /// # Errors
    ///
    /// Rendered design/statistics errors.
    pub fn factors(&self, query: &DesignQuery) -> Result<Option<Arc<Vec<f64>>>, String> {
        if query.years <= 0.0 {
            return Ok(None);
        }
        let key = (
            query.kind,
            query.width,
            query.patterns,
            query.seed,
            years_key(query.years),
        );
        if let Some(f) = lock(&self.factors).get(&key) {
            return Ok(Some(Arc::clone(f)));
        }
        let design = self.design(query.kind, query.width)?;
        let stats = self.workload_stats(query)?;
        let built = Arc::new(aging_factors(
            design.circuit().netlist(),
            &stats,
            &self.bti,
            query.years,
        ));
        let mut factors = lock(&self.factors);
        let f = factors.entry(key).or_insert_with(|| Arc::clone(&built));
        Ok(Some(Arc::clone(f)))
    }

    /// Workload statistics for the query's design under its own workload
    /// (cached) — the stress input to the aging model.
    fn workload_stats(&self, query: &DesignQuery) -> Result<Arc<WorkloadStats>, String> {
        let key = (query.kind, query.width, query.patterns, query.seed);
        if let Some(s) = lock(&self.stats).get(&key) {
            return Ok(Arc::clone(s));
        }
        let design = self.design(query.kind, query.width)?;
        let workload = self.workload(query.width, query.patterns, query.seed);
        let built = Arc::new(
            design
                .workload_stats(workload.pairs())
                .map_err(|e| e.to_string())?,
        );
        let mut stats = lock(&self.stats);
        let s = stats.entry(key).or_insert_with(|| Arc::clone(&built));
        Ok(Arc::clone(s))
    }

    /// The query's timing profile: through the single-flight coalescer,
    /// then the sharded cache, simulating (on `engine`, under `cancel`)
    /// only on a true miss. Returns the profile and how it was obtained.
    ///
    /// # Errors
    ///
    /// [`FlightError::Cancelled`] when the deadline fired inside the
    /// simulation, [`FlightError::Build`] for real failures (never
    /// cached), [`FlightError::LeaderPanicked`] when a concurrent leader
    /// died mid-build.
    pub fn profile(
        &self,
        query: &DesignQuery,
        engine: SimEngine,
        cancel: Option<&CancelToken>,
    ) -> Result<(Arc<PatternProfile>, CacheOutcome), FlightError> {
        let design = self
            .design(query.kind, query.width)
            .map_err(FlightError::Build)?;
        let factors = self.factors(query).map_err(FlightError::Build)?;
        let quantized = factors.map(|f| quantize_factors(&f));
        let delays = design
            .delay_assignment(quantized.as_deref())
            .map_err(|e| FlightError::Build(e.to_string()))?;
        let workload = self.workload(query.width, query.patterns, query.seed);

        let flight_key = FlightKey {
            kind: query.kind,
            width: query.width,
            years_c: years_key(query.years),
            patterns: query.patterns,
            seed: query.seed,
            engine: match engine {
                SimEngine::Level => 0,
                SimEngine::Event => 1,
            },
        };
        let simulated = std::cell::Cell::new(false);
        let (outcome, role) = self.flight.run(flight_key, || {
            // Chaos failpoint `serve/build`: the leader dies *inside* the
            // build closure — between the flight's own lead/publish sites —
            // exercising the cache's exception safety under the coalescer.
            if agemul_chaos::armed() {
                agemul_chaos::maybe_panic(
                    "serve/build",
                    &format!(
                        "{} {}x{}",
                        self.chaos_scope,
                        query.kind.label(),
                        query.width
                    ),
                );
            }
            self.cache
                .get_or_insert_with(&design, &delays, workload.pairs(), || {
                    simulated.set(true);
                    design.profile_supervised(
                        workload.pairs(),
                        quantized.as_deref(),
                        engine,
                        cancel,
                    )
                })
                .map_err(|e| {
                    if is_cancellation(&e) {
                        FlightError::Cancelled
                    } else {
                        FlightError::Build(e.to_string())
                    }
                })
        });
        let profile = outcome?;
        let how = match role {
            FlightRole::Coalesced => CacheOutcome::Coalesced,
            FlightRole::Leader if simulated.get() => CacheOutcome::Miss,
            FlightRole::Leader => CacheOutcome::Hit,
        };
        Ok((profile, how))
    }

    /// Cache/coalescer statistics as the `stats` op's result payload.
    ///
    /// The global totals are followed by a `shards` array — one row per
    /// cache shard with its resident entries and hit/miss/eviction tallies
    /// (shards are keyed by (kind, width), so a hot row is a hot design) —
    /// and a `flight` object with the single-flight coalescer's
    /// led/coalesced counts.
    pub fn stats_json(&self) -> Json {
        let shards = self
            .cache
            .shard_stats()
            .into_iter()
            .map(|s| {
                Json::Obj(vec![
                    ("index".into(), Json::UInt(s.index as u64)),
                    ("entries".into(), Json::UInt(s.entries as u64)),
                    ("hits".into(), Json::UInt(s.hits)),
                    ("misses".into(), Json::UInt(s.misses)),
                    ("evictions".into(), Json::UInt(s.evictions)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("entries".into(), Json::UInt(self.cache.len() as u64)),
            ("hits".into(), Json::UInt(self.cache.hits())),
            ("misses".into(), Json::UInt(self.cache.misses())),
            ("evictions".into(), Json::UInt(self.cache.evictions())),
            ("coalesced".into(), Json::UInt(self.coalesced())),
            (
                "shard_capacity".into(),
                self.cache
                    .shard_capacity()
                    .map_or(Json::Null, |c| Json::UInt(c as u64)),
            ),
            ("shed".into(), Json::UInt(self.shed())),
            ("shards".into(), Json::Arr(shards)),
            (
                "flight".into(),
                Json::Obj(vec![
                    ("led".into(), Json::UInt(self.flight.led())),
                    ("coalesced".into(), Json::UInt(self.flight.coalesced())),
                    ("in_flight".into(), Json::UInt(self.in_flight() as u64)),
                ]),
            ),
        ])
    }

    /// Saves the cache as a warm-start snapshot (atomic temp + rename,
    /// CRC-checked — the harness checkpoint codec). Returns the number of
    /// entries written.
    ///
    /// # Errors
    ///
    /// Rendered checkpoint I/O errors.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, String> {
        let entries: Vec<CaseRecord> = self
            .cache
            .entries()
            .into_iter()
            .enumerate()
            .map(|(index, e)| CaseRecord {
                index,
                label: format!(
                    "{}{}@{:016x}/{:016x}",
                    e.kind.label(),
                    e.width,
                    e.delay_fingerprint,
                    e.workload_fingerprint
                ),
                engine: "level".into(),
                retries: 0,
                degraded: false,
                status: CaseStatus::Done {
                    value: Json::Obj(vec![
                        ("kind".into(), Json::Str(e.kind.label().into())),
                        ("width".into(), Json::UInt(e.width as u64)),
                        ("delay_fp".into(), Json::UInt(e.delay_fingerprint)),
                        ("workload_fp".into(), Json::UInt(e.workload_fingerprint)),
                        ("profile".into(), profile_to_json(&e.profile)),
                    ]),
                },
            })
            .collect();
        let count = entries.len();
        Checkpoint {
            run_key: SNAPSHOT_KEY.into(),
            total: count,
            entries,
        }
        .save_atomic(path)
        .map_err(|e| e.to_string())?;
        Ok(count)
    }

    /// Seeds the cache from a warm-start snapshot written by
    /// [`save_snapshot`](Self::save_snapshot). Returns the number of
    /// entries seeded.
    ///
    /// # Errors
    ///
    /// Rendered load errors: I/O, CRC/schema mismatch, a snapshot written
    /// under a different [`SNAPSHOT_KEY`], or malformed entries.
    pub fn load_snapshot(&self, path: &Path) -> Result<usize, String> {
        let ck = Checkpoint::load(path, Some(SNAPSHOT_KEY)).map_err(|e| e.to_string())?;
        let mut seeded = 0;
        for record in &ck.entries {
            let CaseStatus::Done { value } = &record.status else {
                continue;
            };
            let kind = parse_kind(
                value
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("snapshot entry {} has no kind", record.index))?,
            )?;
            let entry = CacheEntry {
                kind,
                width: value
                    .get("width")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("snapshot entry {} has no width", record.index))?
                    as usize,
                delay_fingerprint: value
                    .get("delay_fp")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("snapshot entry {} has no delay_fp", record.index))?,
                workload_fingerprint: value
                    .get("workload_fp")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("snapshot entry {} has no workload_fp", record.index))?,
                profile: Arc::new(
                    profile_from_json(value.get("profile").ok_or_else(|| {
                        format!("snapshot entry {} has no profile", record.index)
                    })?)
                    .map_err(|e| format!("snapshot entry {}: {e}", record.index))?,
                ),
            };
            self.cache.seed_entry(&entry);
            seeded += 1;
        }
        Ok(seeded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> DesignQuery {
        DesignQuery {
            kind: MultiplierKind::ColumnBypass,
            width: 8,
            years: 0.0,
            patterns: 24,
            seed: 11,
        }
    }

    #[test]
    fn repeat_profile_hits() {
        let state = ServerState::new(Some(8));
        let (first, how) = state.profile(&query(), SimEngine::Level, None).unwrap();
        assert_eq!(how, CacheOutcome::Miss);
        let (again, how) = state.profile(&query(), SimEngine::Level, None).unwrap();
        assert_eq!(how, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!((state.cache().hits(), state.cache().misses()), (1, 1));
    }

    #[test]
    fn aged_profile_is_slower_and_separately_cached() {
        let state = ServerState::new(None);
        let fresh = query();
        let aged = DesignQuery {
            years: 7.0,
            ..fresh
        };
        let (f, _) = state.profile(&fresh, SimEngine::Level, None).unwrap();
        let (a, _) = state.profile(&aged, SimEngine::Level, None).unwrap();
        assert!(a.avg_delay_ns() > f.avg_delay_ns());
        assert_eq!(state.cache().misses(), 2);
    }

    #[test]
    fn snapshot_round_trips_into_a_cold_state() {
        let dir = std::env::temp_dir().join(format!("agemul-serve-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap.json");

        let warm = ServerState::new(Some(8));
        let (original, _) = warm.profile(&query(), SimEngine::Level, None).unwrap();
        assert_eq!(warm.save_snapshot(&path).unwrap(), 1);

        let cold = ServerState::new(Some(8));
        assert_eq!(cold.load_snapshot(&path).unwrap(), 1);
        let (served, how) = cold.profile(&query(), SimEngine::Level, None).unwrap();
        assert_eq!(how, CacheOutcome::Hit, "warm start must hit");
        assert_eq!(served.records(), original.records());

        // A foreign document is refused, not silently seeded.
        std::fs::write(&path, "{}").unwrap();
        assert!(cold.load_snapshot(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
