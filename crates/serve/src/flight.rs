//! Single-flight coalescing of duplicate in-flight work.
//!
//! The [`ProfileCache`](agemul::ProfileCache) deduplicates *finished*
//! work: its build step runs outside the shard lock, so N concurrent
//! requests for the same cold key race N full simulations and the first
//! insert wins. Acceptable in a batch run; in a resident server a popular
//! cold key (every client asking for the same design at boot) would
//! multiply the most expensive operation in the system by the fan-in.
//!
//! [`SingleFlight`] closes that gap: the first caller of a key becomes
//! the *leader* and runs the build; every caller that arrives while the
//! build is in flight blocks on the leader's slot and receives a clone of
//! the leader's result. Keys are removed **before** the result is
//! published, so failures are never cached — a request that arrives after
//! a failed build starts a fresh one. A leader that panics mid-build
//! publishes [`FlightError::LeaderPanicked`] to its waiters from a drop
//! guard instead of stranding them on the condvar forever.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Locks with poison recovery: a leader that panicked has already been
/// handled by the publish guard, and every map/slot mutation is a single
/// call, so the data behind a poisoned lock is consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a coalesced build produced no value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlightError {
    /// The build failed; the leader's rendered error.
    Build(String),
    /// The build observed its cancellation token fire (deadline).
    Cancelled,
    /// The leader panicked before publishing a result. Waiters receive
    /// this instead of hanging; the key is free again, so a retry leads a
    /// fresh build.
    LeaderPanicked,
}

impl std::fmt::Display for FlightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlightError::Build(msg) => write!(f, "build failed: {msg}"),
            FlightError::Cancelled => f.write_str("build cancelled by deadline"),
            FlightError::LeaderPanicked => f.write_str("in-flight leader panicked"),
        }
    }
}

impl std::error::Error for FlightError {}

/// How a caller's lookup through [`SingleFlight::run`] was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightRole {
    /// This caller ran the build itself.
    Leader,
    /// This caller waited on another caller's in-flight build and shares
    /// its result.
    Coalesced,
}

/// One in-flight build: waiters block on `ready` until `result` is set.
struct Slot<V> {
    result: Mutex<Option<Result<V, FlightError>>>,
    ready: Condvar,
}

/// A single-flight map: at most one build per key is in flight at a time;
/// concurrent demand for the same key coalesces onto the leader's result.
///
/// `V` is cloned to every waiter, so it should be cheap to clone (the
/// server uses `Arc<PatternProfile>`).
pub struct SingleFlight<K, V> {
    slots: Mutex<HashMap<K, Arc<Slot<V>>>>,
    led: AtomicU64,
    coalesced: AtomicU64,
    /// Context string for the `flight/lead` / `flight/publish` chaos
    /// failpoints, so a chaos plan can target one coalescer instance
    /// without perturbing every other flight in the process.
    scope: String,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Publishes the leader's result on drop — including the unwind path, so
/// a panicking build releases its waiters with
/// [`FlightError::LeaderPanicked`] rather than stranding them.
struct Publish<'a, K: Eq + Hash, V> {
    slots: &'a Mutex<HashMap<K, Arc<Slot<V>>>>,
    key: &'a K,
    slot: &'a Slot<V>,
    value: Option<Result<V, FlightError>>,
}

impl<K: Eq + Hash, V> Drop for Publish<'_, K, V> {
    fn drop(&mut self) {
        let value = self
            .value
            .take()
            .unwrap_or(Err(FlightError::LeaderPanicked));
        // Remove the key first: once the outcome is decided, the next
        // request for this key must lead a fresh build (failures are
        // never cached), while existing waiters still hold the slot Arc.
        lock(self.slots).remove(self.key);
        *lock(&self.slot.result) = Some(value);
        self.slot.ready.notify_all();
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// An empty single-flight map.
    pub fn new() -> Self {
        Self::with_scope(String::new())
    }

    /// An empty single-flight map whose chaos failpoints match plans
    /// scoped to `scope` (see [`agemul_chaos::SiteRule::scope`]).
    pub fn with_scope(scope: impl Into<String>) -> Self {
        SingleFlight {
            slots: Mutex::new(HashMap::new()),
            led: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            scope: scope.into(),
        }
    }

    /// Number of calls that led a build.
    pub fn led(&self) -> u64 {
        self.led.load(Ordering::Relaxed)
    }

    /// Number of calls that coalesced onto another caller's build.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Number of builds currently in flight.
    pub fn in_flight(&self) -> usize {
        lock(&self.slots).len()
    }

    /// Runs `build` for `key`, coalescing with any in-flight build of the
    /// same key: exactly one concurrent caller executes `build`; the rest
    /// block and receive a clone of its outcome, tagged with their
    /// [`FlightRole`].
    pub fn run<F>(&self, key: K, build: F) -> (Result<V, FlightError>, FlightRole)
    where
        F: FnOnce() -> Result<V, FlightError>,
    {
        let slot = {
            let mut slots = lock(&self.slots);
            if let Some(slot) = slots.get(&key) {
                let slot = Arc::clone(slot);
                drop(slots);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                let mut result = lock(&slot.result);
                while result.is_none() {
                    result = slot
                        .ready
                        .wait(result)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                let outcome = result.clone().unwrap_or(Err(FlightError::LeaderPanicked));
                return (outcome, FlightRole::Coalesced);
            }
            let slot = Arc::new(Slot {
                result: Mutex::new(None),
                ready: Condvar::new(),
            });
            slots.insert(key.clone(), Arc::clone(&slot));
            slot
        };
        self.led.fetch_add(1, Ordering::Relaxed);
        let mut publish = Publish {
            slots: &self.slots,
            key: &key,
            slot: &slot,
            value: None,
        };
        // Chaos failpoints bracket the build — leader death at either
        // await point (just after winning leadership, just before
        // publishing) must unwind through the guard above, releasing
        // waiters with `LeaderPanicked` and freeing the key.
        agemul_chaos::maybe_panic("flight/lead", &self.scope);
        let outcome = build();
        agemul_chaos::maybe_panic("flight/publish", &self.scope);
        publish.value = Some(outcome.clone());
        drop(publish);
        (outcome, FlightRole::Leader)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    use super::*;

    /// N threads demand the same cold key; the leader's build holds until
    /// every other thread has coalesced, so exactly one build happens and
    /// all N results are the same `Arc`.
    #[test]
    fn n_threads_one_build_identical_arcs() {
        const N: usize = 8;
        let flight: SingleFlight<&'static str, Arc<u64>> = SingleFlight::new();
        let builds = AtomicUsize::new(0);

        let results: Vec<(Result<Arc<u64>, FlightError>, FlightRole)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..N)
                    .map(|_| {
                        scope.spawn(|| {
                            flight.run("profile/CB16@7y", || {
                                builds.fetch_add(1, Ordering::Relaxed);
                                // Complete only after every other thread
                                // has arrived and coalesced, making the
                                // single-build guarantee deterministic.
                                while flight.coalesced() < (N - 1) as u64 {
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                                Ok(Arc::new(42))
                            })
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
        let leaders = results
            .iter()
            .filter(|(_, role)| *role == FlightRole::Leader)
            .count();
        assert_eq!((leaders, results.len()), (1, N));
        let first = results[0].0.as_ref().unwrap();
        for (outcome, _) in &results {
            assert!(Arc::ptr_eq(first, outcome.as_ref().unwrap()));
        }
        assert_eq!(flight.led(), 1);
        assert_eq!(flight.coalesced(), (N - 1) as u64);
        assert_eq!(flight.in_flight(), 0, "slot removed after publish");
    }

    /// Failures propagate to every concurrent waiter but are not cached:
    /// the next call leads a fresh build.
    #[test]
    fn errors_are_shared_but_never_cached() {
        let flight: SingleFlight<u32, u64> = SingleFlight::new();
        let (err, role) = flight.run(7, || Err(FlightError::Build("boom".into())));
        assert_eq!(role, FlightRole::Leader);
        assert_eq!(err, Err(FlightError::Build("boom".into())));

        // The failed key is gone; a retry runs a fresh (now successful)
        // build rather than replaying the error.
        let (ok, role) = flight.run(7, || Ok(99));
        assert_eq!(role, FlightRole::Leader);
        assert_eq!(ok, Ok(99));
        assert_eq!(flight.led(), 2);
    }

    /// A leader that panics releases its waiters with `LeaderPanicked`
    /// instead of stranding them, and frees the key.
    #[test]
    fn panicking_leader_releases_waiters() {
        let flight: Arc<SingleFlight<u8, u64>> = Arc::new(SingleFlight::new());

        let waiter = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || {
                // Wait until the leader below is in flight, then coalesce.
                while flight.in_flight() == 0 {
                    std::thread::sleep(Duration::from_micros(50));
                }
                flight.run(1, || Ok(0))
            })
        };

        let leader = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || {
                let _ = flight.run(1, || -> Result<u64, FlightError> {
                    // Hold the flight until the waiter thread exists, so
                    // it deterministically coalesces onto this build.
                    while flight.coalesced() == 0 {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    panic!("leader dies mid-build");
                });
            })
        };

        assert!(leader.join().is_err(), "leader thread panicked");
        let (outcome, role) = waiter.join().unwrap();
        assert_eq!(outcome, Err(FlightError::LeaderPanicked));
        assert_eq!(role, FlightRole::Coalesced);
        assert_eq!(flight.in_flight(), 0, "key freed for a fresh build");
        assert_eq!(flight.run(1, || Ok(5)).0, Ok(5));
    }

    /// Distinct keys never coalesce.
    #[test]
    fn distinct_keys_run_independently() {
        let flight: SingleFlight<u32, u32> = SingleFlight::new();
        for k in 0..4 {
            let (v, role) = flight.run(k, || Ok(k * 10));
            assert_eq!(v, Ok(k * 10));
            assert_eq!(role, FlightRole::Leader);
        }
        assert_eq!(flight.coalesced(), 0);
    }
}
