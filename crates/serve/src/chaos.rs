//! Deterministic chaos soak: seeded fault schedules over the service's
//! three IO seams, asserting the standing robustness invariants.
//!
//! Each *schedule* is one armed [`ChaosPlan`] — a seed plus per-site
//! fault rules — driven against one seam:
//!
//! 1. **Checkpoint IO** ([`checkpoint_seam`]): torn temp writes, ENOSPC,
//!    rename failures, and read-back corruption against the harness's
//!    atomic checkpoint. Invariants: the prior generation survives every
//!    failed save, a checkpoint either loads clean or is refused with a
//!    typed error (never silently wrong), and a disarmed resume converges
//!    to the byte-identical document of an uninterrupted run.
//! 2. **Serve transport** ([`transport_seam`]): byte corruption, torn
//!    writes, mid-frame stalls, and abrupt resets on a live server's
//!    sockets. Invariants: the server never wedges (a clean request after
//!    every schedule succeeds with reference-identical values — so
//!    injected errors were never cached), no worker is lost, and the
//!    single-flight map drains to zero.
//! 3. **Cache / single-flight** ([`flight_seam`]): leader death at every
//!    await point (after winning leadership, mid-build, before publish)
//!    plus injected profiling failures. Invariants: waiters get a typed
//!    [`FlightError`] instead of hanging, failures are never cached, and
//!    the in-flight map drains.
//!
//! [`overload_probe`] is the fourth, fault-free scenario: a saturated
//! server (one worker pinned by a deliberately slow client) must answer
//! every excess connection with a typed `overloaded` response in
//! single-digit milliseconds, serve the admitted backlog once the
//! slow-client budget frees the worker, and disconnect the slow client
//! with a typed error.
//!
//! Every decision is a pure function of `(seed, site, invocation)`, so a
//! failing schedule replays exactly from its seed. The `chaos_soak`
//! binary drives all four at scale (`--schedules`, default 1000) and the
//! `repro chaos` experiment runs a miniature of the same engine.

use std::io::Read as _;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::{Duration, Instant};

use agemul::SimEngine;
use agemul_chaos::{arm, ChaosPlan, FaultKind, PPM};
use agemul_circuits::MultiplierKind;
use agemul_conformance::Json;
use agemul_harness::{
    Attempt, CaseError, Checkpoint, CheckpointError, Resume, RunLedger, Supervisor,
    SupervisorConfig,
};

use crate::proto::{read_frame, write_frame, DesignQuery};
use crate::server::{spawn, ServeConfig};
use crate::state::ServerState;

/// Outcome of one seam's soak.
#[derive(Debug)]
pub struct SeamReport {
    /// Seam name (`checkpoint`, `transport`, `flight`, `overload`).
    pub seam: &'static str,
    /// Fault schedules (or probe rounds) driven.
    pub schedules: usize,
    /// Faults actually injected across every schedule.
    pub injected: u64,
    /// Operations attempted (supervised cases, requests, profile calls).
    pub operations: u64,
    /// Invariant violations — an empty vector is the pass criterion.
    pub violations: Vec<String>,
    /// Informational metrics (latency percentiles, shed counts).
    pub notes: Vec<String>,
}

impl SeamReport {
    fn new(seam: &'static str, schedules: usize) -> Self {
        SeamReport {
            seam,
            schedules,
            injected: 0,
            operations: 0,
            violations: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// One CSV row (see [`csv_header`]).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.seam,
            self.schedules,
            self.injected,
            self.operations,
            self.violations.len()
        )
    }
}

/// Header for [`SeamReport::csv_row`].
pub fn csv_header() -> &'static str {
    "seam,schedules,injected,operations,violations"
}

/// Installs a panic hook that silences injected-fault panics (payloads
/// containing `chaos:`) so a soak's log is signal, not noise. Real panics
/// still print through the previous hook.
pub fn silence_chaos_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let text = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if !text.contains("chaos:") {
            previous(info);
        }
    }));
}

// ---------------------------------------------------------------------------
// Seam 1: checkpoint IO
// ---------------------------------------------------------------------------

const CKPT_CASES: usize = 6;
const CKPT_RUN_KEY: &str = "chaos-soak";

fn ckpt_supervisor() -> Supervisor {
    let labels = (0..CKPT_CASES).map(|i| format!("case{i}")).collect();
    let config = SupervisorConfig {
        retry_backoff: Duration::ZERO,
        checkpoint_every: 2,
        ..SupervisorConfig::default()
    };
    Supervisor::new(CKPT_RUN_KEY, labels, config)
}

fn ckpt_worker(a: &Attempt) -> Result<Json, CaseError> {
    Ok(Json::UInt(a.index as u64 * 7 + 1))
}

/// Any checkpoint that loads at all must contain exactly the reference
/// records for the indices it covers.
fn ckpt_prefix_violation(path: &Path, reference: &RunLedger) -> Option<String> {
    match Checkpoint::load(path, Some(CKPT_RUN_KEY)) {
        Ok(ck) => {
            if ck.total != CKPT_CASES {
                return Some(format!("checkpoint total {} != {CKPT_CASES}", ck.total));
            }
            for rec in &ck.entries {
                if rec != &reference.records[rec.index] {
                    return Some(format!(
                        "checkpoint entry {} diverges from the reference run",
                        rec.index
                    ));
                }
            }
            None
        }
        Err(e) => Some(format!("surviving checkpoint failed to load: {e}")),
    }
}

/// Drives `schedules` seeded fault schedules through the checkpoint
/// write/rename/read failpoints (see the module docs for the invariants).
pub fn checkpoint_seam(schedules: usize, base_seed: u64) -> SeamReport {
    let mut report = SeamReport::new("checkpoint", schedules);
    let dir = std::env::temp_dir().join(format!(
        "agemul-chaos-soak-{}-{base_seed:x}",
        std::process::id()
    ));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        report.violations.push(format!("temp dir: {e}"));
        return report;
    }

    // The uninterrupted reference every schedule must converge to.
    let ref_path = dir.join("reference.json");
    let (ref_ledger, ref_doc) = {
        let ledger = match ckpt_supervisor().run(&ckpt_worker, Some(&ref_path), Resume::Fresh) {
            Ok(l) => l,
            Err(e) => {
                report.violations.push(format!("reference run: {e}"));
                return report;
            }
        };
        let doc = std::fs::read_to_string(&ref_path).unwrap_or_default();
        (ledger, doc)
    };

    for s in 0..schedules {
        let seed = base_seed.wrapping_add(s as u64);
        let run_dir = dir.join(format!("s{s}"));
        let _ = std::fs::create_dir_all(&run_dir);
        let path = run_dir.join("ck.json");
        let scope = run_dir.to_string_lossy().into_owned();
        report.operations += CKPT_CASES as u64;

        // Rotate the fault site; vary the rate with the schedule index so
        // the matrix covers always-fires, often-fires, and rare-fires.
        let rate = [PPM, 500_000, 250_000][s % 3];
        let injected = match s % 3 {
            0 | 1 => {
                let site = if s % 3 == 0 {
                    ("ckpt/write_tmp", vec![FaultKind::IoError, FaultKind::Torn])
                } else {
                    ("ckpt/rename", vec![FaultKind::IoError])
                };
                let guard = arm(ChaosPlan::new(seed).rule(site.0, &scope, rate, &site.1));
                match ckpt_supervisor().run(&ckpt_worker, Some(&path), Resume::Fresh) {
                    Ok(ledger) => {
                        if ledger != ref_ledger {
                            report
                                .violations
                                .push(format!("schedule {s}: completed ledger diverged"));
                        }
                    }
                    Err(e) if e.to_string().contains("chaos:") => {
                        // Save failed mid-run: the surviving generation
                        // (if any) must load clean.
                        if path.exists() {
                            if let Some(v) = ckpt_prefix_violation(&path, &ref_ledger) {
                                report.violations.push(format!("schedule {s}: {v}"));
                            }
                        }
                    }
                    Err(e) => report
                        .violations
                        .push(format!("schedule {s}: non-injected failure: {e}")),
                }
                guard.injected_total()
            }
            _ => {
                // Read-back corruption: install a clean checkpoint, then
                // load under fire — every load must be clean-or-refused —
                // and resume under fire, which recomputes on refusal.
                if ckpt_supervisor()
                    .run(&ckpt_worker, Some(&path), Resume::Fresh)
                    .is_err()
                {
                    report
                        .violations
                        .push(format!("schedule {s}: disarmed install failed"));
                    continue;
                }
                let guard = arm(ChaosPlan::new(seed).rule(
                    "ckpt/read",
                    &scope,
                    rate,
                    &[FaultKind::BitFlip, FaultKind::Torn, FaultKind::IoError],
                ));
                match Checkpoint::load(&path, Some(CKPT_RUN_KEY)) {
                    Ok(ck) => {
                        if ck.to_document() != ref_doc {
                            report.violations.push(format!(
                                "schedule {s}: corrupt checkpoint passed verification"
                            ));
                        }
                    }
                    Err(
                        CheckpointError::Io { .. }
                        | CheckpointError::Parse { .. }
                        | CheckpointError::Checksum { .. }
                        | CheckpointError::Schema { .. },
                    ) => {}
                    Err(other) => report
                        .violations
                        .push(format!("schedule {s}: unexpected refusal: {other}")),
                }
                match ckpt_supervisor().run(&ckpt_worker, Some(&path), Resume::Attempt) {
                    Ok(ledger) => {
                        if ledger != ref_ledger {
                            report
                                .violations
                                .push(format!("schedule {s}: armed resume diverged"));
                        }
                    }
                    Err(e) if e.to_string().contains("chaos:") => {}
                    Err(e) => report
                        .violations
                        .push(format!("schedule {s}: non-injected resume failure: {e}")),
                }
                guard.injected_total()
            }
        };
        report.injected += injected;

        // Disarmed resume must converge to the byte-identical document.
        match ckpt_supervisor().run(&ckpt_worker, Some(&path), Resume::Attempt) {
            Ok(ledger) => {
                if ledger != ref_ledger {
                    report
                        .violations
                        .push(format!("schedule {s}: disarmed resume ledger diverged"));
                } else if std::fs::read_to_string(&path).ok().as_deref() != Some(&ref_doc) {
                    report.violations.push(format!(
                        "schedule {s}: final checkpoint is not byte-identical"
                    ));
                }
            }
            Err(e) => report
                .violations
                .push(format!("schedule {s}: disarmed resume failed: {e}")),
        }
        let _ = std::fs::remove_dir_all(&run_dir);
    }

    if schedules >= 8 && report.injected == 0 {
        report
            .violations
            .push("the schedule matrix never injected a fault".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}

// ---------------------------------------------------------------------------
// Seam 2: serve transport
// ---------------------------------------------------------------------------

/// The small query grid the transport soak cycles through (tiny widths so
/// cold misses cost milliseconds; prewarmed so the chaos phase exercises
/// the transport, not the simulator).
fn transport_queries() -> Vec<Json> {
    let mut queries = Vec::new();
    for (i, (kind, years)) in [("AM", 0.0), ("CB", 0.0), ("AM", 3.0), ("CB", 3.0)]
        .into_iter()
        .enumerate()
    {
        queries.push(Json::Obj(vec![
            ("id".into(), Json::UInt(i as u64 + 1)),
            ("op".into(), Json::Str("profile".into())),
            ("kind".into(), Json::Str(kind.into())),
            ("width".into(), Json::UInt(4)),
            ("years".into(), Json::Num(years)),
            ("patterns".into(), Json::UInt(12)),
            ("seed".into(), Json::UInt(0x0A6E_0001)),
        ]));
    }
    queries
}

fn one_request(
    addr: std::net::SocketAddr,
    frame: &Json,
    timeout: Duration,
) -> Result<Json, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("timeout: {e}"))?;
    write_frame(&mut stream, frame).map_err(|e| format!("write: {e}"))?;
    match read_frame(&mut stream) {
        Ok(Some(response)) => Ok(response),
        Ok(None) => Err("closed before responding".into()),
        Err(e) => Err(format!("read: {e}")),
    }
}

fn result_avg(response: &Json) -> Option<f64> {
    response
        .get("result")
        .and_then(|r| r.get("avg_delay_ns"))
        .and_then(Json::as_f64)
}

/// Drives `schedules` seeded fault schedules through a live server's
/// `serve/read` / `serve/write` transport failpoints (see the module docs
/// for the invariants).
pub fn transport_seam(schedules: usize, base_seed: u64) -> SeamReport {
    let mut report = SeamReport::new("transport", schedules);
    let server = match spawn(ServeConfig {
        workers: 2,
        shard_capacity: Some(16),
        stall_budget: Duration::from_millis(500),
        ..ServeConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            report.violations.push(format!("spawn: {e}"));
            return report;
        }
    };
    let Some(addr) = server.tcp_addr() else {
        report.violations.push("no tcp addr".into());
        return report;
    };
    let label = format!("tcp:{addr}");
    let queries = transport_queries();

    // Prewarm and record the reference values every disarmed check must
    // reproduce exactly (a cached injected error would diverge here).
    let mut reference = Vec::new();
    for q in &queries {
        match one_request(addr, q, Duration::from_secs(10)) {
            Ok(r) if r.get("ok").and_then(Json::as_bool) == Some(true) => {
                reference.push(result_avg(&r))
            }
            other => {
                report.violations.push(format!("prewarm failed: {other:?}"));
                let _ = server.shutdown();
                return report;
            }
        }
    }

    const KINDS: [FaultKind; 5] = [
        FaultKind::IoError,
        FaultKind::Torn,
        FaultKind::BitFlip,
        FaultKind::Stall,
        FaultKind::Disconnect,
    ];
    for s in 0..schedules {
        let seed = base_seed.wrapping_add(0x7A5 * s as u64);
        let rate = [250_000, 120_000, 60_000][s % 3];
        {
            let guard = arm(ChaosPlan::new(seed)
                .rule("serve/read", &label, rate, &KINDS)
                .rule("serve/write", &label, rate, &KINDS));
            for (i, q) in queries.iter().enumerate() {
                report.operations += 1;
                // An `Err` here is an injected disconnect / corruption /
                // timeout and is fine; a response that arrives intact must
                // be a typed protocol answer.
                if let Ok(response) = one_request(addr, q, Duration::from_millis(250)) {
                    if response.get("ok").and_then(Json::as_bool).is_none() {
                        report.violations.push(format!(
                            "schedule {s} req {i}: untyped response: {response}"
                        ));
                    }
                }
            }
            report.injected += guard.injected_total();
        }

        // Disarmed: the server must answer every query with the reference
        // value — never wedged, never serving a cached injected error.
        for (i, q) in queries.iter().enumerate() {
            match one_request(addr, q, Duration::from_secs(10)) {
                Ok(r)
                    if r.get("ok").and_then(Json::as_bool) == Some(true)
                        && result_avg(&r) == reference[i] => {}
                other => report.violations.push(format!(
                    "schedule {s}: disarmed query {i} diverged: {other:?}"
                )),
            }
        }
        if server.state().in_flight() != 0 {
            report
                .violations
                .push(format!("schedule {s}: single-flight map did not drain"));
        }
    }

    if schedules >= 8 && report.injected == 0 {
        report
            .violations
            .push("the schedule matrix never injected a fault".into());
    }
    if let Err(e) = server.shutdown() {
        report.violations.push(format!("shutdown: {e}"));
    }
    report
}

// ---------------------------------------------------------------------------
// Seam 3: cache / single-flight
// ---------------------------------------------------------------------------

/// Drives `schedules` seeded leader-death schedules through the
/// single-flight and cache failpoints on an in-process [`ServerState`]
/// (see the module docs for the invariants).
///
/// Uses width 6 so the `core/profile` scope (`x6`) cannot strike the
/// widths any concurrent experiment profiles.
pub fn flight_seam(schedules: usize, base_seed: u64) -> SeamReport {
    let mut report = SeamReport::new("flight", schedules);
    let scope = format!("flight-soak-{base_seed:x}");
    let state = ServerState::with_chaos_scope(Some(16), scope.clone());
    let queries: Vec<DesignQuery> = [(MultiplierKind::Array, 0.0), (MultiplierKind::Array, 2.0)]
        .into_iter()
        .map(|(kind, years)| DesignQuery {
            kind,
            width: 6,
            years,
            patterns: 10,
            seed: 0x0A6E_0001,
        })
        .collect();

    // Prewarm the designs/workloads (not the profiles: cold builds are the
    // interesting path) by profiling, then dropping the cache contents via
    // a fresh state would be overkill — instead keep the cache warm for
    // half the calls and vary `years` for cold keys per schedule.
    for s in 0..schedules {
        let seed = base_seed.wrapping_add(0x9E37 * s as u64);
        let rate = [400_000, 200_000, 100_000][s % 3];
        // A per-schedule cold key forces a real build under fire.
        let cold = DesignQuery {
            years: 4.0 + (s % 13) as f64 * 0.25,
            ..queries[0]
        };
        {
            let guard = arm(ChaosPlan::new(seed)
                .rule("flight/lead", &scope, rate, &[FaultKind::Panic])
                .rule("flight/publish", &scope, rate, &[FaultKind::Panic])
                .rule("serve/build", &scope, rate, &[FaultKind::Panic])
                .rule("core/profile", "x6", rate, &[FaultKind::IoError]));
            let outcomes: Vec<Result<bool, String>> = std::thread::scope(|ts| {
                let handles: Vec<_> = (0..4)
                    .map(|t| {
                        let state = &state;
                        let queries = &queries;
                        let cold = &cold;
                        ts.spawn(move || {
                            let mut results = Vec::new();
                            for k in 0..3 {
                                let q = if k == 2 { cold } else { &queries[(t + k) % 2] };
                                let outcome = catch_unwind(AssertUnwindSafe(|| {
                                    state.profile(q, SimEngine::Level, None).map(|_| ())
                                }));
                                results.push(match outcome {
                                    Ok(Ok(())) => Ok(true),
                                    // Typed flight/build error: acceptable.
                                    Ok(Err(_)) => Ok(false),
                                    Err(payload) => {
                                        let text = payload
                                            .downcast_ref::<&str>()
                                            .copied()
                                            .map(String::from)
                                            .or_else(|| payload.downcast_ref::<String>().cloned())
                                            .unwrap_or_default();
                                        if text.contains("chaos:") {
                                            Ok(false)
                                        } else {
                                            Err(format!("non-injected panic: {text}"))
                                        }
                                    }
                                });
                            }
                            results
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap_or_default())
                    .collect()
            });
            report.operations += outcomes.len() as u64;
            for o in outcomes {
                if let Err(v) = o {
                    report.violations.push(format!("schedule {s}: {v}"));
                }
            }
            report.injected += guard.injected_total();
        }

        // Disarmed: every key (including the one whose leader may have
        // died) must build cleanly — a cached error would surface here —
        // and the in-flight map must have drained.
        if state.in_flight() != 0 {
            report
                .violations
                .push(format!("schedule {s}: in-flight map did not drain"));
        }
        for q in queries.iter().chain(std::iter::once(&cold)) {
            if let Err(e) = state.profile(q, SimEngine::Level, None) {
                report
                    .violations
                    .push(format!("schedule {s}: disarmed profile failed: {e}"));
            }
        }
    }

    if schedules >= 8 && report.injected == 0 {
        report
            .violations
            .push("the schedule matrix never injected a fault".into());
    }
    report
}

// ---------------------------------------------------------------------------
// Scenario 4: overload shedding
// ---------------------------------------------------------------------------

/// Saturates a one-worker server behind a deliberately slow client and
/// asserts the overload contract: every excess connection receives a
/// typed `overloaded` response with p99 latency under 10 ms, admitted
/// connections are served once the slow-client budget frees the worker,
/// and the slow client itself is disconnected with a typed error.
pub fn overload_probe(flood: usize) -> SeamReport {
    let mut report = SeamReport::new("overload", 1);
    let stall_budget = Duration::from_millis(400);
    let server = match spawn(ServeConfig {
        workers: 1,
        admission_queue: 2,
        stall_budget,
        shard_capacity: Some(8),
        ..ServeConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            report.violations.push(format!("spawn: {e}"));
            return report;
        }
    };
    let Some(addr) = server.tcp_addr() else {
        report.violations.push("no tcp addr".into());
        return report;
    };

    // Pin the single worker: a partial length prefix, then silence.
    let mut slow = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            report.violations.push(format!("slow connect: {e}"));
            let _ = server.shutdown();
            return report;
        }
    };
    let _ = slow.set_read_timeout(Some(stall_budget + Duration::from_secs(2)));
    use std::io::Write as _;
    let _ = slow.write_all(&[0, 0]);
    // Give the worker time to claim the connection (freeing the queue).
    std::thread::sleep(Duration::from_millis(100));

    let stats = Json::Obj(vec![
        ("id".into(), Json::UInt(7)),
        ("op".into(), Json::Str("stats".into())),
    ]);
    let outcomes: Vec<(Duration, Result<Json, String>)> = std::thread::scope(|ts| {
        let handles: Vec<_> = (0..flood)
            .map(|_| {
                let stats = &stats;
                ts.spawn(move || {
                    let t0 = Instant::now();
                    let outcome = one_request(addr, stats, stall_budget + Duration::from_secs(2));
                    (t0.elapsed(), outcome)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or((Duration::ZERO, Err("flood thread panicked".into())))
            })
            .collect()
    });
    report.operations += flood as u64 + 1;

    let mut shed_latencies: Vec<f64> = Vec::new();
    let mut served = 0usize;
    for (latency, outcome) in &outcomes {
        match outcome {
            Ok(response) => {
                let overloaded = response.get("overloaded").and_then(Json::as_bool) == Some(true);
                let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
                if overloaded {
                    shed_latencies.push(latency.as_secs_f64() * 1e3);
                } else if ok {
                    served += 1;
                } else {
                    report.violations.push(format!(
                        "flood response neither ok nor overloaded: {response}"
                    ));
                }
            }
            Err(e) => report
                .violations
                .push(format!("flood connection got no typed answer: {e}")),
        }
    }
    if shed_latencies.is_empty() {
        report
            .violations
            .push("saturated server never shed a connection".into());
    }
    if served == 0 {
        report
            .violations
            .push("no admitted connection was served after the budget fired".into());
    }
    shed_latencies.sort_by(|a, b| a.total_cmp(b));
    let p99 = shed_latencies
        .get(((shed_latencies.len() as f64 * 0.99).ceil() as usize).saturating_sub(1))
        .copied()
        .unwrap_or(0.0);
    if p99 >= 10.0 {
        report
            .violations
            .push(format!("shed p99 {p99:.2} ms breaches the 10 ms bound"));
    }
    report.notes.push(format!(
        "flood {flood}: shed {} (p99 {:.2} ms), served {served}",
        shed_latencies.len(),
        p99
    ));

    // The slow client must have received a typed slow-client error.
    match read_frame(&mut slow) {
        Ok(Some(response)) => {
            let error = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or_default();
            if response.get("ok").and_then(Json::as_bool) != Some(false)
                || !error.contains("slow client")
            {
                report
                    .violations
                    .push(format!("slow client got a non-typed goodbye: {response}"));
            }
        }
        other => report
            .violations
            .push(format!("slow client was not answered: {other:?}")),
    }
    // And the socket must actually be dead (worker freed for good).
    let mut probe = [0u8; 1];
    match slow.read(&mut probe) {
        Ok(0) | Err(_) => {}
        Ok(_) => report
            .violations
            .push("slow client socket still delivers data after teardown".into()),
    }

    let shed_total = server.state().shed();
    report
        .notes
        .push(format!("server shed counter: {shed_total}"));
    if shed_total == 0 {
        report
            .violations
            .push("stats shed counter never incremented".into());
    }
    if let Err(e) = server.shutdown() {
        report.violations.push(format!("shutdown: {e}"));
    }
    report
}

// ---------------------------------------------------------------------------
// The full soak
// ---------------------------------------------------------------------------

/// Runs every seam, splitting `total` schedules roughly 40 % checkpoint,
/// 20 % transport, 35 % flight, and the remainder as overload-probe
/// rounds (at least one).
pub fn run_soak(total: usize, base_seed: u64) -> Vec<SeamReport> {
    let probes = (total / 125).clamp(1, 8);
    let ckpt = (total * 2) / 5;
    let transport = total / 5;
    let flight = total.saturating_sub(ckpt + transport + probes).max(1);

    let mut reports = vec![
        checkpoint_seam(ckpt.max(1), base_seed),
        transport_seam(transport.max(1), base_seed ^ 0x74727370),
        flight_seam(flight, base_seed ^ 0x666C6774),
    ];
    let mut overload = SeamReport::new("overload", probes);
    for round in 0..probes {
        let r = overload_probe(16 + 4 * round);
        overload.injected += r.injected;
        overload.operations += r.operations;
        overload.violations.extend(r.violations);
        overload.notes.extend(r.notes);
    }
    reports.push(overload);
    reports
}

/// Writes the soak summary CSV (one row per seam).
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_csv(path: &Path, reports: &[SeamReport]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut doc = String::from(csv_header());
    doc.push('\n');
    for r in reports {
        doc.push_str(&r.csv_row());
        doc.push('\n');
    }
    std::fs::write(path, doc)
}
