//! The thread-pool + channel socket server.
//!
//! An acceptor thread hands connections to a fixed worker pool over an
//! mpsc channel; each worker serves one connection at a time, frame by
//! frame. Every simulation op runs under the harness's single-request
//! supervision ([`run_request_supervised`]): panics are quarantined into
//! an error *response* instead of killing the worker, a per-request
//! `deadline_ms` is enforced cooperatively through the attempt's
//! [`CancelToken`](agemul::CancelToken), and an exhausted levelized-kernel
//! budget degrades to one final attempt on the event-driven reference
//! engine — the response records the engine, retries, and degradation so
//! clients can see what they got.
//!
//! Graceful shutdown (the `shutdown` op or [`ServerHandle::shutdown`])
//! stops the acceptor, drains the workers, and — when a snapshot path is
//! configured — saves the profile cache for the next process's warm
//! start.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use agemul::{EngineConfig, McConfig, McReport, MonteCarloCampaign, PeriodSweep, SimEngine};
use agemul_conformance::Json;
use agemul_faults::{Campaign, FaultSpec};
use agemul_fleet::{FleetCampaign, FleetConfig, FleetPolicy, FleetSim, RoutingPolicy};
use agemul_harness::{
    is_cancellation, run_request_supervised, Attempt, CaseError, CaseStatus, SupervisorConfig,
};

use agemul_chaos::ChaosStream;

use crate::flight::FlightError;
use crate::proto::{
    response_error, response_ok, response_overloaded, write_frame, DesignQuery, FrameAccumulator,
    FramePoll, Request, RequestBody,
};
use crate::state::ServerState;

/// Where the server listens.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// TCP on the given address (e.g. `127.0.0.1:0` for an ephemeral
    /// port; the bound address is reported by [`ServerHandle::tcp_addr`]).
    Tcp(String),
    /// A Unix-domain socket at the given path (removed on bind and on
    /// shutdown).
    Unix(PathBuf),
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listening endpoint.
    pub endpoint: Endpoint,
    /// Worker threads. Each worker serves one connection at a time, so
    /// this bounds the number of concurrently served clients.
    pub workers: usize,
    /// Per-shard profile-cache bound (`None` = unbounded).
    pub shard_capacity: Option<usize>,
    /// Warm-start snapshot path: loaded (if present) on spawn, saved on
    /// graceful shutdown.
    pub snapshot: Option<PathBuf>,
    /// Levelized-kernel retries per request before the Event-engine
    /// degradation attempt.
    pub max_retries: u32,
    /// Admission-queue depth: connections accepted but not yet claimed by
    /// a worker. Beyond this the acceptor *sheds*: the excess connection
    /// gets one typed `overloaded` response and is closed immediately,
    /// instead of queueing unboundedly behind a saturated pool.
    pub admission_queue: usize,
    /// Slow-client budget: how long a connection may sit *mid-frame*
    /// without delivering a byte before the worker sends a typed error,
    /// shuts the socket down, and moves on. Silence between frames is an
    /// idle client and never counts.
    pub stall_budget: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
            workers: 4,
            shard_capacity: Some(64),
            snapshot: None,
            max_retries: 1,
            admission_queue: 64,
            stall_budget: Duration::from_secs(2),
        }
    }
}

/// What a worker needs from a connection beyond `Read + Write`: the
/// polling read timeout that lets it notice shutdown, and a hard
/// both-directions socket shutdown for teardown (so a half-dead peer can
/// never hold the worker's buffers or linger in `CLOSE_WAIT`).
///
/// Abstracting this (rather than using [`Conn`] directly) lets the serve
/// loop run over a chaos fault-wrapping stream in soaks and over mock
/// transports in unit tests.
pub(crate) trait Transport: Read + Write {
    /// Sets the polling read timeout.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Shuts down both directions of the underlying socket.
    fn shutdown_both(&self) -> io::Result<()>;
}

impl<S: Transport> Transport for ChaosStream<S> {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.get_ref().set_read_timeout(timeout)
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.get_ref().shutdown_both()
    }
}

/// One accepted connection, either transport.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(timeout),
            Conn::Unix(s) => s.set_write_timeout(timeout),
        }
    }
}

impl Transport for Conn {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    fn shutdown_both(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Both),
            Conn::Unix(s) => s.shutdown(Shutdown::Both),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The resolved listening address, used both to report where we bound and
/// to poke the blocking acceptor awake on shutdown.
#[derive(Clone, Debug)]
enum Bound {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

impl Bound {
    /// A stable textual label for this listener, used as the context of
    /// the `serve/read` / `serve/write` chaos failpoints so a fault plan
    /// can target one server's transport without touching another's.
    fn label(&self) -> String {
        match self {
            Bound::Tcp(addr) => format!("tcp:{addr}"),
            Bound::Unix(path) => format!("unix:{}", path.display()),
        }
    }

    fn poke(&self) {
        // A throwaway connection unblocks the acceptor so it can observe
        // the stop flag; errors are irrelevant (the listener may already
        // be gone).
        match self {
            Bound::Tcp(addr) => drop(TcpStream::connect_timeout(addr, Duration::from_secs(1))),
            Bound::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) detaches the threads (they keep serving
/// until the process exits); tests and the loadgen always shut down.
pub struct ServerHandle {
    state: Arc<ServerState>,
    bound: Bound,
    stop: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    snapshot: Option<PathBuf>,
}

/// Spawns the server described by `config`: binds the endpoint, loads the
/// warm-start snapshot if one exists, and starts the acceptor and worker
/// threads.
///
/// # Errors
///
/// Bind/listen failures, and a snapshot file that exists but fails to
/// load (a corrupt warm start is surfaced, not silently ignored).
pub fn spawn(config: ServeConfig) -> io::Result<ServerHandle> {
    // Bind first: the bound address labels the state's chaos failpoints,
    // so every fault site of one server shares one scope string.
    let (bound, listener) = match &config.endpoint {
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            let bound = Bound::Tcp(listener.local_addr()?);
            (bound, Listener::Tcp(listener))
        }
        Endpoint::Unix(path) => {
            // A stale socket file from a killed predecessor would fail the
            // bind; remove it (errors deferred to the bind itself).
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            (Bound::Unix(path.clone()), Listener::Unix(listener))
        }
    };

    let state = Arc::new(ServerState::with_chaos_scope(
        config.shard_capacity,
        bound.label(),
    ));
    if let Some(path) = &config.snapshot {
        if path.exists() {
            let seeded = state
                .load_snapshot(path)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            eprintln!(
                "[agemul-serve] warm start: {seeded} cache entries from {}",
                path.display()
            );
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let queued = Arc::new(AtomicUsize::new(0));
    let (sender, receiver) = std::sync::mpsc::channel::<Conn>();
    let receiver = Arc::new(Mutex::new(receiver));

    let acceptor = {
        let stop = Arc::clone(&stop);
        let queued = Arc::clone(&queued);
        let state = Arc::clone(&state);
        let depth = config.admission_queue;
        std::thread::spawn(move || match listener {
            Listener::Tcp(l) => accept_tcp(&l, &sender, &stop, &queued, depth, &state),
            Listener::Unix(l) => accept_unix(&l, &sender, &stop, &queued, depth, &state),
        })
    };

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let state = Arc::clone(&state);
            let receiver = Arc::clone(&receiver);
            let stop = Arc::clone(&stop);
            let queued = Arc::clone(&queued);
            let bound = bound.clone();
            let max_retries = config.max_retries;
            let stall_budget = config.stall_budget;
            std::thread::spawn(move || {
                worker_loop(
                    &state,
                    &receiver,
                    &stop,
                    &queued,
                    &bound,
                    max_retries,
                    stall_budget,
                )
            })
        })
        .collect();

    Ok(ServerHandle {
        state,
        bound,
        stop,
        acceptor,
        workers,
        snapshot: config.snapshot,
    })
}

impl ServerHandle {
    /// The server's shared state (for in-process inspection in tests and
    /// the loadgen).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The bound TCP address, when listening on TCP.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.bound {
            Bound::Tcp(addr) => Some(*addr),
            Bound::Unix(_) => None,
        }
    }

    /// Whether a shutdown (op or handle) has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until a client's `shutdown` op stops the server, then
    /// finishes like [`shutdown`](Self::shutdown).
    ///
    /// # Errors
    ///
    /// Snapshot-save failures (the server is down regardless).
    pub fn run_until_shutdown(self) -> io::Result<()> {
        let ServerHandle {
            state,
            bound,
            acceptor,
            workers,
            snapshot,
            ..
        } = self;
        let _ = acceptor.join();
        finish(&state, &bound, workers, snapshot.as_deref())
    }

    /// Stops the server: no new connections, in-flight connections drain,
    /// workers exit, and the snapshot (if configured) is saved.
    ///
    /// # Errors
    ///
    /// Snapshot-save failures (the server is down regardless).
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        self.bound.poke();
        let ServerHandle {
            state,
            bound,
            acceptor,
            workers,
            snapshot,
            ..
        } = self;
        let _ = acceptor.join();
        finish(&state, &bound, workers, snapshot.as_deref())
    }
}

/// Common tail of both shutdown paths: drain workers, unlink a Unix
/// socket, save the warm-start snapshot.
fn finish(
    state: &ServerState,
    bound: &Bound,
    workers: Vec<JoinHandle<()>>,
    snapshot: Option<&std::path::Path>,
) -> io::Result<()> {
    for worker in workers {
        let _ = worker.join();
    }
    if let Bound::Unix(path) = bound {
        let _ = std::fs::remove_file(path);
    }
    if let Some(path) = snapshot {
        let saved = state.save_snapshot(path).map_err(io::Error::other)?;
        eprintln!(
            "[agemul-serve] snapshot: {saved} cache entries to {}",
            path.display()
        );
    }
    Ok(())
}

/// The bound listener, either transport (held so the acceptor thread can
/// be spawned after the server state exists).
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// Admits `conn` into the bounded queue or sheds it with a typed
/// `overloaded` response. Returns `false` when the worker channel is gone
/// (shutdown) and the acceptor should exit.
fn admit(
    conn: Conn,
    sender: &Sender<Conn>,
    queued: &AtomicUsize,
    depth: usize,
    state: &ServerState,
) -> bool {
    // Reserve a queue slot before sending: the counter can momentarily
    // read high (a worker decrements only once it claims the connection),
    // which errs toward shedding — never toward unbounded queueing.
    let admitted = queued
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < depth).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        shed(conn, state);
        return true;
    }
    if sender.send(conn).is_err() {
        queued.fetch_sub(1, Ordering::SeqCst);
        return false;
    }
    true
}

/// Sheds one connection: a single typed `overloaded` response under a
/// short write timeout (a shed must cost microseconds, not a slow-client
/// stall), then a hard both-directions shutdown.
fn shed(mut conn: Conn, state: &ServerState) {
    state.record_shed();
    let _ = conn.set_write_timeout(Some(Duration::from_millis(50)));
    let _ = write_frame(&mut conn, &response_overloaded());
    let _ = conn.shutdown_both();
}

fn accept_tcp(
    listener: &TcpListener,
    sender: &Sender<Conn>,
    stop: &AtomicBool,
    queued: &AtomicUsize,
    depth: usize,
    state: &ServerState,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                // Request/response frames are small; leaving Nagle on
                // would cost a delayed-ACK round trip per response.
                let _ = stream.set_nodelay(true);
                if !admit(Conn::Tcp(stream), sender, queued, depth, state) {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
    // Dropping the sender lets idle workers observe the drain.
}

fn accept_unix(
    listener: &UnixListener,
    sender: &Sender<Conn>,
    stop: &AtomicBool,
    queued: &AtomicUsize,
    depth: usize,
    state: &ServerState,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                if !admit(Conn::Unix(stream), sender, queued, depth, state) {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    state: &ServerState,
    receiver: &Arc<Mutex<Receiver<Conn>>>,
    stop: &AtomicBool,
    queued: &AtomicUsize,
    bound: &Bound,
    max_retries: u32,
    stall_budget: Duration,
) {
    loop {
        // Holding the receiver lock only for the recv keeps the pool
        // honest: exactly one idle worker waits at a time, the rest block
        // on the mutex — both are woken by drain or by a new connection.
        let conn = {
            let guard = receiver.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        match conn {
            Ok(conn) => {
                // The connection left the admission queue the moment a
                // worker claimed it; free its slot for the acceptor.
                queued.fetch_sub(1, Ordering::SeqCst);
                serve_conn(state, conn, stop, bound, max_retries, stall_budget);
            }
            Err(_) => break, // channel drained: acceptor is gone
        }
    }
}

/// Serves one accepted connection: wraps it in the chaos fault layer
/// (one relaxed atomic load per IO call when no plan is armed) and runs
/// the transport-generic serve loop.
fn serve_conn(
    state: &ServerState,
    conn: Conn,
    stop: &AtomicBool,
    bound: &Bound,
    max_retries: u32,
    stall_budget: Duration,
) {
    let stream = ChaosStream::new(conn, "serve", bound.label());
    serve_stream(state, stream, stop, bound, max_retries, stall_budget);
}

/// Serves one connection to completion: frames in, responses out. A read
/// timeout lets the worker notice a shutdown even under an idle client
/// that never closes its end; the [`FrameAccumulator`] keeps partial
/// frames across those timeouts, and a client that stalls *mid-frame*
/// longer than `stall_budget` is sent a typed error and disconnected so
/// it can never pin a worker.
fn serve_stream<T: Transport>(
    state: &ServerState,
    mut stream: T,
    stop: &AtomicBool,
    bound: &Bound,
    max_retries: u32,
    stall_budget: Duration,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut acc = FrameAccumulator::new();
    let mut stalled_since: Option<Instant> = None;
    loop {
        let frame = match acc.poll(&mut stream) {
            Ok(FramePoll::Frame(frame)) => {
                stalled_since = None;
                frame
            }
            Ok(FramePoll::Closed) => return, // clean close
            Ok(FramePoll::Pending { progressed }) => {
                if progressed {
                    stalled_since = None;
                }
                if stop.load(Ordering::SeqCst) {
                    let _ = stream.shutdown_both();
                    return;
                }
                continue;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    let _ = stream.shutdown_both();
                    return;
                }
                if acc.mid_frame() {
                    let since = *stalled_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= stall_budget {
                        // Typed goodbye (best effort — the client may be
                        // gone), then a hard teardown so the worker is
                        // freed no matter what the peer does.
                        let _ = write_frame(
                            &mut stream,
                            &response_error(
                                0,
                                &format!(
                                    "slow client: no bytes mid-frame for {}ms; disconnecting",
                                    stall_budget.as_millis()
                                ),
                            ),
                        );
                        let _ = stream.shutdown_both();
                        return;
                    }
                } else {
                    stalled_since = None;
                }
                continue;
            }
            // Malformed length/JSON or transport failure: tear the socket
            // down both ways so the peer sees a reset, not a half-open
            // connection that swallows its next request.
            Err(_) => {
                let _ = stream.shutdown_both();
                return;
            }
        };
        let response = handle_frame(state, &frame, stop, bound, max_retries);
        if write_frame(&mut stream, &response).is_err() {
            // A failed response write leaves the stream mid-frame from the
            // client's perspective; shut down both directions so the
            // client unblocks immediately instead of waiting on a reply
            // that will never finish.
            let _ = stream.shutdown_both();
            return;
        }
        if stop.load(Ordering::SeqCst) {
            let _ = stream.shutdown_both();
            return;
        }
    }
}

/// Evaluates one frame: a single request object, or a
/// `{"op":"batch","requests":[...]}` envelope whose responses come back
/// in order under `"responses"`.
fn handle_frame(
    state: &ServerState,
    frame: &Json,
    stop: &AtomicBool,
    bound: &Bound,
    max_retries: u32,
) -> Json {
    if frame.get("op").and_then(Json::as_str) == Some("batch") {
        let Some(requests) = frame.get("requests").and_then(Json::as_arr) else {
            return response_error(0, "batch needs a requests array");
        };
        let responses = requests
            .iter()
            .map(|r| handle_request_json(state, r, stop, bound, max_retries))
            .collect();
        return Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("responses".into(), Json::Arr(responses)),
        ]);
    }
    handle_request_json(state, frame, stop, bound, max_retries)
}

fn handle_request_json(
    state: &ServerState,
    raw: &Json,
    stop: &AtomicBool,
    bound: &Bound,
    max_retries: u32,
) -> Json {
    let id = raw.get("id").and_then(Json::as_u64).unwrap_or(0);
    let request = match Request::from_json(raw) {
        Ok(r) => r,
        Err(e) => return response_error(id, &e),
    };
    match &request.body {
        RequestBody::Stats => response_ok(request.id, "level", 0, false, state.stats_json()),
        RequestBody::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            bound.poke();
            response_ok(
                request.id,
                "level",
                0,
                false,
                Json::Obj(vec![("stopping".into(), Json::Bool(true))]),
            )
        }
        body => run_supervised_op(state, &request, body, max_retries),
    }
}

/// Runs one simulation op under single-request supervision and renders
/// the record as a response.
fn run_supervised_op(
    state: &ServerState,
    request: &Request,
    body: &RequestBody,
    max_retries: u32,
) -> Json {
    let label = op_label(body);
    let config = SupervisorConfig {
        deadline: request.deadline_ms.map(Duration::from_millis),
        max_retries,
        retry_backoff: Duration::from_millis(1),
        degrade: true,
        checkpoint_every: 1,
        stall_per_case: None,
    };
    let record = match run_request_supervised(&label, &config, &|attempt: &Attempt| {
        eval_op(state, body, attempt)
    }) {
        Ok(record) => record,
        Err(e) => return response_error(request.id, &format!("supervisor failure: {e}")),
    };
    match record.status {
        CaseStatus::Done { value } => response_ok(
            request.id,
            &record.engine,
            record.retries,
            record.degraded,
            value,
        ),
        CaseStatus::Quarantined { reason } => response_error(request.id, &reason),
    }
}

fn op_label(body: &RequestBody) -> String {
    let (op, q) = match body {
        RequestBody::Profile(q) => ("profile", q),
        RequestBody::Sweep { query, .. } => ("sweep", query),
        RequestBody::Campaign { query, .. } => ("campaign", query),
        RequestBody::Mc { query, .. } => ("mc", query),
        RequestBody::Fleet { query, .. } => ("fleet", query),
        // Stats/Shutdown never reach supervision.
        RequestBody::Stats | RequestBody::Shutdown => return "stats".into(),
    };
    format!(
        "{op}/{}{}@{}y/{}x{:#x}",
        q.kind.label(),
        q.width,
        q.years,
        q.patterns,
        q.seed
    )
}

fn flight_to_case(e: FlightError) -> CaseError {
    match e {
        FlightError::Cancelled => CaseError::Cancelled,
        other => CaseError::Failed(other.to_string()),
    }
}

/// One supervised attempt at one simulation op.
fn eval_op(state: &ServerState, body: &RequestBody, attempt: &Attempt) -> Result<Json, CaseError> {
    match body {
        RequestBody::Profile(query) => {
            let (profile, how) = state
                .profile(query, attempt.engine, attempt.cancel.as_ref())
                .map_err(flight_to_case)?;
            Ok(Json::Obj(vec![
                ("ops".into(), Json::UInt(profile.len() as u64)),
                ("avg_delay_ns".into(), Json::Num(profile.avg_delay_ns())),
                ("max_delay_ns".into(), Json::Num(profile.max_delay_ns())),
                ("cache".into(), Json::Str(how.label().into())),
            ]))
        }
        RequestBody::Sweep {
            query,
            periods,
            skip,
        } => {
            let (profile, how) = state
                .profile(query, attempt.engine, attempt.cancel.as_ref())
                .map_err(flight_to_case)?;
            let sweep = PeriodSweep::run(
                &profile,
                &EngineConfig::adaptive(periods[0], *skip),
                periods,
            );
            let points = sweep
                .points()
                .iter()
                .map(|(period, m)| {
                    Json::Obj(vec![
                        ("period_ns".into(), Json::Num(*period)),
                        ("avg_latency_ns".into(), Json::Num(m.avg_latency_ns())),
                        ("errors".into(), Json::UInt(m.errors)),
                        ("undetected".into(), Json::UInt(m.undetected)),
                    ])
                })
                .collect();
            let (best_period, best) = sweep.best_latency();
            Ok(Json::Obj(vec![
                ("cache".into(), Json::Str(how.label().into())),
                ("points".into(), Json::Arr(points)),
                ("best_period_ns".into(), Json::Num(best_period)),
                (
                    "best_avg_latency_ns".into(),
                    Json::Num(best.avg_latency_ns()),
                ),
            ]))
        }
        RequestBody::Campaign {
            query,
            faults,
            fault_seed,
            skip,
        } => eval_campaign(state, query, *faults, *fault_seed, *skip),
        RequestBody::Mc {
            query,
            corners,
            sigma,
            mc_seed,
            skip,
        } => eval_mc(state, query, *corners, *sigma, *mc_seed, *skip, attempt),
        RequestBody::Fleet {
            query,
            nodes,
            epochs,
            policy,
            skip,
        } => eval_fleet(state, query, *nodes, *epochs, policy, *skip, attempt),
        RequestBody::Stats | RequestBody::Shutdown => Err(CaseError::Failed(
            "op does not run under supervision".into(),
        )),
    }
}

/// Prepares and evaluates a fault campaign. Preparation shares the
/// server's profile cache (baseline and delay-fault profiles), so
/// repeated campaigns over a shared workload reuse each other's
/// simulations.
fn eval_campaign(
    state: &ServerState,
    query: &DesignQuery,
    faults: usize,
    fault_seed: u64,
    skip: u32,
) -> Result<Json, CaseError> {
    let design = state
        .design(query.kind, query.width)
        .map_err(CaseError::Failed)?;
    let workload = state.workload(query.width, query.patterns, query.seed);
    let specs = FaultSpec::sample(&design, workload.pairs().len(), faults, fault_seed);
    let campaign = Campaign::prepare_cached(&design, workload.pairs(), &specs, state.cache())
        .map_err(|e| {
            if is_cancellation(&e) {
                CaseError::Cancelled
            } else {
                CaseError::Failed(e.to_string())
            }
        })?;
    let cycle_ns = 0.95
        * design
            .critical_delay_ns(None)
            .map_err(|e| CaseError::Failed(e.to_string()))?;
    let report = campaign.run(&EngineConfig::adaptive(cycle_ns, skip));
    Json::parse(&report.to_json())
        .map_err(|e| CaseError::Failed(format!("campaign report serialization: {e}")))
}

fn core_to_case(e: agemul::CoreError) -> CaseError {
    if is_cancellation(&e) {
        CaseError::Cancelled
    } else {
        CaseError::Failed(e.to_string())
    }
}

/// Runs a Monte Carlo yield campaign: `corners` sampled dies, each
/// evaluated at integer lifetime points `0..=floor(query.years)` with the
/// short cycle anchored to the design's fresh critical path.
///
/// The primary attempt uses the plan-reuse re-timing fast path (one
/// compiled kernel per corner, re-timed across the lifetime axis); the
/// degraded attempt rebuilds every kernel on the event-driven reference
/// engine — both produce byte-identical reports (pinned in `agemul`'s
/// campaign tests).
fn eval_mc(
    state: &ServerState,
    query: &DesignQuery,
    corners: usize,
    sigma: f64,
    mc_seed: u64,
    skip: u32,
    attempt: &Attempt,
) -> Result<Json, CaseError> {
    let design = state
        .design(query.kind, query.width)
        .map_err(CaseError::Failed)?;
    let workload = state.workload(query.width, query.patterns, query.seed);
    let mut config = McConfig::new(corners, sigma, mc_seed);
    config.skip = skip;
    config.years = (0..=query.years.floor() as u64).map(|y| y as f64).collect();
    let campaign = MonteCarloCampaign::new(&design, workload.pairs(), state.bti(), config)
        .map_err(core_to_case)?;

    let cancel = attempt.cancel.as_ref();
    let report = match attempt.engine {
        SimEngine::Level => campaign.run(cancel).map_err(core_to_case)?,
        SimEngine::Event => {
            let mut outcomes = Vec::with_capacity(corners);
            for c in 0..corners {
                outcomes.push(
                    campaign
                        .run_corner_from_scratch(c, SimEngine::Event, cancel)
                        .map_err(core_to_case)?,
                );
            }
            McReport {
                years: campaign.config().years.clone(),
                cycle_ns: campaign.config().cycle_ns,
                corners: outcomes,
            }
        }
    };

    let curve = |adaptive: bool| {
        Json::Arr(
            report
                .yield_curve(adaptive)
                .into_iter()
                .map(|(_, frac)| Json::Num(frac))
                .collect(),
        )
    };
    Ok(Json::Obj(vec![
        ("cycle_ns".into(), Json::Num(report.cycle_ns)),
        ("corners".into(), Json::UInt(report.corners.len() as u64)),
        (
            "years".into(),
            Json::Arr(report.years.iter().map(|&y| Json::Num(y)).collect()),
        ),
        ("baseline_yield".into(), curve(false)),
        ("ahl_yield".into(), curve(true)),
    ]))
}

/// Runs a fleet policy campaign on the discrete-event datacenter
/// simulator: `nodes` divergently aged instances, `epochs` epochs of
/// `query.patterns` routed operations with `query.years` of fair-share
/// aging per epoch, under the named routing policy.
///
/// Both engines produce byte-identical event logs (pinned in
/// `agemul-fleet`'s tests), so a degraded attempt returns the same
/// summary the primary would have.
fn eval_fleet(
    state: &ServerState,
    query: &DesignQuery,
    nodes: usize,
    epochs: usize,
    policy: &str,
    skip: u32,
    attempt: &Attempt,
) -> Result<Json, CaseError> {
    let routing = RoutingPolicy::parse(policy).map_err(CaseError::Failed)?;
    let design = state
        .design(query.kind, query.width)
        .map_err(CaseError::Failed)?;
    if !query.years.is_finite() || query.years < 0.0 {
        return Err(CaseError::Failed(format!(
            "fleet years-per-epoch must be finite and non-negative, got {}",
            query.years
        )));
    }
    let mut config = FleetConfig::new(nodes, epochs, query.patterns, query.seed);
    config.skip = skip;
    config.years_per_epoch = query.years;
    config.policy = FleetPolicy::baseline(routing);
    let campaign = FleetCampaign::new(&design, state.bti(), config).map_err(core_to_case)?;
    let mut sim = FleetSim::new(&campaign);
    let summary = sim
        .run(attempt.engine, attempt.cancel.as_ref())
        .map_err(core_to_case)?;
    Ok(summary.to_json())
}

#[cfg(test)]
mod tests {
    use std::collections::VecDeque;
    use std::sync::atomic::AtomicUsize;

    use super::*;

    /// A scripted in-memory transport: reads replay a queue of chunks and
    /// error kinds (partial deliveries push their remainder back), writes
    /// either collect into a shared buffer or fail, and both shutdown
    /// directions are counted so tests can assert the teardown contract.
    struct MockTransport {
        reads: Mutex<VecDeque<io::Result<Vec<u8>>>>,
        /// What reads return once the script is exhausted.
        exhausted: io::ErrorKind,
        write_fails: bool,
        written: Arc<Mutex<Vec<u8>>>,
        shutdowns: Arc<AtomicUsize>,
    }

    impl MockTransport {
        fn new(script: Vec<io::Result<Vec<u8>>>, exhausted: io::ErrorKind) -> Self {
            MockTransport {
                reads: Mutex::new(script.into_iter().collect()),
                exhausted,
                write_fails: false,
                written: Arc::new(Mutex::new(Vec::new())),
                shutdowns: Arc::new(AtomicUsize::new(0)),
            }
        }
    }

    impl Read for MockTransport {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let mut reads = self.reads.lock().unwrap();
            match reads.pop_front() {
                Some(Ok(chunk)) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        reads.push_front(Ok(chunk[n..].to_vec()));
                    }
                    Ok(n)
                }
                Some(Err(e)) => Err(e),
                None => {
                    if self.exhausted == io::ErrorKind::UnexpectedEof {
                        Ok(0) // clean close
                    } else {
                        Err(io::Error::new(self.exhausted, "script exhausted"))
                    }
                }
            }
        }
    }

    impl Write for MockTransport {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.write_fails {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"));
            }
            self.written.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Transport for MockTransport {
        fn set_read_timeout(&self, _timeout: Option<Duration>) -> io::Result<()> {
            Ok(())
        }

        fn shutdown_both(&self) -> io::Result<()> {
            self.shutdowns.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    fn frame_bytes(msg: &agemul_conformance::Json) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).unwrap();
        buf
    }

    fn stats_request() -> agemul_conformance::Json {
        agemul_conformance::Json::parse(r#"{"op":"stats","id":1}"#).unwrap()
    }

    fn bound() -> Bound {
        Bound::Tcp("127.0.0.1:1".parse().unwrap())
    }

    /// Satellite regression: a response-write failure must tear the socket
    /// down in both directions and free the worker — not just drop the
    /// connection object and leave the peer half-open.
    #[test]
    fn write_failure_shuts_the_socket_down_both_ways() {
        let state = ServerState::new(Some(4));
        let mut mock = MockTransport::new(
            vec![Ok(frame_bytes(&stats_request()))],
            io::ErrorKind::UnexpectedEof,
        );
        mock.write_fails = true;
        let shutdowns = Arc::clone(&mock.shutdowns);

        let stop = AtomicBool::new(false);
        serve_stream(&state, mock, &stop, &bound(), 1, Duration::from_secs(2));
        assert!(
            shutdowns.load(Ordering::SeqCst) >= 1,
            "write failure must shutdown both directions"
        );
    }

    /// A client that delivers part of a frame and then goes silent past
    /// the stall budget gets a typed error response and a hard teardown.
    #[test]
    fn mid_frame_stall_past_budget_is_a_typed_disconnect() {
        let state = ServerState::new(Some(4));
        // Two bytes of a length prefix, then eternal timeouts.
        let mock = MockTransport::new(vec![Ok(vec![0, 0])], io::ErrorKind::TimedOut);
        let shutdowns = Arc::clone(&mock.shutdowns);
        let written = Arc::clone(&mock.written);

        let stop = AtomicBool::new(false);
        let start = Instant::now();
        serve_stream(&state, mock, &stop, &bound(), 1, Duration::from_millis(50));
        assert!(start.elapsed() >= Duration::from_millis(50));
        assert_eq!(shutdowns.load(Ordering::SeqCst), 1);

        let bytes = written.lock().unwrap().clone();
        let response = read_frame(&mut &bytes[..]).unwrap().unwrap();
        assert_eq!(
            response
                .get("ok")
                .and_then(agemul_conformance::Json::as_bool),
            Some(false)
        );
        let error = response
            .get("error")
            .and_then(agemul_conformance::Json::as_str)
            .unwrap();
        assert!(error.contains("slow client"), "got: {error}");
    }

    /// Idle silence *between* frames never trips the stall budget: the
    /// connection stays open until the peer closes it.
    #[test]
    fn idle_between_frames_outlives_the_stall_budget() {
        let state = ServerState::new(Some(4));
        // Eight timeouts with nothing mid-frame, then a clean close.
        let mut script: Vec<io::Result<Vec<u8>>> = (0..8)
            .map(|_| Err(io::Error::new(io::ErrorKind::TimedOut, "idle")))
            .collect();
        script.push(Ok(frame_bytes(&stats_request())));
        let mock = MockTransport::new(script, io::ErrorKind::UnexpectedEof);
        let written = Arc::clone(&mock.written);

        let stop = AtomicBool::new(false);
        serve_stream(
            &state,
            mock,
            &stop,
            &bound(),
            1,
            Duration::from_millis(1), // far shorter than 8 idle polls
        );
        let bytes = written.lock().unwrap().clone();
        let response = read_frame(&mut &bytes[..]).unwrap().unwrap();
        assert_eq!(
            response
                .get("ok")
                .and_then(agemul_conformance::Json::as_bool),
            Some(true),
            "idle client must still be served: {response}"
        );
    }

    use crate::proto::read_frame;
}
