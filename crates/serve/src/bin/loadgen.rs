//! Load generator for `agemul-serve`: spawns an in-process server,
//! drives it with hundreds of concurrent design/workload combinations
//! over persistent TCP connections, and reports latency percentiles and
//! cache behavior.
//!
//! ```text
//! loadgen [--ops N] [--clients N] [--smoke] [--bench-out PATH] [--csv PATH]
//! ```
//!
//! Default run: ≥100k ops across 16 clients. Results land as JSONL rows
//! in `BENCH_sim.json` (`serve/warm_p50` etc.) and as a per-phase CSV in
//! `results/serve__loadgen.csv`. `--smoke` runs a small fast pass and
//! exits nonzero unless the run had zero errors, a nonzero hit rate, and
//! a clean shutdown — `just serve-smoke` wires it into verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use agemul_conformance::Json;
use agemul_serve::{roundtrip, spawn, Endpoint, ServeConfig};

/// One client's view of the run: latency samples split by how the server
/// satisfied the profile lookup, plus error/batch counters.
#[derive(Default)]
struct ClientStats {
    warm_ns: Vec<u64>,
    cold_ns: Vec<u64>,
    coalesced: u64,
    shed: u64,
    errors: Vec<String>,
    ops: u64,
}

struct Config {
    ops: u64,
    clients: usize,
    smoke: bool,
    bench_out: String,
    csv_out: String,
}

fn parse_args() -> Result<Config, String> {
    // Default concurrency tracks the machine: on a many-core box 16
    // clients exercise real parallelism, but oversubscribing a small box
    // would only measure scheduler queueing, not the server.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut config = Config {
        ops: 120_000,
        clients: (4 * cores).clamp(4, 16),
        smoke: false,
        bench_out: "BENCH_sim.json".into(),
        csv_out: "results/serve__loadgen.csv".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ops" => {
                let v = args.next().ok_or("--ops needs a value")?;
                config.ops = v.parse().map_err(|_| format!("bad --ops value: {v}"))?;
                if config.ops == 0 {
                    return Err("--ops must be positive".into());
                }
            }
            "--clients" => {
                let v = args.next().ok_or("--clients needs a value")?;
                config.clients = v.parse().map_err(|_| format!("bad --clients value: {v}"))?;
                if config.clients == 0 {
                    return Err("--clients must be positive".into());
                }
            }
            "--smoke" => {
                config.smoke = true;
                config.ops = config.ops.min(4_000);
                config.clients = config.clients.min(8);
            }
            "--bench-out" => config.bench_out = args.next().ok_or("--bench-out needs a value")?,
            "--csv" => config.csv_out = args.next().ok_or("--csv needs a value")?,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(config)
}

/// The combo grid: 5 architectures × widths × aging epochs × workload
/// seeds = 300 distinct (design, workload, year) cache keys.
fn combos() -> Vec<(String, usize, f64, usize, u64)> {
    let kinds = ["AM", "CB", "RB", "WAL", "BOOTH"];
    let widths = [4usize, 8];
    let years = [0.0f64, 3.0, 7.0];
    let seeds = [11u64, 23, 37, 53, 71, 89, 101, 131, 151, 173];
    let mut combos = Vec::new();
    for kind in kinds {
        for width in widths {
            for &years in &years {
                for &seed in &seeds {
                    combos.push((kind.to_string(), width, years, 24usize, seed));
                }
            }
        }
    }
    combos
}

fn profile_request(id: u64, combo: &(String, usize, f64, usize, u64)) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::UInt(id)),
        ("op".into(), Json::Str("profile".into())),
        ("kind".into(), Json::Str(combo.0.clone())),
        ("width".into(), Json::UInt(combo.1 as u64)),
        ("years".into(), Json::Num(combo.2)),
        ("patterns".into(), Json::UInt(combo.3 as u64)),
        ("seed".into(), Json::UInt(combo.4)),
    ])
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Bounded connect retry: a freshly spawned (or momentarily saturated)
/// server can refuse or shed the first attempts; back off geometrically
/// and give up with the last error after [`CONNECT_ATTEMPTS`] tries
/// rather than retrying forever.
const CONNECT_ATTEMPTS: u32 = 5;
const CONNECT_BACKOFF_MS: u64 = 20;

fn connect_with_retry(addr: std::net::SocketAddr) -> Result<TcpStream, String> {
    let mut last = String::from("no attempt made");
    for attempt in 0..CONNECT_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                CONNECT_BACKOFF_MS << (attempt - 1),
            ));
        }
        match TcpStream::connect(addr) {
            Ok(stream) => match stream.set_nodelay(true) {
                Ok(()) => return Ok(stream),
                Err(e) => last = format!("nodelay: {e}"),
            },
            Err(e) => last = format!("connect: {e}"),
        }
    }
    Err(format!(
        "gave up after {CONNECT_ATTEMPTS} connect attempts (last: {last})"
    ))
}

fn client_loop(
    addr: std::net::SocketAddr,
    combos: &[(String, usize, f64, usize, u64)],
    my_ops: u64,
    client_index: usize,
    next_id: &AtomicU64,
) -> Result<ClientStats, String> {
    let mut stream = connect_with_retry(addr)?;
    let mut stats = ClientStats::default();
    let mut op = 0u64;
    while op < my_ops {
        // Every 64th frame is a batch of 4 to exercise the envelope; the
        // rest are single-request frames.
        let batch = op % 64 == 63 && my_ops - op >= 4;
        let n = if batch { 4 } else { 1 };
        let picks: Vec<&(String, usize, f64, usize, u64)> = (0..n)
            .map(|i| {
                // Deterministic combo pick, striped per client so all
                // clients hammer overlapping keys (cache + coalescer
                // pressure) without global coordination.
                let x = (op + i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(client_index as u64);
                &combos[(x % combos.len() as u64) as usize]
            })
            .collect();
        let requests: Vec<Json> = picks
            .iter()
            .map(|c| profile_request(next_id.fetch_add(1, Ordering::Relaxed), c))
            .collect();
        let frame = if batch {
            Json::Obj(vec![
                ("op".into(), Json::Str("batch".into())),
                ("requests".into(), Json::Arr(requests)),
            ])
        } else {
            requests.into_iter().next().ok_or("empty request batch")?
        };

        let start = Instant::now();
        let response = roundtrip(&mut stream, &frame).map_err(|e| format!("roundtrip: {e}"))?;
        let elapsed = start.elapsed().as_nanos() as u64;

        // An acceptor shed: the server answered `overloaded` and closed
        // the connection. Reconnect (bounded, with backoff) and retry the
        // same frame; give up after a cap so a permanently saturated
        // server fails the client rather than spinning forever.
        if response.get("overloaded").and_then(Json::as_bool) == Some(true) {
            stats.shed += 1;
            if stats.shed > 16 {
                return Err("shed more than 16 times; server stays saturated".into());
            }
            stream = connect_with_retry(addr)?;
            continue;
        }

        let singles: Vec<&Json> = if batch {
            response
                .get("responses")
                .and_then(Json::as_arr)
                .map(|a| a.iter().collect())
                .unwrap_or_default()
        } else {
            vec![&response]
        };
        // Batch latency is amortized over its requests; single frames
        // carry their own latency. p50/p99 come from single warm hits.
        let per_op_ns = elapsed / n as u64;
        for single in singles {
            stats.ops += 1;
            if single.get("ok").and_then(Json::as_bool) != Some(true) {
                let msg = single
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("malformed response")
                    .to_string();
                stats.errors.push(msg);
                continue;
            }
            match single
                .get("result")
                .and_then(|r| r.get("cache"))
                .and_then(Json::as_str)
            {
                Some("hit") => {
                    if !batch {
                        stats.warm_ns.push(per_op_ns);
                    }
                }
                Some("coalesced") => stats.coalesced += 1,
                _ => stats.cold_ns.push(per_op_ns),
            }
        }
        op += n as u64;
    }
    Ok(stats)
}

fn append_bench_rows(path: &str, rows: &[(String, f64)], samples: u64) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for (id, ns) in rows {
        writeln!(
            file,
            "{{\"id\":\"{id}\",\"ns_per_iter\":{ns:.1},\"stddev_ns\":0.0,\"samples\":{samples},\"iters\":1}}"
        )?;
    }
    Ok(())
}

fn main() {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };

    // Workers > clients so persistent connections can never starve the
    // pool (each worker owns one connection for its whole lifetime).
    let server = match spawn(ServeConfig {
        endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
        workers: config.clients + 2,
        shard_capacity: Some(64),
        snapshot: None,
        max_retries: 1,
        ..ServeConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("loadgen: spawn failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = match server.tcp_addr() {
        Some(a) => a,
        None => {
            eprintln!("loadgen: server has no TCP address");
            std::process::exit(1);
        }
    };

    let combos = combos();
    eprintln!(
        "loadgen: {} ops, {} clients, {} combos, server {addr}",
        config.ops,
        config.clients,
        combos.len()
    );

    let next_id = AtomicU64::new(1);
    let per_client = config.ops / config.clients as u64;
    let started = Instant::now();
    let results: Vec<Result<ClientStats, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|i| {
                let combos = &combos;
                let next_id = &next_id;
                scope.spawn(move || client_loop(addr, combos, per_client, i, next_id))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".into()))
            })
            .collect()
    });
    let wall = started.elapsed();

    let mut warm: Vec<u64> = Vec::new();
    let mut cold: Vec<u64> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut total_ops = 0u64;
    let mut coalesced_seen = 0u64;
    let mut shed_seen = 0u64;
    for result in results {
        match result {
            Ok(stats) => {
                warm.extend(stats.warm_ns);
                cold.extend(stats.cold_ns);
                errors.extend(stats.errors);
                total_ops += stats.ops;
                coalesced_seen += stats.coalesced;
                shed_seen += stats.shed;
            }
            Err(e) => errors.push(e),
        }
    }
    warm.sort_unstable();
    cold.sort_unstable();

    // Server-side cache stats over a final dedicated connection.
    let stats_frame = Json::Obj(vec![
        ("id".into(), Json::UInt(0)),
        ("op".into(), Json::Str("stats".into())),
    ]);
    let server_stats = TcpStream::connect(addr)
        .ok()
        .and_then(|mut s| roundtrip(&mut s, &stats_frame).ok())
        .and_then(|r| r.get("result").cloned());
    let (hits, misses) = server_stats
        .as_ref()
        .map(|s| {
            (
                s.get("hits").and_then(Json::as_u64).unwrap_or(0),
                s.get("misses").and_then(Json::as_u64).unwrap_or(0),
            )
        })
        .unwrap_or((0, 0));
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    let shutdown_clean = server.shutdown().is_ok();

    let warm_p50 = percentile(&warm, 0.50);
    let warm_p99 = percentile(&warm, 0.99);
    let cold_p50 = percentile(&cold, 0.50);
    let throughput = total_ops as f64 / wall.as_secs_f64().max(1e-9);

    println!("loadgen results");
    println!(
        "  ops:            {total_ops} in {:.2}s ({throughput:.0} ops/s)",
        wall.as_secs_f64()
    );
    println!(
        "  warm p50/p99:   {warm_p50} ns / {warm_p99} ns ({} samples)",
        warm.len()
    );
    println!("  cold p50:       {cold_p50} ns ({} samples)", cold.len());
    println!(
        "  hit rate:       {:.4} ({hits} hits / {misses} misses)",
        hit_rate
    );
    println!("  coalesced:      {coalesced_seen} (client-observed)");
    println!("  shed+retried:   {shed_seen}");
    println!("  errors:         {}", errors.len());
    println!("  clean shutdown: {shutdown_clean}");
    for e in errors.iter().take(5) {
        eprintln!("  error sample: {e}");
    }

    if !config.smoke {
        let rows = vec![
            ("serve/warm_p50".to_string(), warm_p50 as f64),
            ("serve/warm_p99".to_string(), warm_p99 as f64),
            ("serve/cold_p50".to_string(), cold_p50 as f64),
        ];
        if let Err(e) = append_bench_rows(&config.bench_out, &rows, warm.len() as u64) {
            eprintln!("loadgen: bench write failed: {e}");
        }
        let csv = format!(
            "metric,value\nops,{total_ops}\nwall_s,{:.3}\nthroughput_ops_s,{throughput:.0}\nwarm_p50_ns,{warm_p50}\nwarm_p99_ns,{warm_p99}\ncold_p50_ns,{cold_p50}\nhit_rate,{hit_rate:.4}\nhits,{hits}\nmisses,{misses}\ncoalesced_client_observed,{coalesced_seen}\nerrors,{}\nclients,{}\n",
            wall.as_secs_f64(),
            errors.len(),
            config.clients,
        );
        if let Some(parent) = std::path::Path::new(&config.csv_out).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&config.csv_out, csv) {
            eprintln!("loadgen: csv write failed: {e}");
        }
    }

    let ok = errors.is_empty() && hit_rate > 0.0 && shutdown_clean && total_ops > 0;
    if config.smoke {
        if ok {
            println!("serve-smoke: OK");
        } else {
            eprintln!("serve-smoke: FAILED (errors={}, hit_rate={hit_rate:.4}, clean_shutdown={shutdown_clean})", errors.len());
        }
    }
    std::process::exit(i32::from(!ok));
}
