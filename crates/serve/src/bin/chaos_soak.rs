//! `chaos_soak` — the deterministic fault-schedule soak runner.
//!
//! Drives seeded chaos schedules across the service's three IO seams
//! (checkpoint IO, serve transport, cache/single-flight) plus the
//! overload-shedding probe, and exits non-zero on any invariant
//! violation. Every schedule is a pure function of its seed, so a failure
//! line names the exact seed to replay.
//!
//! ```text
//! chaos_soak [--schedules N] [--seed S] [--smoke] [--csv PATH]
//! ```
//!
//! `--smoke` runs a miniature soak (a few dozen schedules, seconds of
//! wall clock) for CI; the default is the full 1000-schedule soak whose
//! summary lands in `results/chaos__soak.csv`.

use std::process::ExitCode;
use std::time::Instant;

use agemul_serve::chaos::{csv_header, run_soak, silence_chaos_panics, write_csv};

struct Args {
    schedules: usize,
    seed: u64,
    csv: Option<std::path::PathBuf>,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut schedules: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut csv: Option<std::path::PathBuf> = None;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schedules" => {
                let v = it.next().ok_or("--schedules needs a value")?;
                schedules = Some(v.parse().map_err(|e| format!("--schedules: {e}"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = Some(v.parse().map_err(|e| format!("--seed: {e}"))?);
            }
            "--csv" => {
                let v = it.next().ok_or("--csv needs a path")?;
                csv = Some(v.into());
            }
            "--smoke" => smoke = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let schedules = schedules.unwrap_or(if smoke { 36 } else { 1000 });
    Ok(Args {
        schedules,
        seed: seed.unwrap_or(0x0A6E_C405),
        csv,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos_soak: {e}");
            eprintln!("usage: chaos_soak [--schedules N] [--seed S] [--smoke] [--csv PATH]");
            return ExitCode::FAILURE;
        }
    };

    // Injected panics are the point; keep the log readable.
    silence_chaos_panics();

    eprintln!(
        "chaos_soak: {} schedules, base seed {:#010x}",
        args.schedules, args.seed
    );
    let t0 = Instant::now();
    let reports = run_soak(args.schedules, args.seed);
    let elapsed = t0.elapsed().as_secs_f64();

    println!("{}", csv_header());
    let mut failed = false;
    for r in &reports {
        println!("{}", r.csv_row());
        for note in &r.notes {
            eprintln!("chaos_soak: [{}] {}", r.seam, note);
        }
        for v in &r.violations {
            failed = true;
            eprintln!("chaos_soak: VIOLATION [{}] {}", r.seam, v);
        }
    }
    let injected: u64 = reports.iter().map(|r| r.injected).sum();
    let operations: u64 = reports.iter().map(|r| r.operations).sum();
    eprintln!(
        "chaos_soak: {} faults injected across {} operations in {elapsed:.1}s",
        injected, operations
    );

    if let Some(path) = &args.csv {
        if let Err(e) = write_csv(path, &reports) {
            eprintln!("chaos_soak: csv write failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("chaos_soak: summary written to {}", path.display());
    }

    if failed {
        eprintln!("chaos_soak: FAILED");
        ExitCode::FAILURE
    } else {
        eprintln!("chaos_soak: all invariants held");
        ExitCode::SUCCESS
    }
}
