//! Length-prefixed JSON wire protocol.
//!
//! Each frame is a big-endian `u32` byte length followed by one UTF-8
//! JSON document (the dependency-free [`Json`] model from
//! `agemul-conformance`, whose distinct `u64` variant keeps workload
//! seeds lossless). A frame carries either a single request object or a
//! `{"op":"batch","requests":[...]}` envelope; responses mirror the
//! shape. Frames above [`MAX_FRAME_BYTES`] are rejected before any
//! allocation, so a corrupt length prefix cannot balloon the server.

use std::io::{self, Read, Write};

use agemul_circuits::MultiplierKind;
use agemul_conformance::Json;

/// Upper bound on one frame's payload (16 MiB) — far above any legitimate
/// request or response, small enough that a garbage length prefix fails
/// fast instead of allocating gigabytes.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one frame: big-endian `u32` length, then the JSON text.
///
/// # Errors
///
/// Propagates transport errors; a document over [`MAX_FRAME_BYTES`] is
/// `InvalidData`.
pub fn write_frame<W: Write>(w: &mut W, msg: &Json) -> io::Result<()> {
    let text = msg.to_string();
    if text.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds {MAX_FRAME_BYTES}", text.len()),
        ));
    }
    // One buffered write per frame: a separate length-prefix write would
    // put two small segments on the wire and let Nagle + delayed-ACK
    // stretch every round trip to tens of milliseconds.
    let len = text.len() as u32;
    let mut buf = Vec::with_capacity(4 + text.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(text.as_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Growth step for a frame body: the accumulator extends its buffer by at
/// most this much beyond the bytes actually delivered, so a hostile length
/// prefix can never force a large allocation up front.
const BODY_CHUNK: usize = 64 * 1024;

/// What one [`FrameAccumulator::poll`] observed.
#[derive(Debug)]
pub enum FramePoll {
    /// A complete frame was assembled and parsed.
    Frame(Json),
    /// The peer closed cleanly on a frame boundary.
    Closed,
    /// The frame is incomplete; `progressed` reports whether this poll
    /// consumed any bytes (the server's slow-client budget resets on
    /// progress and accrues on mid-frame silence).
    Pending {
        /// Whether any bytes arrived during this poll.
        progressed: bool,
    },
}

/// Incremental frame reassembly that survives read timeouts.
///
/// [`read_frame`]'s original implementation used `read_exact`, which
/// discards partially read bytes when a read times out mid-frame — under
/// the server's polling read timeout a slow client could desync the
/// stream. The accumulator owns the partial state instead: each
/// [`poll`](Self::poll) performs at most one `read`, and a `WouldBlock` /
/// `TimedOut` between polls loses nothing.
///
/// Allocation is bounded: the length prefix is validated against
/// [`MAX_FRAME_BYTES`] before any body allocation, and the body buffer
/// grows in [`BODY_CHUNK`] steps as bytes actually arrive — a corrupt
/// 4 GiB length prefix costs a rejection, not an allocation.
#[derive(Default)]
pub struct FrameAccumulator {
    header: [u8; 4],
    header_filled: usize,
    body: Vec<u8>,
    body_target: Option<usize>,
}

impl FrameAccumulator {
    /// An empty accumulator, positioned at a frame boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a frame is partially assembled (the slow-client budget
    /// only accrues mid-frame; silence *between* frames is an idle
    /// connection, which is fine).
    pub fn mid_frame(&self) -> bool {
        self.header_filled > 0
    }

    /// Current capacity of the body buffer — exposed so tests can assert
    /// the bounded-allocation contract against adversarial streams.
    pub fn body_capacity(&self) -> usize {
        self.body.capacity()
    }

    /// Performs at most one `read` and reports progress.
    ///
    /// # Errors
    ///
    /// Transport errors pass through (`WouldBlock`/`TimedOut` are
    /// recoverable: state is preserved and the next poll resumes).
    /// `UnexpectedEof` means the peer vanished mid-frame; `InvalidData`
    /// covers an oversized length prefix, non-UTF-8 text, and malformed
    /// JSON.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> io::Result<FramePoll> {
        let Some(target) = self.body_target else {
            let n = r.read(&mut self.header[self.header_filled..])?;
            if n == 0 {
                if self.header_filled == 0 {
                    return Ok(FramePoll::Closed);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a frame length prefix",
                ));
            }
            self.header_filled += n;
            if self.header_filled < 4 {
                return Ok(FramePoll::Pending { progressed: true });
            }
            let len = u32::from_be_bytes(self.header) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame length {len} exceeds {MAX_FRAME_BYTES}"),
                ));
            }
            self.body_target = Some(len);
            self.body = Vec::new();
            if len == 0 {
                return self.finish();
            }
            return Ok(FramePoll::Pending { progressed: true });
        };

        // Grow by a bounded chunk, read into the fresh tail, then shrink
        // back to the bytes actually delivered.
        let filled = self.body.len();
        let want = (target - filled).min(BODY_CHUNK);
        self.body.resize(filled + want, 0);
        let n = match r.read(&mut self.body[filled..]) {
            Ok(n) => n,
            Err(e) => {
                self.body.truncate(filled);
                return Err(e);
            }
        };
        self.body.truncate(filled + n);
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("eof inside a frame body ({filled} of {target} bytes)"),
            ));
        }
        if self.body.len() == target {
            return self.finish();
        }
        Ok(FramePoll::Pending { progressed: true })
    }

    fn finish(&mut self) -> io::Result<FramePoll> {
        self.header_filled = 0;
        self.body_target = None;
        let text = String::from_utf8(std::mem::take(&mut self.body))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Json::parse(&text)
            .map(FramePoll::Frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); EOF mid-frame, an oversized length prefix, or
/// malformed JSON are errors.
///
/// Implemented on [`FrameAccumulator`], so allocation stays bounded by
/// delivered bytes plus one [`BODY_CHUNK`].
///
/// # Errors
///
/// Transport errors (including read timeouts, surfaced as `WouldBlock` /
/// `TimedOut`) and the malformed-frame cases above.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Json>> {
    let mut acc = FrameAccumulator::new();
    loop {
        match acc.poll(r)? {
            FramePoll::Frame(json) => return Ok(Some(json)),
            FramePoll::Closed => return Ok(None),
            FramePoll::Pending { .. } => {}
        }
    }
}

/// Parses a multiplier-kind label (`AM`, `CB`, `RB`, `WAL`, `BOOTH`).
///
/// # Errors
///
/// Describes the unknown label and lists the valid ones.
pub fn parse_kind(label: &str) -> Result<MultiplierKind, String> {
    MultiplierKind::ALL
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            let valid: Vec<&str> = MultiplierKind::ALL.iter().map(|k| k.label()).collect();
            format!("unknown kind {label:?} (want one of {})", valid.join(", "))
        })
}

/// The design/workload coordinates shared by every simulation op: which
/// multiplier, how aged, and which seed-derived uniform workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignQuery {
    /// Multiplier architecture.
    pub kind: MultiplierKind,
    /// Operand width in bits.
    pub width: usize,
    /// Aging epoch in years (0 = fresh).
    pub years: f64,
    /// Number of uniform operand pairs in the workload.
    pub patterns: usize,
    /// Workload seed.
    pub seed: u64,
}

/// One request's operation.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Profile the design at its aging epoch; returns a delay summary.
    Profile(DesignQuery),
    /// Profile, then replay the profile across a cycle-period grid.
    Sweep {
        /// Design/workload coordinates.
        query: DesignQuery,
        /// Cycle periods to replay, nanoseconds.
        periods: Vec<f64>,
        /// AHL skip threshold for the replays.
        skip: u32,
    },
    /// Run a fault-injection campaign on the design.
    Campaign {
        /// Design/workload coordinates.
        query: DesignQuery,
        /// Number of faults to sample.
        faults: usize,
        /// Fault-sampling seed.
        fault_seed: u64,
        /// AHL skip threshold for the evaluation replays.
        skip: u32,
    },
    /// Seeded Monte Carlo yield campaign over process corners. The
    /// query's `years` field is read as the *maximum lifetime*: the
    /// campaign evaluates integer lifetime points `0..=floor(years)`.
    Mc {
        /// Design/workload coordinates (see `years` note above).
        query: DesignQuery,
        /// Process corners (dies) to sample.
        corners: usize,
        /// Lognormal σ of the per-gate time-zero variation.
        sigma: f64,
        /// Campaign base seed (corner streams are derived from it).
        mc_seed: u64,
        /// AHL skip threshold for the evaluation replays.
        skip: u32,
    },
    /// Seeded fleet policy study on the discrete-event datacenter
    /// simulator. The query's fields are reinterpreted for the fleet:
    /// `years` is the aging applied per epoch at fair utilization,
    /// `patterns` is the operations routed per epoch, and `seed` is the
    /// campaign base seed (node corners and epoch traces derive from it).
    Fleet {
        /// Design/workload coordinates (see reinterpretation above).
        query: DesignQuery,
        /// Multiplier instances in the fleet.
        nodes: usize,
        /// Epochs to simulate.
        epochs: usize,
        /// Routing policy label (`round-robin`, `least-loaded`,
        /// `aging-aware`); validated when the op executes.
        policy: String,
        /// AHL skip threshold shared by every node.
        skip: u32,
    },
    /// Server cache/coalescer statistics.
    Stats,
    /// Graceful shutdown: the server finishes in-flight work, saves its
    /// snapshot (if configured), and stops accepting.
    Shutdown,
}

/// One decoded request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed in the response.
    pub id: u64,
    /// Per-request wall-clock budget in milliseconds; must be positive
    /// when present (omit the field to disable the deadline).
    pub deadline_ms: Option<u64>,
    /// The operation.
    pub body: RequestBody,
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn get_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn query_from_json(v: &Json) -> Result<DesignQuery, String> {
    let kind = parse_kind(
        v.get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing or non-string field \"kind\"".to_string())?,
    )?;
    let width = get_u64(v, "width")? as usize;
    if width == 0 {
        return Err("width must be positive".into());
    }
    let years = get_f64(v, "years")?;
    if !years.is_finite() || years < 0.0 {
        return Err(format!(
            "years must be finite and non-negative, got {years}"
        ));
    }
    let patterns = get_u64(v, "patterns")? as usize;
    if patterns == 0 {
        return Err("patterns must be positive".into());
    }
    let seed = get_u64(v, "seed")?;
    Ok(DesignQuery {
        kind,
        width,
        years,
        patterns,
        seed,
    })
}

fn query_to_json(q: &DesignQuery) -> Vec<(String, Json)> {
    vec![
        ("kind".into(), Json::Str(q.kind.label().into())),
        ("width".into(), Json::UInt(q.width as u64)),
        ("years".into(), Json::Num(q.years)),
        ("patterns".into(), Json::UInt(q.patterns as u64)),
        ("seed".into(), Json::UInt(q.seed)),
    ]
}

impl Request {
    /// Decodes a request object (not a batch envelope).
    ///
    /// # Errors
    ///
    /// A rendered description of the first missing, mistyped, or
    /// out-of-range field. A `deadline_ms` of 0 is rejected — a budget of
    /// nothing would quarantine every attempt; omit the field to disable
    /// the deadline.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let id = get_u64(v, "id")?;
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(x) => {
                let ms = x
                    .as_u64()
                    .ok_or_else(|| "non-integer deadline_ms".to_string())?;
                if ms == 0 {
                    return Err(
                        "deadline_ms must be positive (omit the field to disable the deadline)"
                            .into(),
                    );
                }
                Some(ms)
            }
        };
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing or non-string field \"op\"".to_string())?;
        let body = match op {
            "profile" => RequestBody::Profile(query_from_json(v)?),
            "sweep" => {
                let raw = v
                    .get("periods")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "sweep needs a periods array".to_string())?;
                if raw.is_empty() {
                    return Err("sweep needs at least one period".into());
                }
                let mut periods = Vec::with_capacity(raw.len());
                for p in raw {
                    let p = p.as_f64().ok_or_else(|| "non-numeric period".to_string())?;
                    if !p.is_finite() || p <= 0.0 {
                        return Err(format!("periods must be finite and positive, got {p}"));
                    }
                    periods.push(p);
                }
                RequestBody::Sweep {
                    query: query_from_json(v)?,
                    periods,
                    skip: u32::try_from(get_u64(v, "skip")?)
                        .map_err(|_| "skip out of u32 range".to_string())?,
                }
            }
            "campaign" => {
                let faults = get_u64(v, "faults")? as usize;
                if faults == 0 {
                    return Err("campaign needs at least one fault".into());
                }
                RequestBody::Campaign {
                    query: query_from_json(v)?,
                    faults,
                    fault_seed: get_u64(v, "fault_seed")?,
                    skip: u32::try_from(get_u64(v, "skip")?)
                        .map_err(|_| "skip out of u32 range".to_string())?,
                }
            }
            "mc" => {
                let corners = get_u64(v, "corners")? as usize;
                if corners == 0 {
                    return Err("mc needs at least one corner".into());
                }
                let sigma = get_f64(v, "sigma")?;
                if !sigma.is_finite() || sigma < 0.0 {
                    return Err(format!(
                        "sigma must be finite and non-negative, got {sigma}"
                    ));
                }
                RequestBody::Mc {
                    query: query_from_json(v)?,
                    corners,
                    sigma,
                    mc_seed: get_u64(v, "mc_seed")?,
                    skip: u32::try_from(get_u64(v, "skip")?)
                        .map_err(|_| "skip out of u32 range".to_string())?,
                }
            }
            "fleet" => {
                let nodes = get_u64(v, "nodes")? as usize;
                if nodes == 0 {
                    return Err("fleet needs at least one node".into());
                }
                let epochs = get_u64(v, "epochs")? as usize;
                if epochs == 0 {
                    return Err("fleet needs at least one epoch".into());
                }
                let policy = v
                    .get("policy")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "missing or non-string field \"policy\"".to_string())?
                    .to_string();
                RequestBody::Fleet {
                    query: query_from_json(v)?,
                    nodes,
                    epochs,
                    policy,
                    skip: u32::try_from(get_u64(v, "skip")?)
                        .map_err(|_| "skip out of u32 range".to_string())?,
                }
            }
            "stats" => RequestBody::Stats,
            "shutdown" => RequestBody::Shutdown,
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(Request {
            id,
            deadline_ms,
            body,
        })
    }

    /// Encodes the request as its wire object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("id".into(), Json::UInt(self.id))];
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), Json::UInt(ms)));
        }
        match &self.body {
            RequestBody::Profile(q) => {
                pairs.push(("op".into(), Json::Str("profile".into())));
                pairs.extend(query_to_json(q));
            }
            RequestBody::Sweep {
                query,
                periods,
                skip,
            } => {
                pairs.push(("op".into(), Json::Str("sweep".into())));
                pairs.extend(query_to_json(query));
                pairs.push((
                    "periods".into(),
                    Json::Arr(periods.iter().map(|&p| Json::Num(p)).collect()),
                ));
                pairs.push(("skip".into(), Json::UInt(u64::from(*skip))));
            }
            RequestBody::Campaign {
                query,
                faults,
                fault_seed,
                skip,
            } => {
                pairs.push(("op".into(), Json::Str("campaign".into())));
                pairs.extend(query_to_json(query));
                pairs.push(("faults".into(), Json::UInt(*faults as u64)));
                pairs.push(("fault_seed".into(), Json::UInt(*fault_seed)));
                pairs.push(("skip".into(), Json::UInt(u64::from(*skip))));
            }
            RequestBody::Mc {
                query,
                corners,
                sigma,
                mc_seed,
                skip,
            } => {
                pairs.push(("op".into(), Json::Str("mc".into())));
                pairs.extend(query_to_json(query));
                pairs.push(("corners".into(), Json::UInt(*corners as u64)));
                pairs.push(("sigma".into(), Json::Num(*sigma)));
                pairs.push(("mc_seed".into(), Json::UInt(*mc_seed)));
                pairs.push(("skip".into(), Json::UInt(u64::from(*skip))));
            }
            RequestBody::Fleet {
                query,
                nodes,
                epochs,
                policy,
                skip,
            } => {
                pairs.push(("op".into(), Json::Str("fleet".into())));
                pairs.extend(query_to_json(query));
                pairs.push(("nodes".into(), Json::UInt(*nodes as u64)));
                pairs.push(("epochs".into(), Json::UInt(*epochs as u64)));
                pairs.push(("policy".into(), Json::Str(policy.clone())));
                pairs.push(("skip".into(), Json::UInt(u64::from(*skip))));
            }
            RequestBody::Stats => pairs.push(("op".into(), Json::Str("stats".into()))),
            RequestBody::Shutdown => pairs.push(("op".into(), Json::Str("shutdown".into()))),
        }
        Json::Obj(pairs)
    }
}

/// A successful response: the request id, how the supervised attempt ran
/// (engine, retries, degradation), and the op's result payload.
pub fn response_ok(id: u64, engine: &str, retries: u32, degraded: bool, result: Json) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::UInt(id)),
        ("ok".into(), Json::Bool(true)),
        ("engine".into(), Json::Str(engine.into())),
        ("retries".into(), Json::UInt(u64::from(retries))),
        ("degraded".into(), Json::Bool(degraded)),
        ("result".into(), result),
    ])
}

/// A failed response: the request id and a rendered error.
pub fn response_error(id: u64, error: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::UInt(id)),
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(error.into())),
    ])
}

/// The typed shed response: sent by the acceptor when the admission queue
/// is full, *before* any request is read (hence id 0), then the connection
/// is reset. `overloaded: true` lets clients distinguish "retry later"
/// from a request-level failure.
pub fn response_overloaded() -> Json {
    Json::Obj(vec![
        ("id".into(), Json::UInt(0)),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Str("overloaded: admission queue full; retry later".into()),
        ),
        ("overloaded".into(), Json::Bool(true)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> DesignQuery {
        DesignQuery {
            kind: MultiplierKind::ColumnBypass,
            width: 16,
            years: 7.0,
            patterns: 1_000,
            seed: 42,
        }
    }

    #[test]
    fn frames_round_trip() {
        let msg = Request {
            id: 3,
            deadline_ms: Some(250),
            body: RequestBody::Sweep {
                query: query(),
                periods: vec![0.9, 1.0, 1.1],
                skip: 7,
            },
        }
        .to_json();
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        let mut cursor = wire.as_slice();
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, msg);
        // Stream exhausted → clean end-of-stream.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn every_op_round_trips_through_json() {
        let requests = [
            Request {
                id: 1,
                deadline_ms: None,
                body: RequestBody::Profile(query()),
            },
            Request {
                id: 2,
                deadline_ms: Some(100),
                body: RequestBody::Sweep {
                    query: query(),
                    periods: vec![1.25],
                    skip: 3,
                },
            },
            Request {
                id: 3,
                deadline_ms: None,
                body: RequestBody::Campaign {
                    query: query(),
                    faults: 12,
                    fault_seed: 9,
                    skip: 7,
                },
            },
            Request {
                id: 4,
                deadline_ms: None,
                body: RequestBody::Mc {
                    query: query(),
                    corners: 32,
                    sigma: 0.05,
                    mc_seed: 7,
                    skip: 7,
                },
            },
            Request {
                id: 5,
                deadline_ms: None,
                body: RequestBody::Fleet {
                    query: query(),
                    nodes: 4,
                    epochs: 20,
                    policy: "aging-aware".into(),
                    skip: 7,
                },
            },
            Request {
                id: 6,
                deadline_ms: None,
                body: RequestBody::Stats,
            },
            Request {
                id: 7,
                deadline_ms: None,
                body: RequestBody::Shutdown,
            },
        ];
        for req in requests {
            let back = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn zero_deadline_is_rejected() {
        let mut obj = Request {
            id: 1,
            deadline_ms: None,
            body: RequestBody::Stats,
        }
        .to_json();
        if let Json::Obj(pairs) = &mut obj {
            pairs.push(("deadline_ms".into(), Json::UInt(0)));
        }
        let err = Request::from_json(&obj).unwrap_err();
        assert!(err.contains("deadline_ms must be positive"), "{err}");
    }

    #[test]
    fn malformed_requests_are_described() {
        let bad = [
            (Json::Obj(vec![("id".into(), Json::UInt(1))]), "op"),
            (
                Json::Obj(vec![
                    ("id".into(), Json::UInt(1)),
                    ("op".into(), Json::Str("bogus".into())),
                ]),
                "unknown op",
            ),
            (
                Json::Obj(vec![
                    ("id".into(), Json::UInt(1)),
                    ("op".into(), Json::Str("profile".into())),
                    ("kind".into(), Json::Str("XX".into())),
                ]),
                "unknown kind",
            ),
        ];
        for (doc, needle) in bad {
            let err = Request::from_json(&doc).unwrap_err();
            assert!(err.contains(needle), "{err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_be_bytes());
        wire.extend_from_slice(b"junk");
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_eof() {
        let msg = Json::Str("hello".into());
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        wire.truncate(wire.len() - 2);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// A reader that yields its script one item per `read` call:
    /// `Ok(bytes)` delivers bytes, `Err(kind)` fails that call only.
    struct Script {
        items: std::collections::VecDeque<Result<Vec<u8>, io::ErrorKind>>,
    }

    impl Script {
        fn new(items: Vec<Result<Vec<u8>, io::ErrorKind>>) -> Self {
            Script {
                items: items.into(),
            }
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.items.pop_front() {
                None => Ok(0),
                Some(Err(kind)) => Err(io::Error::new(kind, "scripted")),
                Some(Ok(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    if n < bytes.len() {
                        self.items.push_front(Ok(bytes[n..].to_vec()));
                    }
                    Ok(n)
                }
            }
        }
    }

    /// The accumulator's whole reason to exist: a read timeout striking
    /// mid-frame (even mid-length-prefix) loses nothing; the next poll
    /// resumes exactly where the stream stalled.
    #[test]
    fn accumulator_survives_timeouts_at_every_split_point() {
        let msg = Json::Obj(vec![("x".into(), Json::UInt(7))]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();

        for split in 1..wire.len() {
            let mut script = Script::new(vec![
                Ok(wire[..split].to_vec()),
                Err(io::ErrorKind::WouldBlock),
                Err(io::ErrorKind::TimedOut),
                Ok(wire[split..].to_vec()),
            ]);
            let mut acc = FrameAccumulator::new();
            let mut timeouts = 0;
            loop {
                match acc.poll(&mut script) {
                    Ok(FramePoll::Frame(json)) => {
                        assert_eq!(json, msg, "split at {split}");
                        break;
                    }
                    Ok(FramePoll::Pending { .. }) => {}
                    Ok(FramePoll::Closed) => panic!("split at {split}: spurious close"),
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        timeouts += 1;
                        assert!(acc.mid_frame(), "split at {split}: stalled mid-frame");
                    }
                    Err(e) => panic!("split at {split}: {e}"),
                }
            }
            assert_eq!(timeouts, 2, "split at {split}");
        }
    }

    /// A hostile length prefix near the cap must not provoke a
    /// prefix-sized allocation: the body buffer grows only as bytes
    /// arrive, one bounded chunk beyond the delivered count.
    #[test]
    fn accumulator_allocation_tracks_delivered_bytes_not_the_prefix() {
        let claimed = MAX_FRAME_BYTES as u32; // maximal legal prefix
        let mut acc = FrameAccumulator::new();
        let mut script = Script::new(vec![
            Ok(claimed.to_be_bytes().to_vec()),
            Ok(vec![b'x'; 100]),
        ]);
        for _ in 0..2 {
            match acc.poll(&mut script) {
                Ok(FramePoll::Pending { progressed: true }) => {}
                other => panic!("{other:?}"),
            }
        }
        assert!(
            acc.body_capacity() <= 100 + 64 * 1024,
            "allocated {} bytes for 100 delivered",
            acc.body_capacity()
        );
    }

    #[test]
    fn accumulator_reads_back_to_back_frames() {
        let first = Json::Str("first".into());
        let second = Json::Str("second".into());
        let mut wire = Vec::new();
        write_frame(&mut wire, &first).unwrap();
        write_frame(&mut wire, &second).unwrap();
        let mut cursor = wire.as_slice();
        let mut acc = FrameAccumulator::new();
        let mut seen = Vec::new();
        loop {
            match acc.poll(&mut cursor).unwrap() {
                FramePoll::Frame(json) => seen.push(json),
                FramePoll::Closed => break,
                FramePoll::Pending { .. } => {}
            }
        }
        assert_eq!(seen, vec![first, second]);
        assert!(!acc.mid_frame());
    }

    #[test]
    fn overloaded_response_is_typed() {
        let resp = response_overloaded();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(resp.get("overloaded").and_then(Json::as_bool), Some(true));
        assert!(resp
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("overloaded")));
    }
}
