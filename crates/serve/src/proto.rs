//! Length-prefixed JSON wire protocol.
//!
//! Each frame is a big-endian `u32` byte length followed by one UTF-8
//! JSON document (the dependency-free [`Json`] model from
//! `agemul-conformance`, whose distinct `u64` variant keeps workload
//! seeds lossless). A frame carries either a single request object or a
//! `{"op":"batch","requests":[...]}` envelope; responses mirror the
//! shape. Frames above [`MAX_FRAME_BYTES`] are rejected before any
//! allocation, so a corrupt length prefix cannot balloon the server.

use std::io::{self, Read, Write};

use agemul_circuits::MultiplierKind;
use agemul_conformance::Json;

/// Upper bound on one frame's payload (16 MiB) — far above any legitimate
/// request or response, small enough that a garbage length prefix fails
/// fast instead of allocating gigabytes.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one frame: big-endian `u32` length, then the JSON text.
///
/// # Errors
///
/// Propagates transport errors; a document over [`MAX_FRAME_BYTES`] is
/// `InvalidData`.
pub fn write_frame<W: Write>(w: &mut W, msg: &Json) -> io::Result<()> {
    let text = msg.to_string();
    if text.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds {MAX_FRAME_BYTES}", text.len()),
        ));
    }
    // One buffered write per frame: a separate length-prefix write would
    // put two small segments on the wire and let Nagle + delayed-ACK
    // stretch every round trip to tens of milliseconds.
    let len = text.len() as u32;
    let mut buf = Vec::with_capacity(4 + text.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(text.as_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); EOF mid-frame, an oversized length prefix, or
/// malformed JSON are `InvalidData` errors.
///
/// # Errors
///
/// Transport errors (including read timeouts, surfaced as `WouldBlock` /
/// `TimedOut`) and the malformed-frame cases above.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let text = String::from_utf8(buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Json::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Parses a multiplier-kind label (`AM`, `CB`, `RB`, `WAL`, `BOOTH`).
///
/// # Errors
///
/// Describes the unknown label and lists the valid ones.
pub fn parse_kind(label: &str) -> Result<MultiplierKind, String> {
    MultiplierKind::ALL
        .into_iter()
        .find(|k| k.label() == label)
        .ok_or_else(|| {
            let valid: Vec<&str> = MultiplierKind::ALL.iter().map(|k| k.label()).collect();
            format!("unknown kind {label:?} (want one of {})", valid.join(", "))
        })
}

/// The design/workload coordinates shared by every simulation op: which
/// multiplier, how aged, and which seed-derived uniform workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignQuery {
    /// Multiplier architecture.
    pub kind: MultiplierKind,
    /// Operand width in bits.
    pub width: usize,
    /// Aging epoch in years (0 = fresh).
    pub years: f64,
    /// Number of uniform operand pairs in the workload.
    pub patterns: usize,
    /// Workload seed.
    pub seed: u64,
}

/// One request's operation.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Profile the design at its aging epoch; returns a delay summary.
    Profile(DesignQuery),
    /// Profile, then replay the profile across a cycle-period grid.
    Sweep {
        /// Design/workload coordinates.
        query: DesignQuery,
        /// Cycle periods to replay, nanoseconds.
        periods: Vec<f64>,
        /// AHL skip threshold for the replays.
        skip: u32,
    },
    /// Run a fault-injection campaign on the design.
    Campaign {
        /// Design/workload coordinates.
        query: DesignQuery,
        /// Number of faults to sample.
        faults: usize,
        /// Fault-sampling seed.
        fault_seed: u64,
        /// AHL skip threshold for the evaluation replays.
        skip: u32,
    },
    /// Seeded Monte Carlo yield campaign over process corners. The
    /// query's `years` field is read as the *maximum lifetime*: the
    /// campaign evaluates integer lifetime points `0..=floor(years)`.
    Mc {
        /// Design/workload coordinates (see `years` note above).
        query: DesignQuery,
        /// Process corners (dies) to sample.
        corners: usize,
        /// Lognormal σ of the per-gate time-zero variation.
        sigma: f64,
        /// Campaign base seed (corner streams are derived from it).
        mc_seed: u64,
        /// AHL skip threshold for the evaluation replays.
        skip: u32,
    },
    /// Seeded fleet policy study on the discrete-event datacenter
    /// simulator. The query's fields are reinterpreted for the fleet:
    /// `years` is the aging applied per epoch at fair utilization,
    /// `patterns` is the operations routed per epoch, and `seed` is the
    /// campaign base seed (node corners and epoch traces derive from it).
    Fleet {
        /// Design/workload coordinates (see reinterpretation above).
        query: DesignQuery,
        /// Multiplier instances in the fleet.
        nodes: usize,
        /// Epochs to simulate.
        epochs: usize,
        /// Routing policy label (`round-robin`, `least-loaded`,
        /// `aging-aware`); validated when the op executes.
        policy: String,
        /// AHL skip threshold shared by every node.
        skip: u32,
    },
    /// Server cache/coalescer statistics.
    Stats,
    /// Graceful shutdown: the server finishes in-flight work, saves its
    /// snapshot (if configured), and stops accepting.
    Shutdown,
}

/// One decoded request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed in the response.
    pub id: u64,
    /// Per-request wall-clock budget in milliseconds; must be positive
    /// when present (omit the field to disable the deadline).
    pub deadline_ms: Option<u64>,
    /// The operation.
    pub body: RequestBody,
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn get_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn query_from_json(v: &Json) -> Result<DesignQuery, String> {
    let kind = parse_kind(
        v.get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing or non-string field \"kind\"".to_string())?,
    )?;
    let width = get_u64(v, "width")? as usize;
    if width == 0 {
        return Err("width must be positive".into());
    }
    let years = get_f64(v, "years")?;
    if !years.is_finite() || years < 0.0 {
        return Err(format!(
            "years must be finite and non-negative, got {years}"
        ));
    }
    let patterns = get_u64(v, "patterns")? as usize;
    if patterns == 0 {
        return Err("patterns must be positive".into());
    }
    let seed = get_u64(v, "seed")?;
    Ok(DesignQuery {
        kind,
        width,
        years,
        patterns,
        seed,
    })
}

fn query_to_json(q: &DesignQuery) -> Vec<(String, Json)> {
    vec![
        ("kind".into(), Json::Str(q.kind.label().into())),
        ("width".into(), Json::UInt(q.width as u64)),
        ("years".into(), Json::Num(q.years)),
        ("patterns".into(), Json::UInt(q.patterns as u64)),
        ("seed".into(), Json::UInt(q.seed)),
    ]
}

impl Request {
    /// Decodes a request object (not a batch envelope).
    ///
    /// # Errors
    ///
    /// A rendered description of the first missing, mistyped, or
    /// out-of-range field. A `deadline_ms` of 0 is rejected — a budget of
    /// nothing would quarantine every attempt; omit the field to disable
    /// the deadline.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let id = get_u64(v, "id")?;
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(x) => {
                let ms = x
                    .as_u64()
                    .ok_or_else(|| "non-integer deadline_ms".to_string())?;
                if ms == 0 {
                    return Err(
                        "deadline_ms must be positive (omit the field to disable the deadline)"
                            .into(),
                    );
                }
                Some(ms)
            }
        };
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing or non-string field \"op\"".to_string())?;
        let body = match op {
            "profile" => RequestBody::Profile(query_from_json(v)?),
            "sweep" => {
                let raw = v
                    .get("periods")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "sweep needs a periods array".to_string())?;
                if raw.is_empty() {
                    return Err("sweep needs at least one period".into());
                }
                let mut periods = Vec::with_capacity(raw.len());
                for p in raw {
                    let p = p.as_f64().ok_or_else(|| "non-numeric period".to_string())?;
                    if !p.is_finite() || p <= 0.0 {
                        return Err(format!("periods must be finite and positive, got {p}"));
                    }
                    periods.push(p);
                }
                RequestBody::Sweep {
                    query: query_from_json(v)?,
                    periods,
                    skip: u32::try_from(get_u64(v, "skip")?)
                        .map_err(|_| "skip out of u32 range".to_string())?,
                }
            }
            "campaign" => {
                let faults = get_u64(v, "faults")? as usize;
                if faults == 0 {
                    return Err("campaign needs at least one fault".into());
                }
                RequestBody::Campaign {
                    query: query_from_json(v)?,
                    faults,
                    fault_seed: get_u64(v, "fault_seed")?,
                    skip: u32::try_from(get_u64(v, "skip")?)
                        .map_err(|_| "skip out of u32 range".to_string())?,
                }
            }
            "mc" => {
                let corners = get_u64(v, "corners")? as usize;
                if corners == 0 {
                    return Err("mc needs at least one corner".into());
                }
                let sigma = get_f64(v, "sigma")?;
                if !sigma.is_finite() || sigma < 0.0 {
                    return Err(format!(
                        "sigma must be finite and non-negative, got {sigma}"
                    ));
                }
                RequestBody::Mc {
                    query: query_from_json(v)?,
                    corners,
                    sigma,
                    mc_seed: get_u64(v, "mc_seed")?,
                    skip: u32::try_from(get_u64(v, "skip")?)
                        .map_err(|_| "skip out of u32 range".to_string())?,
                }
            }
            "fleet" => {
                let nodes = get_u64(v, "nodes")? as usize;
                if nodes == 0 {
                    return Err("fleet needs at least one node".into());
                }
                let epochs = get_u64(v, "epochs")? as usize;
                if epochs == 0 {
                    return Err("fleet needs at least one epoch".into());
                }
                let policy = v
                    .get("policy")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "missing or non-string field \"policy\"".to_string())?
                    .to_string();
                RequestBody::Fleet {
                    query: query_from_json(v)?,
                    nodes,
                    epochs,
                    policy,
                    skip: u32::try_from(get_u64(v, "skip")?)
                        .map_err(|_| "skip out of u32 range".to_string())?,
                }
            }
            "stats" => RequestBody::Stats,
            "shutdown" => RequestBody::Shutdown,
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(Request {
            id,
            deadline_ms,
            body,
        })
    }

    /// Encodes the request as its wire object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("id".into(), Json::UInt(self.id))];
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), Json::UInt(ms)));
        }
        match &self.body {
            RequestBody::Profile(q) => {
                pairs.push(("op".into(), Json::Str("profile".into())));
                pairs.extend(query_to_json(q));
            }
            RequestBody::Sweep {
                query,
                periods,
                skip,
            } => {
                pairs.push(("op".into(), Json::Str("sweep".into())));
                pairs.extend(query_to_json(query));
                pairs.push((
                    "periods".into(),
                    Json::Arr(periods.iter().map(|&p| Json::Num(p)).collect()),
                ));
                pairs.push(("skip".into(), Json::UInt(u64::from(*skip))));
            }
            RequestBody::Campaign {
                query,
                faults,
                fault_seed,
                skip,
            } => {
                pairs.push(("op".into(), Json::Str("campaign".into())));
                pairs.extend(query_to_json(query));
                pairs.push(("faults".into(), Json::UInt(*faults as u64)));
                pairs.push(("fault_seed".into(), Json::UInt(*fault_seed)));
                pairs.push(("skip".into(), Json::UInt(u64::from(*skip))));
            }
            RequestBody::Mc {
                query,
                corners,
                sigma,
                mc_seed,
                skip,
            } => {
                pairs.push(("op".into(), Json::Str("mc".into())));
                pairs.extend(query_to_json(query));
                pairs.push(("corners".into(), Json::UInt(*corners as u64)));
                pairs.push(("sigma".into(), Json::Num(*sigma)));
                pairs.push(("mc_seed".into(), Json::UInt(*mc_seed)));
                pairs.push(("skip".into(), Json::UInt(u64::from(*skip))));
            }
            RequestBody::Fleet {
                query,
                nodes,
                epochs,
                policy,
                skip,
            } => {
                pairs.push(("op".into(), Json::Str("fleet".into())));
                pairs.extend(query_to_json(query));
                pairs.push(("nodes".into(), Json::UInt(*nodes as u64)));
                pairs.push(("epochs".into(), Json::UInt(*epochs as u64)));
                pairs.push(("policy".into(), Json::Str(policy.clone())));
                pairs.push(("skip".into(), Json::UInt(u64::from(*skip))));
            }
            RequestBody::Stats => pairs.push(("op".into(), Json::Str("stats".into()))),
            RequestBody::Shutdown => pairs.push(("op".into(), Json::Str("shutdown".into()))),
        }
        Json::Obj(pairs)
    }
}

/// A successful response: the request id, how the supervised attempt ran
/// (engine, retries, degradation), and the op's result payload.
pub fn response_ok(id: u64, engine: &str, retries: u32, degraded: bool, result: Json) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::UInt(id)),
        ("ok".into(), Json::Bool(true)),
        ("engine".into(), Json::Str(engine.into())),
        ("retries".into(), Json::UInt(u64::from(retries))),
        ("degraded".into(), Json::Bool(degraded)),
        ("result".into(), result),
    ])
}

/// A failed response: the request id and a rendered error.
pub fn response_error(id: u64, error: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::UInt(id)),
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(error.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> DesignQuery {
        DesignQuery {
            kind: MultiplierKind::ColumnBypass,
            width: 16,
            years: 7.0,
            patterns: 1_000,
            seed: 42,
        }
    }

    #[test]
    fn frames_round_trip() {
        let msg = Request {
            id: 3,
            deadline_ms: Some(250),
            body: RequestBody::Sweep {
                query: query(),
                periods: vec![0.9, 1.0, 1.1],
                skip: 7,
            },
        }
        .to_json();
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        let mut cursor = wire.as_slice();
        let back = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(back, msg);
        // Stream exhausted → clean end-of-stream.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn every_op_round_trips_through_json() {
        let requests = [
            Request {
                id: 1,
                deadline_ms: None,
                body: RequestBody::Profile(query()),
            },
            Request {
                id: 2,
                deadline_ms: Some(100),
                body: RequestBody::Sweep {
                    query: query(),
                    periods: vec![1.25],
                    skip: 3,
                },
            },
            Request {
                id: 3,
                deadline_ms: None,
                body: RequestBody::Campaign {
                    query: query(),
                    faults: 12,
                    fault_seed: 9,
                    skip: 7,
                },
            },
            Request {
                id: 4,
                deadline_ms: None,
                body: RequestBody::Mc {
                    query: query(),
                    corners: 32,
                    sigma: 0.05,
                    mc_seed: 7,
                    skip: 7,
                },
            },
            Request {
                id: 5,
                deadline_ms: None,
                body: RequestBody::Fleet {
                    query: query(),
                    nodes: 4,
                    epochs: 20,
                    policy: "aging-aware".into(),
                    skip: 7,
                },
            },
            Request {
                id: 6,
                deadline_ms: None,
                body: RequestBody::Stats,
            },
            Request {
                id: 7,
                deadline_ms: None,
                body: RequestBody::Shutdown,
            },
        ];
        for req in requests {
            let back = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn zero_deadline_is_rejected() {
        let mut obj = Request {
            id: 1,
            deadline_ms: None,
            body: RequestBody::Stats,
        }
        .to_json();
        if let Json::Obj(pairs) = &mut obj {
            pairs.push(("deadline_ms".into(), Json::UInt(0)));
        }
        let err = Request::from_json(&obj).unwrap_err();
        assert!(err.contains("deadline_ms must be positive"), "{err}");
    }

    #[test]
    fn malformed_requests_are_described() {
        let bad = [
            (Json::Obj(vec![("id".into(), Json::UInt(1))]), "op"),
            (
                Json::Obj(vec![
                    ("id".into(), Json::UInt(1)),
                    ("op".into(), Json::Str("bogus".into())),
                ]),
                "unknown op",
            ),
            (
                Json::Obj(vec![
                    ("id".into(), Json::UInt(1)),
                    ("op".into(), Json::Str("profile".into())),
                    ("kind".into(), Json::Str("XX".into())),
                ]),
                "unknown kind",
            ),
        ];
        for (doc, needle) in bad {
            let err = Request::from_json(&doc).unwrap_err();
            assert!(err.contains(needle), "{err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_be_bytes());
        wire.extend_from_slice(b"junk");
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_eof() {
        let msg = Json::Str("hello".into());
        let mut wire = Vec::new();
        write_frame(&mut wire, &msg).unwrap();
        wire.truncate(wire.len() - 2);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
