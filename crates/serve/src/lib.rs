//! `agemul-serve` — a resident, sharded aging-simulation service.
//!
//! The batch experiments in `agemul-repro` rebuild every artifact —
//! designs, workloads, BTI aging factors, timing profiles — from scratch
//! on each invocation. This crate keeps them resident: a thread-pool
//! socket server (TCP or Unix-domain) owns the sharded bounded
//! [`ProfileCache`](agemul::ProfileCache) and answers batched JSON
//! requests over a length-prefixed frame protocol:
//!
//! - `profile` — the timing profile of a design at an aging epoch,
//! - `sweep` — run a clock-period grid against that profile,
//! - `campaign` — sample and evaluate a delay-fault campaign,
//! - `mc` — a seeded Monte Carlo yield campaign over process corners
//!   (plan-reuse re-timing on the primary engine),
//! - `stats` / `shutdown` — cache introspection and graceful stop.
//!
//! Three properties distinguish the resident service from the batch path:
//!
//! 1. **Single-flight coalescing** ([`SingleFlight`]): N concurrent
//!    requests for the same cold profile cost one simulation; the cache
//!    alone would let them race.
//! 2. **Supervised requests**: every simulation op runs under the
//!    harness's per-request supervision — panics become error responses,
//!    the client's `deadline_ms` is enforced through a cancellation
//!    token, and an exhausted levelized-kernel budget degrades to the
//!    event-driven reference engine (the response says which engine ran
//!    and whether it degraded).
//! 3. **Warm-start snapshots**: on graceful shutdown the profile cache is
//!    persisted with the harness's atomic CRC-checked checkpoint codec
//!    and reloaded at the next spawn, so a restarted server serves its
//!    first requests from cache.
//!
//! The `loadgen` binary drives the server with hundreds of concurrent
//! design/workload combinations and records latency percentiles and hit
//! rates (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
mod flight;
mod proto;
mod server;
mod state;

pub use flight::{FlightError, FlightRole, SingleFlight};
pub use proto::{
    parse_kind, read_frame, response_error, response_ok, response_overloaded, write_frame,
    DesignQuery, FrameAccumulator, FramePoll, Request, RequestBody, MAX_FRAME_BYTES,
};
pub use server::{spawn, Endpoint, ServeConfig, ServerHandle};
pub use state::{CacheOutcome, ServerState, SNAPSHOT_KEY};

use agemul_conformance::Json;
use std::io::{Read, Write};

/// A minimal blocking client helper: writes `request` as one frame and
/// returns the server's response frame. Used by the `repro query`
/// subcommand and the loadgen; works over any `Read + Write` transport.
///
/// # Errors
///
/// Transport failures, oversized/malformed frames, or a connection closed
/// before the response arrived.
pub fn roundtrip<S: Read + Write>(stream: &mut S, request: &Json) -> std::io::Result<Json> {
    write_frame(stream, request)?;
    read_frame(stream)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection before responding",
        )
    })
}
