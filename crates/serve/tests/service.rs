//! End-to-end service tests: real sockets, real frames, real shutdown.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::sync::Barrier;

use agemul::SimEngine;
use agemul_circuits::MultiplierKind;
use agemul_conformance::Json;
use agemul_serve::{
    roundtrip, spawn, CacheOutcome, DesignQuery, Endpoint, ServeConfig, ServerState,
};

fn profile_frame(id: u64, kind: &str, width: u64, years: f64, patterns: u64, seed: u64) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::UInt(id)),
        ("op".into(), Json::Str("profile".into())),
        ("kind".into(), Json::Str(kind.into())),
        ("width".into(), Json::UInt(width)),
        ("years".into(), Json::Num(years)),
        ("patterns".into(), Json::UInt(patterns)),
        ("seed".into(), Json::UInt(seed)),
    ])
}

fn cache_label(response: &Json) -> &str {
    response
        .get("result")
        .and_then(|r| r.get("cache"))
        .and_then(Json::as_str)
        .unwrap_or("?")
}

fn spawn_tcp(snapshot: Option<std::path::PathBuf>) -> agemul_serve::ServerHandle {
    spawn(ServeConfig {
        endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
        workers: 4,
        shard_capacity: Some(16),
        snapshot,
        max_retries: 1,
        ..ServeConfig::default()
    })
    .expect("spawn")
}

#[test]
fn tcp_profile_miss_then_hit_then_sweep_and_campaign() {
    let server = spawn_tcp(None);
    let addr = server.tcp_addr().expect("tcp addr");
    let mut conn = TcpStream::connect(addr).expect("connect");

    // Cold profile simulates; the repeat is served from cache.
    let first = roundtrip(&mut conn, &profile_frame(1, "CB", 8, 0.0, 24, 11)).unwrap();
    assert_eq!(
        first.get("ok").and_then(Json::as_bool),
        Some(true),
        "{first}"
    );
    assert_eq!(cache_label(&first), "miss");
    assert_eq!(first.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(first.get("engine").and_then(Json::as_str), Some("level"));

    let again = roundtrip(&mut conn, &profile_frame(2, "CB", 8, 0.0, 24, 11)).unwrap();
    assert_eq!(cache_label(&again), "hit");
    let (a, b) = (
        first
            .get("result")
            .and_then(|r| r.get("avg_delay_ns"))
            .and_then(Json::as_f64),
        again
            .get("result")
            .and_then(|r| r.get("avg_delay_ns"))
            .and_then(Json::as_f64),
    );
    assert_eq!(a, b, "cached profile must match the simulated one");

    // A sweep over the now-warm profile returns per-period points.
    let sweep = Json::Obj(vec![
        ("id".into(), Json::UInt(3)),
        ("op".into(), Json::Str("sweep".into())),
        ("kind".into(), Json::Str("CB".into())),
        ("width".into(), Json::UInt(8)),
        ("years".into(), Json::Num(0.0)),
        ("patterns".into(), Json::UInt(24)),
        ("seed".into(), Json::UInt(11)),
        (
            "periods".into(),
            Json::Arr(vec![Json::Num(1.5), Json::Num(2.5), Json::Num(4.0)]),
        ),
        ("skip".into(), Json::UInt(7)),
    ]);
    let sweep = roundtrip(&mut conn, &sweep).unwrap();
    assert_eq!(
        sweep.get("ok").and_then(Json::as_bool),
        Some(true),
        "{sweep}"
    );
    assert_eq!(
        cache_label(&sweep),
        "hit",
        "sweep reuses the cached profile"
    );
    let points = sweep
        .get("result")
        .and_then(|r| r.get("points"))
        .and_then(Json::as_arr)
        .expect("points");
    assert_eq!(points.len(), 3);
    assert!(sweep
        .get("result")
        .and_then(|r| r.get("best_period_ns"))
        .and_then(Json::as_f64)
        .is_some());

    // A small campaign runs and reports.
    let campaign = Json::Obj(vec![
        ("id".into(), Json::UInt(4)),
        ("op".into(), Json::Str("campaign".into())),
        ("kind".into(), Json::Str("CB".into())),
        ("width".into(), Json::UInt(8)),
        ("years".into(), Json::Num(0.0)),
        ("patterns".into(), Json::UInt(24)),
        ("seed".into(), Json::UInt(11)),
        ("faults".into(), Json::UInt(3)),
        ("fault_seed".into(), Json::UInt(5)),
        ("skip".into(), Json::UInt(7)),
    ]);
    let campaign = roundtrip(&mut conn, &campaign).unwrap();
    assert_eq!(
        campaign.get("ok").and_then(Json::as_bool),
        Some(true),
        "{campaign}"
    );

    // Stats reflect the traffic.
    let stats = roundtrip(
        &mut conn,
        &Json::Obj(vec![
            ("id".into(), Json::UInt(5)),
            ("op".into(), Json::Str("stats".into())),
        ]),
    )
    .unwrap();
    let result = stats.get("result").expect("stats result");
    assert!(result.get("misses").and_then(Json::as_u64).unwrap_or(0) >= 1);
    assert!(result.get("hits").and_then(Json::as_u64).unwrap_or(0) >= 1);

    // The per-shard breakdown sums back to the global tallies, and the
    // flight object carries the coalescer counters.
    let shards = result
        .get("shards")
        .and_then(Json::as_arr)
        .expect("shards array");
    assert!(!shards.is_empty());
    for field in ["hits", "misses", "evictions"] {
        let total: u64 = shards
            .iter()
            .map(|s| s.get(field).and_then(Json::as_u64).expect(field))
            .sum();
        assert_eq!(Some(total), result.get(field).and_then(Json::as_u64));
    }
    let flight = result.get("flight").expect("flight object");
    assert!(flight.get("led").and_then(Json::as_u64).is_some());
    assert!(flight.get("coalesced").and_then(Json::as_u64).is_some());

    drop(conn);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn mc_op_returns_yield_curves() {
    let server = spawn_tcp(None);
    let mut conn = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
    let frame = Json::Obj(vec![
        ("id".into(), Json::UInt(1)),
        ("op".into(), Json::Str("mc".into())),
        ("kind".into(), Json::Str("CB".into())),
        ("width".into(), Json::UInt(8)),
        // `years` is the maximum lifetime: points 0, 1, 2.
        ("years".into(), Json::Num(2.0)),
        ("patterns".into(), Json::UInt(24)),
        ("seed".into(), Json::UInt(11)),
        ("corners".into(), Json::UInt(4)),
        ("sigma".into(), Json::Num(0.05)),
        ("mc_seed".into(), Json::UInt(7)),
        ("skip".into(), Json::UInt(3)),
    ]);
    let response = roundtrip(&mut conn, &frame).unwrap();
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    let result = response.get("result").expect("mc result");
    assert_eq!(result.get("corners").and_then(Json::as_u64), Some(4));
    let years = result.get("years").and_then(Json::as_arr).expect("years");
    assert_eq!(years.len(), 3);
    let baseline = result
        .get("baseline_yield")
        .and_then(Json::as_arr)
        .expect("baseline curve");
    let ahl = result
        .get("ahl_yield")
        .and_then(Json::as_arr)
        .expect("ahl curve");
    assert_eq!((baseline.len(), ahl.len()), (3, 3));
    for (b, a) in baseline.iter().zip(ahl) {
        let (b, a) = (b.as_f64().unwrap(), a.as_f64().unwrap());
        assert!((0.0..=1.0).contains(&b) && (0.0..=1.0).contains(&a));
        assert!(a + 1e-12 >= b, "AHL yield must dominate the baseline");
    }

    // Sigma is validated at the protocol boundary.
    let mut bad = frame.clone();
    if let Json::Obj(pairs) = &mut bad {
        for (k, v) in pairs.iter_mut() {
            if k == "sigma" {
                *v = Json::Num(-0.5);
            }
        }
    }
    let rejected = roundtrip(&mut conn, &bad).unwrap();
    assert_eq!(rejected.get("ok").and_then(Json::as_bool), Some(false));

    drop(conn);
    server.shutdown().unwrap();
}

#[test]
fn fleet_op_returns_a_policy_summary() {
    let server = spawn_tcp(None);
    let mut conn = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
    let frame = Json::Obj(vec![
        ("id".into(), Json::UInt(1)),
        ("op".into(), Json::Str("fleet".into())),
        ("kind".into(), Json::Str("CB".into())),
        ("width".into(), Json::UInt(8)),
        // For the fleet op `years` is the aging per epoch at fair
        // utilization and `patterns` the operations routed per epoch.
        ("years".into(), Json::Num(1.0)),
        ("patterns".into(), Json::UInt(48)),
        ("seed".into(), Json::UInt(0x0A6E_0005)),
        ("nodes".into(), Json::UInt(2)),
        ("epochs".into(), Json::UInt(2)),
        ("policy".into(), Json::Str("aging-aware".into())),
        ("skip".into(), Json::UInt(7)),
    ]);
    let response = roundtrip(&mut conn, &frame).unwrap();
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    let result = response.get("result").expect("fleet summary");
    assert_eq!(
        result.get("policy").and_then(Json::as_str),
        Some("aging-aware")
    );
    assert_eq!(result.get("nodes").and_then(Json::as_u64), Some(2));
    assert_eq!(result.get("epochs").and_then(Json::as_u64), Some(2));
    assert_eq!(
        result.get("completed_ops").and_then(Json::as_u64),
        Some(2 * 48),
        "every routed op completes on a healthy two-node fleet"
    );
    assert!(result.get("log_hash").and_then(Json::as_u64).is_some());
    let reports = result
        .get("node_reports")
        .and_then(Json::as_arr)
        .expect("per-node reports");
    assert_eq!(reports.len(), 2);

    // Determinism across connections: the same frame replays to the same
    // event-log hash.
    let replay = roundtrip(&mut conn, &frame).unwrap();
    assert_eq!(
        replay
            .get("result")
            .and_then(|r| r.get("log_hash"))
            .and_then(Json::as_u64),
        result.get("log_hash").and_then(Json::as_u64)
    );

    // Unknown routing labels are rejected without killing the connection.
    let mut bad = frame.clone();
    if let Json::Obj(pairs) = &mut bad {
        for (k, v) in pairs.iter_mut() {
            if k == "policy" {
                *v = Json::Str("clairvoyant".into());
            }
        }
    }
    let rejected = roundtrip(&mut conn, &bad).unwrap();
    assert_eq!(rejected.get("ok").and_then(Json::as_bool), Some(false));

    drop(conn);
    server.shutdown().unwrap();
}

#[test]
fn batch_envelope_returns_ordered_responses() {
    let server = spawn_tcp(None);
    let mut conn = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
    let batch = Json::Obj(vec![
        ("op".into(), Json::Str("batch".into())),
        (
            "requests".into(),
            Json::Arr(vec![
                profile_frame(10, "AM", 4, 0.0, 16, 7),
                profile_frame(11, "AM", 4, 0.0, 16, 7),
                Json::Obj(vec![
                    ("id".into(), Json::UInt(12)),
                    ("op".into(), Json::Str("bogus".into())),
                ]),
            ]),
        ),
    ]);
    let response = roundtrip(&mut conn, &batch).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let responses = response
        .get("responses")
        .and_then(Json::as_arr)
        .expect("responses array");
    assert_eq!(responses.len(), 3);
    assert_eq!(responses[0].get("id").and_then(Json::as_u64), Some(10));
    assert_eq!(cache_label(&responses[0]), "miss");
    assert_eq!(responses[1].get("id").and_then(Json::as_u64), Some(11));
    assert_eq!(cache_label(&responses[1]), "hit");
    assert_eq!(responses[2].get("ok").and_then(Json::as_bool), Some(false));
    assert!(responses[2]
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("")
        .contains("unknown op"));
    drop(conn);
    server.shutdown().unwrap();
}

#[test]
fn malformed_requests_get_error_responses_not_disconnects() {
    let server = spawn_tcp(None);
    let mut conn = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();

    // Unknown op, bad kind, zero deadline: each gets ok=false and the
    // connection stays usable.
    let cases = [
        Json::Obj(vec![
            ("id".into(), Json::UInt(1)),
            ("op".into(), Json::Str("nope".into())),
        ]),
        profile_frame(2, "XX", 8, 0.0, 24, 1),
        Json::Obj(vec![
            ("id".into(), Json::UInt(3)),
            ("op".into(), Json::Str("stats".into())),
            ("deadline_ms".into(), Json::UInt(0)),
        ]),
    ];
    for frame in &cases {
        let response = roundtrip(&mut conn, frame).unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{response}"
        );
        assert!(response.get("error").and_then(Json::as_str).is_some());
    }
    // Still alive after three rejected frames.
    let ok = roundtrip(&mut conn, &profile_frame(4, "AM", 4, 0.0, 16, 1)).unwrap();
    assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
    drop(conn);
    server.shutdown().unwrap();
}

#[test]
fn impossible_deadline_is_quarantined_into_an_error_response() {
    let server = spawn_tcp(None);
    let mut conn = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
    // A 1ms budget cannot cover a 20k-pattern Booth profile; the
    // supervisor burns its retries and the Event degradation attempt,
    // then quarantines — the client sees an error, not a hang.
    let mut frame = profile_frame(1, "BOOTH", 8, 7.0, 20_000, 3);
    if let Json::Obj(pairs) = &mut frame {
        pairs.push(("deadline_ms".into(), Json::UInt(1)));
    }
    let response = roundtrip(&mut conn, &frame).unwrap();
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(false),
        "{response}"
    );

    // The failure was not cached: without the deadline the same query
    // simulates fine.
    let retry = roundtrip(&mut conn, &profile_frame(2, "BOOTH", 8, 7.0, 20_000, 3)).unwrap();
    assert_eq!(
        retry.get("ok").and_then(Json::as_bool),
        Some(true),
        "{retry}"
    );
    assert_eq!(cache_label(&retry), "miss");
    drop(conn);
    server.shutdown().unwrap();
}

#[test]
fn unix_socket_serves_and_cleans_up() {
    let path = std::env::temp_dir().join(format!("agemul-serve-{}.sock", std::process::id()));
    let server = spawn(ServeConfig {
        endpoint: Endpoint::Unix(path.clone()),
        workers: 2,
        shard_capacity: Some(8),
        snapshot: None,
        max_retries: 1,
        ..ServeConfig::default()
    })
    .expect("spawn unix");
    let mut conn = std::os::unix::net::UnixStream::connect(&path).expect("connect unix");
    let response = roundtrip(&mut conn, &profile_frame(1, "RB", 4, 0.0, 16, 9)).unwrap();
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    drop(conn);
    server.shutdown().unwrap();
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn shutdown_op_stops_the_server() {
    let server = spawn_tcp(None);
    let addr = server.tcp_addr().unwrap();
    let client = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).unwrap();
        let response = roundtrip(
            &mut conn,
            &Json::Obj(vec![
                ("id".into(), Json::UInt(1)),
                ("op".into(), Json::Str("shutdown".into())),
            ]),
        )
        .unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    });
    // The op alone must bring the server down.
    server.run_until_shutdown().expect("run until shutdown");
    client.join().unwrap();
}

#[test]
fn shutdown_drains_even_with_an_idle_client_attached() {
    let server = spawn_tcp(None);
    let conn = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
    // The idle connection sends nothing; the worker's read timeout lets
    // it observe the stop flag instead of blocking shutdown forever.
    server.shutdown().expect("shutdown with idle client");
    drop(conn);
}

#[test]
fn snapshot_warm_start_serves_first_request_from_cache() {
    let dir = std::env::temp_dir().join(format!("agemul-serve-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("cache.snap.json");

    let first = spawn_tcp(Some(snap.clone()));
    let mut conn = TcpStream::connect(first.tcp_addr().unwrap()).unwrap();
    let cold = roundtrip(&mut conn, &profile_frame(1, "WAL", 8, 7.0, 24, 13)).unwrap();
    assert_eq!(cache_label(&cold), "miss");
    let cold_avg = cold
        .get("result")
        .and_then(|r| r.get("avg_delay_ns"))
        .and_then(Json::as_f64)
        .unwrap();
    drop(conn);
    first.shutdown().expect("first shutdown saves snapshot");
    assert!(snap.exists(), "snapshot written");

    // A brand-new process (state) starts warm: the same query hits.
    let second = spawn_tcp(Some(snap.clone()));
    let mut conn = TcpStream::connect(second.tcp_addr().unwrap()).unwrap();
    let warm = roundtrip(&mut conn, &profile_frame(2, "WAL", 8, 7.0, 24, 13)).unwrap();
    assert_eq!(cache_label(&warm), "hit", "{warm}");
    let warm_avg = warm
        .get("result")
        .and_then(|r| r.get("avg_delay_ns"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(cold_avg, warm_avg, "snapshot round-trip is lossless");
    drop(conn);
    second.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_fails_spawn_loudly() {
    let dir = std::env::temp_dir().join(format!("agemul-serve-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("cache.snap.json");
    let mut file = std::fs::File::create(&snap).unwrap();
    file.write_all(b"not a checkpoint").unwrap();
    drop(file);
    let err = spawn(ServeConfig {
        endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
        workers: 1,
        shard_capacity: Some(8),
        snapshot: Some(snap),
        max_retries: 0,
        ..ServeConfig::default()
    });
    assert!(err.is_err(), "corrupt warm start must not be ignored");
    std::fs::remove_dir_all(&dir).ok();
}

/// State-level single-flight proof: N threads release on a barrier and
/// demand the same cold profile; the cache records exactly one simulation
/// and every thread shares the same `Arc`.
#[test]
fn concurrent_cold_demand_simulates_once() {
    const N: usize = 8;
    let state = Arc::new(ServerState::new(Some(16)));
    let query = DesignQuery {
        kind: MultiplierKind::ColumnBypass,
        width: 8,
        years: 7.0,
        patterns: 512,
        seed: 21,
    };
    let barrier = Arc::new(Barrier::new(N));
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let state = Arc::clone(&state);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    state.profile(&query, SimEngine::Level, None).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(state.cache().misses(), 1, "exactly one simulation");
    let misses = results
        .iter()
        .filter(|(_, how)| *how == CacheOutcome::Miss)
        .count();
    assert_eq!(misses, 1);
    let first = &results[0].0;
    for (profile, _) in &results {
        assert!(Arc::ptr_eq(first, profile), "all threads share one Arc");
    }
    // Everyone else either coalesced onto the in-flight build or hit the
    // already-populated cache — never a second simulation.
    let others = results
        .iter()
        .filter(|(_, how)| matches!(how, CacheOutcome::Hit | CacheOutcome::Coalesced))
        .count();
    assert_eq!(others, N - 1);
}
