//! Property fuzz over the length-prefixed frame reader.
//!
//! Three contracts, each against adversarial byte streams:
//!
//! 1. **No panic, typed errors only** — arbitrary garbage fed to
//!    `read_frame` returns `Ok` or an `io::Error` whose kind is
//!    `InvalidData` (oversized prefix, bad UTF-8, bad JSON) or
//!    `UnexpectedEof` (peer vanished mid-frame); nothing else, never a
//!    panic.
//! 2. **Bounded allocation** — the body buffer's capacity tracks the
//!    bytes actually delivered (within one growth step of the 64 KiB
//!    chunk), not the length prefix, so a hostile prefix cannot balloon
//!    memory.
//! 3. **Chunking-invariant reassembly** — a valid frame delivered in
//!    arbitrary fragment sizes with read timeouts interleaved reassembles
//!    to the identical document.

use std::io::{self, Read};

use agemul_conformance::Json;
use agemul_serve::{read_frame, write_frame, FrameAccumulator, FramePoll, MAX_FRAME_BYTES};
use proptest::prelude::*;

/// The accumulator's growth step (mirrors `proto::BODY_CHUNK`).
const CHUNK: usize = 64 * 1024;

/// Delivers a byte slice in scripted fragment sizes, injecting a read
/// timeout between fragments.
struct Fragmented<'a> {
    bytes: &'a [u8],
    splits: Vec<usize>,
    cursor: usize,
    split_at: usize,
    timeout_next: bool,
}

impl<'a> Fragmented<'a> {
    fn new(bytes: &'a [u8], splits: Vec<usize>) -> Self {
        Fragmented {
            bytes,
            splits,
            cursor: 0,
            split_at: 0,
            timeout_next: false,
        }
    }
}

impl Read for Fragmented<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.timeout_next {
            self.timeout_next = false;
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "injected"));
        }
        self.timeout_next = true;
        let fragment = if self.splits.is_empty() {
            buf.len()
        } else {
            let s = self.splits[self.split_at % self.splits.len()];
            self.split_at += 1;
            s.max(1)
        };
        let n = fragment.min(buf.len()).min(self.bytes.len() - self.cursor);
        buf[..n].copy_from_slice(&self.bytes[self.cursor..self.cursor + n]);
        self.cursor += n;
        Ok(n)
    }
}

proptest! {
    /// Contract 1: arbitrary bytes produce `Ok` or a typed error, never a
    /// panic and never an unexpected error kind.
    #[test]
    fn garbage_never_panics_and_errors_are_typed(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut reader = &bytes[..];
        match read_frame(&mut reader) {
            Ok(_) => {}
            Err(e) => prop_assert!(
                matches!(
                    e.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ),
                "unexpected error kind {:?}: {e}",
                e.kind()
            ),
        }
    }

    /// Contract 2: the body buffer never allocates more than the bytes
    /// actually delivered plus one growth step (amortized doubling bounds
    /// it at twice that), no matter what the length prefix claims.
    #[test]
    fn allocation_tracks_delivery_not_the_prefix(
        declared in 0u32..=(MAX_FRAME_BYTES as u32),
        delivered in 0usize..2048,
    ) {
        let mut bytes = declared.to_be_bytes().to_vec();
        let body = delivered.min(declared as usize);
        bytes.extend(std::iter::repeat_n(b' ', body));

        let mut acc = FrameAccumulator::new();
        let mut reader = &bytes[..];
        while let Ok(FramePoll::Pending { .. }) = acc.poll(&mut reader) {}
        prop_assert!(
            acc.body_capacity() <= 2 * (body + CHUNK),
            "capacity {} for {} delivered bytes",
            acc.body_capacity(),
            body
        );
    }

    /// Contract 3: any fragmentation of a valid frame — with timeouts
    /// interleaved between fragments — reassembles to the identical
    /// document, and the bytes of a following frame are not consumed.
    #[test]
    fn reassembly_is_chunking_invariant(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..8),
        splits in proptest::collection::vec(1usize..48, 0..24),
    ) {
        let doc = Json::Obj(
            values
                .iter()
                .enumerate()
                .map(|(i, v)| (format!("k{i}"), Json::UInt(*v)))
                .collect(),
        );
        let mut wire = Vec::new();
        write_frame(&mut wire, &doc).unwrap();
        write_frame(&mut wire, &Json::Obj(vec![("next".into(), Json::Bool(true))])).unwrap();

        let mut reader = Fragmented::new(&wire, splits);
        let mut acc = FrameAccumulator::new();
        let mut timeouts = 0usize;
        let first = loop {
            match acc.poll(&mut reader) {
                Ok(FramePoll::Frame(json)) => break json,
                Ok(FramePoll::Closed) => prop_assert!(false, "closed before the frame"),
                Ok(FramePoll::Pending { .. }) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => timeouts += 1,
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
            prop_assert!(timeouts < 100_000, "no forward progress");
        };
        prop_assert_eq!(&first, &doc);

        // The second frame must still be intact on the stream.
        let second = loop {
            match acc.poll(&mut reader) {
                Ok(FramePoll::Frame(json)) => break json,
                Ok(FramePoll::Closed) => prop_assert!(false, "closed before frame 2"),
                Ok(FramePoll::Pending { .. }) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        };
        prop_assert_eq!(
            second.get("next").and_then(Json::as_bool),
            Some(true)
        );
    }
}
