//! Overload-shedding contract over real TCP sockets.
//!
//! A one-worker server pinned by a deliberately slow client must shed
//! excess connections with a typed `overloaded` frame (fast), serve the
//! admitted backlog once the stall budget disconnects the offender, and
//! keep accepting fresh work afterwards — i.e. saturation never wedges
//! the process.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use agemul_conformance::Json;
use agemul_serve::chaos::overload_probe;
use agemul_serve::{read_frame, spawn, write_frame, ServeConfig};

fn stats_frame(id: u64) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::UInt(id)),
        ("op".into(), Json::Str("stats".into())),
    ])
}

/// The full probe: flood a pinned one-worker server and hold every
/// invariant — typed sheds under 10 ms p99, admitted requests served
/// after the budget fires, the slow client disconnected with a typed
/// error, and the shed counter visible in stats.
#[test]
fn saturated_server_sheds_typed_and_recovers() {
    let report = overload_probe(12);
    assert!(
        report.passed(),
        "overload probe violations: {:?}",
        report.violations
    );
    assert!(
        report.notes.iter().any(|n| n.contains("shed")),
        "probe recorded no shed note: {:?}",
        report.notes
    );
}

/// Shape of the shed frame itself: a connection rejected at admission
/// gets `ok:false`, `overloaded:true`, a retryable error string, and the
/// socket is closed immediately after — and the server still answers a
/// later request on a fresh connection.
#[test]
fn shed_frame_is_typed_and_server_stays_alive() {
    let stall_budget = Duration::from_millis(300);
    let server = spawn(ServeConfig {
        workers: 1,
        admission_queue: 1,
        stall_budget,
        shard_capacity: Some(8),
        ..ServeConfig::default()
    })
    .expect("spawn");
    let addr = server.tcp_addr().expect("tcp addr");

    // Pin the worker with a half-written length prefix.
    let mut slow = TcpStream::connect(addr).expect("slow connect");
    slow.set_read_timeout(Some(stall_budget + Duration::from_secs(2)))
        .expect("slow timeout");
    slow.write_all(&[0, 0]).expect("partial prefix");
    std::thread::sleep(Duration::from_millis(100));

    // Fill the admission queue, then collect one guaranteed shed. With
    // the worker pinned and depth 1, at most one connection is queued —
    // the rest must be shed, each with the typed frame.
    let mut keep: Vec<TcpStream> = Vec::new();
    let mut shed_seen = 0usize;
    for _ in 0..6 {
        let t0 = Instant::now();
        let mut conn = TcpStream::connect(addr).expect("flood connect");
        conn.set_read_timeout(Some(stall_budget + Duration::from_secs(2)))
            .expect("flood timeout");
        write_frame(&mut conn, &stats_frame(3)).expect("flood write");
        // A shed answer arrives immediately; a queued connection stays
        // silent until the worker frees up, so peek with a short poll.
        conn.set_read_timeout(Some(Duration::from_millis(50)))
            .expect("poll timeout");
        match read_frame(&mut conn) {
            Ok(Some(response)) => {
                let elapsed = t0.elapsed();
                assert_eq!(
                    response.get("overloaded").and_then(Json::as_bool),
                    Some(true),
                    "fast answer from a saturated server must be the shed frame: {response}"
                );
                assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
                let error = response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or_default();
                assert!(
                    error.contains("overloaded") && error.contains("retry"),
                    "shed error must be typed and retryable: {error}"
                );
                assert!(
                    elapsed < Duration::from_millis(500),
                    "shed took {elapsed:?}"
                );
                // The shed socket is closed server-side right after.
                let mut rest = conn;
                rest.set_read_timeout(Some(Duration::from_millis(200)))
                    .expect("close timeout");
                assert!(
                    matches!(read_frame(&mut rest), Ok(None) | Err(_)),
                    "shed socket must be closed after the frame"
                );
                shed_seen += 1;
            }
            Ok(None) => panic!("connection closed without any frame"),
            // Silence: this one was admitted and is waiting its turn.
            Err(_) => {
                conn.set_read_timeout(Some(stall_budget + Duration::from_secs(2)))
                    .expect("restore timeout");
                keep.push(conn);
            }
        }
    }
    assert!(shed_seen > 0, "no connection was shed at admission");
    assert!(!keep.is_empty(), "no connection was admitted to the queue");

    // The slow client is cut loose with a typed error once the budget
    // fires, and the queued connections then get real answers.
    match read_frame(&mut slow) {
        Ok(Some(response)) => {
            assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
            let error = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or_default();
            assert!(error.contains("slow client"), "got: {error}");
        }
        other => panic!("slow client was not answered: {other:?}"),
    }
    for mut conn in keep {
        let response = read_frame(&mut conn)
            .expect("queued read")
            .expect("queued frame");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "queued request must be served after the budget fires: {response}"
        );
    }

    // Fresh work still flows, and the shed counter is visible in stats.
    let mut probe = TcpStream::connect(addr).expect("fresh connect");
    probe
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("fresh timeout");
    write_frame(&mut probe, &stats_frame(9)).expect("fresh write");
    let response = read_frame(&mut probe).expect("fresh read").expect("frame");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let shed_stat = response
        .get("result")
        .and_then(|r| r.get("shed"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(
        shed_stat >= shed_seen as u64,
        "stats shed counter {shed_stat} < observed {shed_seen}"
    );
    assert_eq!(server.state().shed(), shed_stat);
    server.shutdown().expect("shutdown");
}
