//! Umbrella crate for the `agemul` workspace.
//!
//! `agemul-suite` re-exports every workspace crate under one roof so the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`) can exercise the full stack — gate library, netlist
//! simulators, multiplier generators, BTI aging, power models, and the
//! aging-aware variable-latency architecture itself.
//!
//! Library users should depend on the individual crates (most likely
//! [`agemul`], the architecture crate) rather than on this umbrella.
//!
//! # Example
//!
//! ```
//! use agemul_suite::prelude::*;
//!
//! let design = MultiplierDesign::new(MultiplierKind::ColumnBypass, 8)?;
//! let profile = design.profile(PatternSet::uniform(8, 64, 1).pairs(), None)?;
//! let metrics = run_engine(&profile, &EngineConfig::adaptive(0.9, 4));
//! assert!(metrics.avg_latency_ns() > 0.0);
//! # Ok::<(), agemul::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use agemul;
pub use agemul_aging;
pub use agemul_circuits;
pub use agemul_logic;
pub use agemul_netlist;
pub use agemul_power;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use agemul::{
        area_report, calibrated_delay_model, count_zeros, cycle_accurate_run, energy_report,
        run_engine, run_fixed_latency, Ahl, AhlConfig, Architecture, AreaReport, CoreError,
        CycleDecision, EnergyInputs, EngineConfig, GateLevelAhl, JudgingBlock, MultiplierDesign,
        PatternProfile, PatternSet, RazorBank, RazorConfig, RunMetrics,
    };
    pub use agemul_aging::{aging_factors, BtiModel, VariationModel};
    pub use agemul_circuits::{
        carry_select_adder, kogge_stone_adder, ripple_carry_adder, MultiplierCircuit,
        MultiplierKind, Operand, VariableLatencyRca,
    };
    pub use agemul_logic::{DelayModel, GateKind, Logic, Technology};
    pub use agemul_netlist::{
        static_critical_path_ns, write_vcd, write_verilog, Bus, DelayAssignment, EventSim, FuncSim,
        Netlist, NetlistReport,
    };
    pub use agemul_power::PowerModel;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_links_the_whole_stack() {
        use crate::prelude::*;
        let _ = DelayModel::nominal();
        let _ = PowerModel::ptm_32nm_hk();
        let _ = BtiModel::calibrated(Technology::ptm_32nm_hk(), 1.13);
        assert_eq!(MultiplierKind::PAPER.len(), 3);
        assert_eq!(MultiplierKind::ALL.len(), 5);
    }
}
