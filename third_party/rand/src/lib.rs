//! Offline drop-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build container has no network access and no vendored registry, so
//! the real `rand` crate cannot be fetched. This crate re-implements exactly
//! the surface the workspace consumes — `rngs::StdRng`, `SeedableRng`,
//! `Rng::gen::<u64/f64>()`, and `seq::SliceRandom::shuffle` — with a
//! deterministic xoshiro256** generator seeded through SplitMix64.
//!
//! Determinism is the contract that matters here: every `(seed)` pair
//! produces the same stream on every platform and every run, so all
//! pattern sets, repro figures, and property tests are reproducible
//! bit-for-bit. The streams differ from upstream `rand`'s ChaCha12-based
//! `StdRng`, which shifts *absolute* workload numbers versus runs made with
//! the real crate (see EXPERIMENTS.md); all in-repo comparisons are
//! unaffected because both sides of every comparison use the same stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is expanded from `seed` with
    /// SplitMix64, matching the spirit of `rand`'s `seed_from_u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw random bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; same API, different — but equally deterministic — stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Modulo draw: the tiny bias is irrelevant for simulation
                // workloads and keeps the stream trivially reproducible.
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }
}
