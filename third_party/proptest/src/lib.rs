//! Offline drop-in for the subset of the `proptest` API this workspace uses.
//!
//! The build container has no network access, so the real `proptest` crate
//! cannot be fetched. This crate implements the same *testing contract* for
//! the API surface the workspace consumes: `proptest!` test blocks with an
//! optional `#![proptest_config(..)]` header, `Strategy` combinators
//! (`prop_map`, tuples, ranges, `Just`, `prop_oneof!`, `any::<T>()`,
//! `proptest::bool::ANY`, `proptest::collection::vec`), and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream, by design:
//! - No shrinking: a failing case panics with the sampled values available
//!   through the assertion message (write informative messages).
//! - Deterministic: the RNG is seeded from the test's module path + name,
//!   so every run explores the same cases. There is no failure persistence
//!   file because reruns are already reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Matches upstream proptest's default case count.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary name (FNV-1a hash), so each
        /// test gets its own reproducible case sequence.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "below(0) is meaningless");
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking; a strategy is
    /// just a deterministic sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $ty)
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo + (rng.below(span + 1) as $ty)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace samples.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform `true`/`false`.
    pub const ANY: BoolAny = BoolAny;
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]; mirrors upstream's `SizeRange` so
    /// bare integer range literals (`1..60`) infer as `usize`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi_inclusive - self.len.lo) as u64;
            let n = self.len.lo + rng.below(span + 1) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the upstream surface this workspace uses: an optional
/// `#![proptest_config(expr)]` header followed by `fn name(arg in strategy,
/// ...) { body }` items (each usually carrying `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice between the listed strategies (all must yield the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::OneOf(__arms)
    }};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 5u32..=7, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=7).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_strategy(v in crate::collection::vec(0u8..=255, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_only_yields_arms(x in prop_oneof![Just(1u8), Just(4u8), Just(9u8)]) {
            prop_assert!([1u8, 4, 9].contains(&x));
        }

        #[test]
        fn map_applies(sq in (1u64..100).prop_map(|v| v * v)) {
            let root = (sq as f64).sqrt().round() as u64;
            prop_assert_eq!(root * root, sq);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(crate::arbitrary::any::<u64>(), 1..8);
        let mut r1 = crate::test_runner::TestRng::from_name("stable-name");
        let mut r2 = crate::test_runner::TestRng::from_name("stable-name");
        for _ in 0..32 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}
