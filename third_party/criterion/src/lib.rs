//! Offline drop-in bench harness for the subset of the `criterion` API this
//! workspace uses.
//!
//! The build container has no network access, so the real `criterion` crate
//! cannot be fetched. This crate keeps the bench sources compiling unchanged
//! and actually *measures*: each `Bencher::iter` call calibrates an
//! iteration count for a target sample duration, collects wall-clock
//! samples, and prints `mean ± stddev` per benchmark id.
//!
//! Extras over a bare shim:
//! - a positional CLI argument filters benchmarks by substring (flags such
//!   as cargo's `--bench` are ignored), matching criterion's CLI habit;
//! - setting `CRITERION_JSON=/path/file.json` records one JSON line per
//!   benchmark (`{"id", "ns_per_iter", "stddev_ns", "samples", "iters"}`),
//!   which is how `BENCH_sim.json` baselines are recorded. A re-run
//!   *replaces* the file's row for the same id in place (other rows are
//!   preserved), so the baseline file stays one-row-per-benchmark instead
//!   of accreting duplicates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock duration of one sample (per-sample batch of
/// iterations).
const TARGET_SAMPLE: Duration = Duration::from_millis(40);

/// Hint for how batched setup output should be grouped; the stub times the
/// routine in isolation for every variant, so the hint is accepted and
/// ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Statistics for one benchmark id.
#[derive(Clone, Debug)]
struct Stats {
    ns_per_iter: f64,
    stddev_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Runs benchmark routines and reports per-iteration timings.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with harness flags (e.g. `--bench`);
        // the first non-flag argument, if any, is a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs a single benchmark with the default sample count.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, f);
        self
    }

    /// Starts a named group; benchmark ids are reported as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            stats: None,
        };
        f(&mut bencher);
        match bencher.stats {
            Some(stats) => report(id, &stats),
            None => eprintln!("warning: bench {id} never called Bencher::iter"),
        }
    }
}

/// A benchmark group sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count so each sample runs
    /// for roughly [`TARGET_SAMPLE`].
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: double iterations until one sample is long enough to
        // time reliably.
        let mut iters: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                break;
            }
            // Aim directly at the target once we have a usable estimate.
            iters = if elapsed < Duration::from_micros(50) {
                iters * 8
            } else {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                ((TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64).clamp(iters + 1, 1 << 20)
            };
        }

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        samples_ns.push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        for _ in 1..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        self.stats = Some(summarize(&samples_ns, iters));
    }

    /// Times `routine` on inputs produced by `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate on timed-routine-only accumulation.
        let mut iters: u64 = 1;
        let mut timed;
        loop {
            timed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            if timed >= TARGET_SAMPLE || iters >= 1 << 20 {
                break;
            }
            iters = if timed < Duration::from_micros(50) {
                iters * 8
            } else {
                let per_iter = timed.as_secs_f64() / iters as f64;
                ((TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64).clamp(iters + 1, 1 << 20)
            };
        }

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        samples_ns.push(timed.as_secs_f64() * 1e9 / iters as f64);
        for _ in 1..self.sample_size {
            let mut acc = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                acc += start.elapsed();
            }
            samples_ns.push(acc.as_secs_f64() * 1e9 / iters as f64);
        }
        self.stats = Some(summarize(&samples_ns, iters));
    }
}

fn summarize(samples_ns: &[f64], iters: u64) -> Stats {
    let n = samples_ns.len() as f64;
    let mean = samples_ns.iter().sum::<f64>() / n;
    let var = samples_ns.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n.max(1.0);
    Stats {
        ns_per_iter: mean,
        stddev_ns: var.sqrt(),
        samples: samples_ns.len(),
        iters_per_sample: iters,
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(id: &str, stats: &Stats) {
    println!(
        "bench: {id:<48} {:>12}/iter (± {}, {} samples × {} iters)",
        human_time(stats.ns_per_iter),
        human_time(stats.stddev_ns),
        stats.samples,
        stats.iters_per_sample,
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let line = format!(
            "{{\"id\": \"{id}\", \"ns_per_iter\": {:.1}, \"stddev_ns\": {:.1}, \"samples\": {}, \"iters\": {}}}",
            stats.ns_per_iter, stats.stddev_ns, stats.samples, stats.iters_per_sample,
        );
        record_json_line(std::path::Path::new(&path), id, &line);
    }
}

/// Writes `line` into the JSON-lines file at `path`, replacing the
/// existing row for `id` in place (first occurrence keeps its position;
/// stray duplicates are dropped) or appending when the id is new. Rows
/// for other ids — including lines this stub did not write — pass through
/// untouched.
fn record_json_line(path: &std::path::Path, id: &str, line: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    // The id is always the first field of a row this stub wrote, so a
    // prefix check is an exact id match (no substring collisions between
    // e.g. `mc/retime` and `mc/retime_corner`).
    let marker = format!("{{\"id\": \"{id}\",");
    let mut out = String::with_capacity(existing.len() + line.len() + 1);
    let mut replaced = false;
    for row in existing.lines() {
        if row.trim().is_empty() {
            continue;
        }
        if row.starts_with(&marker) {
            if !replaced {
                out.push_str(line);
                out.push('\n');
                replaced = true;
            }
        } else {
            out.push_str(row);
            out.push('\n');
        }
    }
    if !replaced {
        out.push_str(line);
        out.push('\n');
    }
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not record bench row for {id}: {e}");
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_stats() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
        };
        let mut ran = false;
        c.bench_function("self_test/tiny", |b| {
            ran = true;
            b.iter(|| black_box(21u64) * 2)
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion {
            filter: Some("only_this".into()),
            sample_size: 3,
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            ran = true;
            b.iter(|| 1u8)
        });
        assert!(!ran);
    }

    #[test]
    fn batched_runs_setup_per_iteration() {
        let mut c = Criterion {
            filter: None,
            sample_size: 2,
        };
        c.bench_function("self_test/batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn record_replaces_rows_by_id() {
        let path =
            std::env::temp_dir().join(format!("criterion_stub_record_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Pre-existing duplicates (the historical append behavior) collapse
        // to the fresh row; a prefix-overlapping id stays untouched.
        std::fs::write(
            &path,
            "{\"id\": \"grp/a\", \"ns_per_iter\": 1.0}\n{\"id\": \"grp/a\", \"ns_per_iter\": 2.0}\n",
        )
        .unwrap();
        record_json_line(
            &path,
            "grp/ab",
            "{\"id\": \"grp/ab\", \"ns_per_iter\": 9.0}",
        );
        record_json_line(&path, "grp/a", "{\"id\": \"grp/a\", \"ns_per_iter\": 3.0}");
        let text = std::fs::read_to_string(&path).unwrap();
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(
            rows,
            [
                "{\"id\": \"grp/a\", \"ns_per_iter\": 3.0}",
                "{\"id\": \"grp/ab\", \"ns_per_iter\": 9.0}",
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion {
            filter: Some("grp/inner".into()),
            sample_size: 2,
        };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("inner", |b| {
                ran = true;
                b.iter(|| 0u8)
            });
            g.finish();
        }
        assert!(ran);
    }
}
